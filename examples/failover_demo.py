#!/usr/bin/env python
"""System-level fault tolerance demo: kill cells mid-job and recover.

Exercises the paper's Section 2.3 machinery, which the original work left
unevaluated: heartbeats go silent, the watchdog disables the cells, their
unfinished memory words are salvaged into neighbours, and the control
processor's retry protocol resubmits anything that was lost anyway.  The
job also runs with transient ALU faults injected every computation, so
all three hierarchy levels are working at once.

Run:
    python examples/failover_demo.py
"""

from repro import ExactFractionMask, GridSimulator
from repro.grid.display import render_grid, render_reachability
from repro.workloads import gradient, hue_shift


def main() -> None:
    sim = GridSimulator(
        rows=3,
        cols=3,
        alu_scheme="tmr",                       # bit-level fault tolerance
        alu_fault_policy=ExactFractionMask(0.01),  # 1% transient faults
        kill_schedule={40: [(1, 1)], 120: [(0, 2)]},  # hard cell failures
        memory_upset_rate=1e-5,                  # persistent storage SEUs
        seed=42,
    )

    print("Running hue shift on a 3x3 grid while killing cells (1,1) and (0,2)")
    print("mid-flight, with 1% transient ALU faults and memory upsets...\n")
    outcome = sim.run_image_job(gradient(8, 8), hue_shift(), max_rounds=4)

    stats = outcome.stats
    print(f"cells failed            : {list(stats.failed_cells)}")
    for report in sim.watchdog.reports:
        homes = ", ".join(f"{coord}x{n}" for coord, n in report.adopted.items())
        print(
            f"  cell {report.failed_cell} died at cycle {report.cycle}: "
            f"{report.salvaged_words} pending words salvaged "
            f"({homes or 'none'}), {report.lost_words} lost"
        )
    print(f"memory upsets injected  : {stats.memory_upsets}")
    print(f"packets dropped         : {stats.dropped_packets}")
    print(f"submission rounds used  : {outcome.job.rounds}")
    print(f"total cycles            : {stats.cycles}")
    print(f"pixel accuracy          : {outcome.pixel_accuracy * 100:.1f}%")

    print()
    print(render_grid(sim.grid))
    print()
    print(render_reachability(sim.grid))

    if outcome.pixel_accuracy == 1.0:
        print("\nEvery pixel recovered: the watchdog + salvage + retry stack")
        print("absorbed two dead cells without losing a single result.")
    else:
        wrong = outcome.expected.difference_count(outcome.output)
        print(f"\n{wrong} pixels lost or corrupted despite recovery.")


if __name__ == "__main__":
    main()
