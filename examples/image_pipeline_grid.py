#!/usr/bin/env python
"""Full-system demo: process an image on the NanoBox Processor Grid.

Drives the complete paper architecture end to end: the CMOS control
processor packetises a 64-pixel bitmap into instruction packets (unique
instruction ID = pixel ID), shifts them into a 4x4 grid over the 8-bit
edge buses, switches every cell to compute mode, then shifts the
majority-voted results back out and reassembles the image -- first the
reverse-video workload, then the hue shift, like the paper's concept
demonstration.

Run:
    python examples/image_pipeline_grid.py
"""

from repro import GridSimulator
from repro.workloads import Bitmap, gradient, hue_shift, reverse_video


def show(bitmap: Bitmap, label: str) -> None:
    """Coarse ASCII rendering of an 8-bit grayscale bitmap."""
    shades = " .:-=+*#%@"
    print(f"{label}:")
    for y in range(bitmap.height):
        row = ""
        for x in range(bitmap.width):
            row += shades[bitmap.get(x, y) * (len(shades) - 1) // 255] * 2
        print("   " + row)
    print()


def main() -> None:
    image = gradient(8, 8)
    show(image, "input image (diagonal gradient)")

    sim = GridSimulator(rows=4, cols=4, alu_scheme="tmr", seed=7)

    for workload in (reverse_video(), hue_shift()):
        outcome = sim.run_image_job(image, workload)
        cycles = outcome.job.cycles
        show(outcome.output, f"after {workload.name}")
        print(
            f"  {workload.name}: {outcome.pixel_accuracy * 100:.1f}% pixels "
            f"correct in {cycles.total} cycles "
            f"(shift-in {cycles.shift_in} / compute {cycles.compute} / "
            f"shift-out {cycles.shift_out})"
        )
        assert outcome.output == workload.apply(image)
        print()

    print("Both workloads reassembled exactly -- the unique instruction IDs")
    print("let the control processor accept results in any arrival order.")


if __name__ == "__main__":
    main()
