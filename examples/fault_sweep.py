#!/usr/bin/env python
"""Regenerate paper Figure 7 (and optionally 8/9) as a text plot.

Sweeps the four no-module-redundancy ALUs -- conventional CMOS, Hamming
LUTs, uncoded LUTs, triplicated-string LUTs -- across the paper's
eighteen injected fault percentages, five trials of each of the two
image workloads per point, exactly the Section 4 methodology.

Run:
    python examples/fault_sweep.py              # Figure 7
    python examples/fault_sweep.py figure8      # time redundancy
    python examples/fault_sweep.py figure9      # space redundancy
    python examples/fault_sweep.py figure7 --quick
"""

import sys

from repro.experiments.figures import PAPER_FAULT_PERCENTAGES, run_figure


def main(argv) -> int:
    name = "figure7"
    quick = "--quick" in argv
    for arg in argv:
        if arg.startswith("figure"):
            name = arg

    percents = (0, 0.5, 1, 3, 9, 30, 75) if quick else PAPER_FAULT_PERCENTAGES
    trials = 2 if quick else 5
    print(f"Regenerating {name} "
          f"({len(percents)} fault percentages x {trials} trials x 2 workloads)...")
    result = run_figure(
        name, fault_percents=percents, trials_per_workload=trials, seed=2004
    )
    print()
    print(result.to_text())
    print()
    print(f"max per-point stddev: {result.max_stddev():.2f} percentage points "
          "(paper's worst case: 24.51)")

    series = result.series()
    tmr = [v for v in series if v.endswith("s") and "cmos" not in v][0]
    knee = list(percents).index(3) if 3 in percents else -1
    print(f"{tmr} at 3% injected faults: {series[tmr][knee]:.1f}% correct")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
