#!/usr/bin/env python
"""Quickstart: fault-inject a NanoBox ALU and watch the hierarchy mask it.

Builds the paper's best configuration (``aluss``: triplicated-string
lookup tables inside module-level space redundancy), runs the two image
workloads under increasing transient-fault pressure, and prints the
percent of instructions that still compute correctly -- the y-axis of the
paper's Figures 7-9.

Run:
    python examples/quickstart.py
"""

from repro import (
    ExactFractionMask,
    FaultCampaign,
    build_alu,
    describe_unit,
    fit_for_fault_fraction,
    render_tree,
)
from repro.workloads import gradient, paper_workloads


def main() -> None:
    alu = build_alu("aluss")

    print("The recursive NanoBox hierarchy inside this ALU:")
    print(render_tree(describe_unit(alu)))
    print()

    workloads = paper_workloads(gradient(8, 8))
    print(f"{'fault %':>8}  {'raw FIT':>10}  {'correct %':>10}")
    for percent in (0, 0.5, 1, 2, 3, 5, 9):
        campaign = FaultCampaign(
            alu, ExactFractionMask(percent / 100), seed=2004
        )
        result = campaign.run_workload_suite(workloads, trials_per_workload=5)
        fit = fit_for_fault_fraction(percent / 100, alu.site_count)
        print(f"{percent:>8}  {fit:>10.1e}  {result.percent_correct:>10.1f}")

    print()
    print("Paper headline: ~98% correct at 3% injected faults (FIT ~ 1e24),")
    print("twenty orders of magnitude above contemporary CMOS failure rates.")


if __name__ == "__main__":
    main()
