#!/usr/bin/env python
"""Non-streaming workloads on the grid (paper future work, implemented).

The image kernels are one-shot data-parallel streams; this demo runs
*dependent* computations -- a balanced XOR-checksum tree and an FIR-like
filter -- where later instructions consume earlier results.  The CMOS
control processor resolves the dependencies between waves, submitting
each wave as its own shift-in / compute / shift-out round, and the job
still survives a cell failure mid-run.

Run:
    python examples/dataflow_on_grid.py
"""

from repro.grid.simulator import GridSimulator
from repro.workloads.dataflow import (
    GridDataflowExecutor,
    checksum_tree_program,
    fir_filter_program,
)


def main() -> None:
    data = [(i * 53 + 17) & 0xFF for i in range(16)]

    print("1) XOR-checksum reduction tree over 16 bytes")
    program = checksum_tree_program(data)
    sim = GridSimulator(rows=3, cols=3, seed=3)
    outcome = GridDataflowExecutor(sim).run(program)
    expected = program.reference_results()
    final = outcome.results[len(program) - 1]
    software = 0
    for byte in data:
        software ^= byte
    print(f"   {len(program)} instructions in {program.depth} dependency "
          f"waves, {sim.grid.cycle} fabric cycles")
    print(f"   grid checksum = {final:#04x}, software checksum = "
          f"{software:#04x}, match = {final == software}")
    assert outcome.results == expected

    print()
    print("2) FIR-like filter with a cell killed mid-computation")
    program = fir_filter_program(data[:10])
    sim = GridSimulator(rows=3, cols=3, seed=4, kill_schedule={80: [(1, 1)]})
    outcome = GridDataflowExecutor(sim).run(program, max_rounds=3)
    accuracy = outcome.accuracy_against(program.reference_results())
    print(f"   {len(program)} instructions, depth {program.depth}; "
          f"cell (1,1) killed at cycle 80")
    print(f"   failed cells: {list(sim.stats().failed_cells)}, "
          f"salvaged {sim.stats().salvaged_words} words")
    print(f"   node accuracy after recovery: {accuracy * 100:.1f}%")

    print()
    print("Dependency waves turn the streaming co-processor into a general")
    print("(if slow) compute fabric -- the adaptation the paper's Section 7")
    print("asks about.")


if __name__ == "__main__":
    main()
