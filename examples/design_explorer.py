#!/usr/bin/env python
"""Design explorer: pick a NanoBox configuration for your environment.

Given a target accuracy and an expected raw device FIT rate, walks the
closed-form models (cross-validated against the Monte Carlo simulators
by the test suite) to recommend a bit-level technique, and reports the
watchdog-harvesting horizon the grid should plan around.

Run:
    python examples/design_explorer.py            # defaults: 98% @ 1e23 FIT
    python examples/design_explorer.py 99 1e22
"""

import sys

from repro.analysis.design_space import (
    fault_budget,
    fit_budget,
    tradeoff_table,
)
from repro.analysis.system import (
    disagreement_probability,
    expected_instructions_to_disable,
    grid_degradation_horizon,
)
from repro.faults.fit import faults_per_cycle_for_fit


SCHEMES = ("none", "hamming", "tmr", "5mr", "7mr")

#: Sites of the single-core design per scheme (for FIT -> fraction).
SITES = {"none": 512, "hamming": 672, "tmr": 1536, "5mr": 2560, "7mr": 3584}


def main(argv) -> int:
    target = float(argv[0]) if argv else 98.0
    environment_fit = float(argv[1]) if len(argv) > 1 else 1e23

    print(f"Target: >= {target:.1f}% correct instructions in an environment")
    print(f"of ~{environment_fit:.1e} raw FIT.\n")

    print(f"{'scheme':>8}  {'overhead':>8}  {'FIT budget':>11}  {'verdict':>8}")
    viable = []
    for scheme in SCHEMES:
        budget = fit_budget(scheme, target)
        overhead = SITES[scheme] / SITES["none"]
        ok = budget >= environment_fit
        if ok:
            viable.append((scheme, overhead))
        print(f"{scheme:>8}  {overhead:>7.2f}x  {budget:>11.2e}  "
              f"{'OK' if ok else 'too weak':>8}")

    if not viable:
        print("\nNo bit-level technique meets the target alone; add module-")
        print("level redundancy or lower the clock (fewer faults per cycle).")
        return 1

    scheme = min(viable, key=lambda pair: pair[1])[0]
    print(f"\nCheapest viable technique: {scheme} "
          f"({min(viable, key=lambda p: p[1])[1]:.2f}x area).")

    # Translate the environment FIT into this scheme's per-site fraction.
    faults_per_cycle = faults_per_cycle_for_fit(environment_fit)
    fraction = min(faults_per_cycle / SITES[scheme], 0.5)
    print(f"At {environment_fit:.1e} FIT this design sees "
          f"~{faults_per_cycle:.1f} faults/cycle "
          f"({100 * fraction:.2f}% of its {SITES[scheme]} sites).")

    detect = disagreement_probability(scheme, fraction)
    horizon = grid_degradation_horizon(scheme, fraction, error_threshold=8)
    mean_disable = expected_instructions_to_disable(8, detect)
    print(f"Triple-computation disagreement probability: {detect:.4f}")
    print(f"Mean instructions before the watchdog disables a cell: "
          f"{mean_disable:.0f}")
    print(f"Plan scrubbing / re-provisioning every ~{horizon} instructions "
          f"per cell (90% survival).")

    print("\nFull trade-off at the implied fault fraction:")
    for name, overhead, accuracy, fom in tradeoff_table(fraction):
        print(f"  {name:>8}: {overhead:4.2f}x area, {accuracy:5.1f}% correct, "
              f"{fom:5.1f} accuracy/area")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
