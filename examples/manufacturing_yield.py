#!/usr/bin/env python
"""Manufacturing-yield demo: defective parts, not just noisy ones.

The paper's opening argument: "Manufacturing flawless chips will become
prohibitively expensive, if not impossible.  Instead of assuming that
defects and transient errors are uncommon, future circuits must adapt
to, and coexist with, [them]."  This example fabricates batches of ALUs
with random stuck-at cells at nanotechnology-scale defect densities and
shows how each rung of bit-level fault tolerance converts defect density
into usable yield.

Run:
    python examples/manufacturing_yield.py
"""

from repro.experiments.defect_yield import yield_sweep, yield_table_text


def main() -> None:
    densities = (1e-4, 1e-3, 5e-3)
    print("Fabricating 12 parts per (variant, density) cell with random")
    print("stuck-at storage cells; functional-testing each part, then")
    print("running the image workloads with 1% transient faults on top...\n")

    points = yield_sweep(
        variants=("aluncmos", "alunn", "aluns", "aluss"),
        densities=densities,
        n_parts=12,
        seed=7,
    )
    print(yield_table_text(points))

    aluns_worst = points["aluns"][-1]
    alunn_worst = points["alunn"][-1]
    print()
    print(
        f"At density {densities[-1]:g}, an uncoded part has a "
        f"{100 * alunn_worst.any_defect_probability:.0f}% chance of at least "
        "one dead cell;"
    )
    print(
        f"triplicated strings turn that into "
        f"{100 * aluns_worst.perfect_yield:.0f}% perfect yield and "
        f"{aluns_worst.mean_accuracy:.1f}% workload accuracy anyway --"
    )
    print("defect tolerance and transient tolerance from the same mechanism.")


if __name__ == "__main__":
    main()
