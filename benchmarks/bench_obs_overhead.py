"""Overhead of the observability layer (PR 4 tentpole acceptance).

Runs the batched fault campaign three ways -- no observer installed
(the default null path), with a live observer, and back to the null
path -- and asserts the tentpole's two contracts:

* a live observer never perturbs results (suite outputs are equal);
* instrumentation costs < 5% wall clock on the campaign hot path,
  measured best-of-N against the uninstrumented baseline.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) to shrink the workload
and skip the wall-clock ceiling while keeping the identity assertion.
"""

import os
import time

from repro.alu.variants import build_alu
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import ExactFractionMask
from repro.obs import Observer, observing

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Trials per workload: enough batched suite passes that per-trial
#: instrumentation cost would show up in the total.
OVERHEAD_TRIALS = 2 if SMOKE else 40
OVERHEAD_ROUNDS = 1 if SMOKE else 5

#: Acceptance ceiling on (observed - bare) / bare.
MAX_OVERHEAD = 0.05


def _suite(bench_streams):
    campaign = FaultCampaign(
        build_alu("alunn"), ExactFractionMask(0.03), seed=7
    )
    return campaign.run_workload_suite(
        bench_streams, OVERHEAD_TRIALS, batched=True
    )


def _best_of(fn, rounds):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_bench_observed_campaign(benchmark, bench_streams):
    """Time the instrumented path so its cost shows in benchmark history."""

    def observed():
        with observing(Observer()):
            return _suite(bench_streams)

    result = benchmark.pedantic(
        observed, rounds=1 if SMOKE else 3, iterations=1
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_obs_overhead_under_ceiling(benchmark, bench_streams):
    """The tentpole acceptance check: <5% overhead, identical results."""
    bare_result, t_bare = _best_of(
        lambda: _suite(bench_streams), OVERHEAD_ROUNDS
    )

    def observed():
        obs = Observer()
        with observing(obs):
            result = _suite(bench_streams)
        return result, obs

    (obs_result, obs), t_obs = _best_of(observed, OVERHEAD_ROUNDS)
    benchmark.pedantic(lambda: _suite(bench_streams), rounds=1, iterations=1)

    # Never-perturb: the instrumented run computed the same experiment.
    assert obs_result == bare_result, "observer perturbed campaign results"
    # And it really did observe it.
    expected_trials = OVERHEAD_TRIALS * len(bench_streams)
    assert obs.metrics.counter("campaign.trials").value == expected_trials

    overhead = (t_obs - t_bare) / t_bare
    print(
        f"\nbatched suite x{OVERHEAD_TRIALS} trials: bare {t_bare:.3f}s, "
        f"observed {t_obs:.3f}s, overhead {overhead * 100:+.1f}%"
    )
    if not SMOKE:
        assert overhead < MAX_OVERHEAD, (
            f"observability overhead {overhead * 100:.1f}% exceeds "
            f"{MAX_OVERHEAD * 100:.0f}% ceiling"
        )
