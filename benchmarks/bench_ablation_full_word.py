"""Ablation: triplicate everything vs the paper's critical-fields-only.

The paper protects only the data-valid / to-be-computed flags and the
result copies; the soak experiment showed accumulated upsets leak through
the unprotected operand and ID fields.  This study subjects both memory
word layouts to equal per-bit upset probabilities and compares the
field-corruption rate against the 2.08x storage cost of protecting
everything.
"""

import numpy as np

from benchmarks.conftest import SMOKE, scaled

from repro.cell.memword import MEMORY_WORD_BITS, MemoryWord
from repro.cell.memword_full import (
    FULL_WORD_BITS,
    FullyTriplicatedWord,
    storage_overhead,
)

UPSET_PROBS = (0.002, 0.01, 0.03)
TRIALS = scaled(1200, 150)


def _noise(rng, width, p):
    mask = 0
    hits = np.nonzero(rng.random(width) < p)[0]
    for i in hits:
        mask |= 1 << int(i)
    return mask


def corruption_rates():
    word = FullyTriplicatedWord(
        instruction_id=0x2BAD, opcode=0b010, operand1=0x5A,
        operand2=0xFF, result=0xA5, data_valid=True, to_be_computed=False,
    )
    paper_raw = word.to_paper_word().pack()
    full_raw = word.pack()
    reference = word.to_paper_word()

    rng = np.random.default_rng(2004)
    rows = []
    for p in UPSET_PROBS:
        paper_bad = full_bad = 0
        for _ in range(TRIALS):
            decoded_paper = MemoryWord.unpack(
                paper_raw ^ _noise(rng, MEMORY_WORD_BITS, p)
            )
            decoded_full = FullyTriplicatedWord.unpack(
                full_raw ^ _noise(rng, FULL_WORD_BITS, p)
            ).to_paper_word()
            if decoded_paper != reference:
                paper_bad += 1
            if decoded_full != reference:
                full_bad += 1
        rows.append((p, paper_bad / TRIALS, full_bad / TRIALS))
    return rows


def test_bench_full_word_tmr(benchmark):
    rows = benchmark.pedantic(corruption_rates, rounds=1, iterations=1)
    print()
    print(f"  {'upset p':>8}  {'paper layout':>12}  {'full TMR':>9}")
    for p, paper, full in rows:
        print(f"  {p:>8g}  {100 * paper:>11.1f}%  {100 * full:>8.1f}%")
    print(f"  storage: {MEMORY_WORD_BITS} vs {FULL_WORD_BITS} bits "
          f"({storage_overhead():.2f}x)")

    if SMOKE:
        return
    # Full TMR must dominate at every swept probability.
    for p, paper, full in rows:
        assert full < paper, p
    # And decisively so at the low-probability end (single upsets are
    # exactly what the full layout eliminates).
    assert rows[0][2] < rows[0][1] / 4
