"""Extension (abstract / §1): manufacturing defects, not just transients.

The paper's motivation explicitly pairs "substantial numbers of
manufacturing defects" with "high transient error rates" but only
evaluates the transients.  This bench manufactures parts with random
stuck-at cells and measures perfect yield and graceful degradation per
bit-level technique -- the defect half of the NanoBox story.
"""

from benchmarks.conftest import scaled
from repro.experiments.defect_yield import yield_sweep, yield_table_text

DENSITIES = (5e-4, 2e-3, 5e-3)
VARIANTS = ("aluncmos", "alunn", "aluns")
PARTS = scaled(12, 4)


def run_sweep():
    return yield_sweep(
        variants=VARIANTS, densities=DENSITIES, n_parts=PARTS, seed=2004
    )


def test_bench_defect_yield(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(yield_table_text(points))

    by = {
        (p.variant, p.density): p
        for series in points.values()
        for p in series
    }
    # The recursive hierarchy converts defect density into yield: at
    # every density the triplicated-string parts yield at least as well
    # as uncoded parts, and degrade more gracefully.
    for d in DENSITIES:
        assert by[("aluns", d)].perfect_yield >= by[("alunn", d)].perfect_yield
        assert (
            by[("aluns", d)].mean_accuracy_transient
            >= by[("alunn", d)].mean_accuracy_transient
        )
    # TMR parts stay near-perfect even at the highest density swept.
    assert by[("aluns", DENSITIES[-1])].mean_accuracy >= 98.0
