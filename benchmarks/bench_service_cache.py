"""Cost of the service tier: result cache and single-flight dedup.

Two measurements with the service invariants asserted alongside:

* raw :class:`~repro.service.cache.ResultCache` put+get round-trip
  throughput, including the sha-256 verification every read pays (the
  price of never serving a torn or tampered artifact);
* a duplicate-heavy submission storm through a :class:`JobManager`
  with an in-process executor -- wall-clock is dominated by how well
  admission and single-flight collapse the storm, and the assertions
  pin exactly one computation per distinct spec with byte-identical
  responses (the dup-storm chaos invariant, measured instead of
  injected).

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) to shrink the workload
while keeping every identity assertion.
"""

import os
import time

from repro.service.cache import ResultCache
from repro.service.jobs import JobSpec
from repro.service.runner import JobManager, JobOutput

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Entries per cache round-trip round, and payload size in bytes.
CACHE_ENTRIES = 8 if SMOKE else 64
PAYLOAD_BYTES = 1 << 12 if SMOKE else 1 << 16

#: Storm shape: total submissions over this many distinct specs.
STORM_SUBMISSIONS = 24 if SMOKE else 240
STORM_DISTINCT = 3 if SMOKE else 12


def test_bench_result_cache_roundtrip(benchmark, tmp_path):
    payloads = {
        f"key{index:04x}": bytes([index % 251]) * PAYLOAD_BYTES
        for index in range(CACHE_ENTRIES)
    }

    def put_and_get():
        cache = ResultCache(tmp_path / "cache")
        for key, payload in payloads.items():
            cache.put(key, payload)
        loaded = {key: cache.get(key) for key in payloads}
        return cache, loaded

    cache, loaded = benchmark.pedantic(
        put_and_get, rounds=1 if SMOKE else 3, iterations=1
    )
    assert loaded == payloads
    assert cache.stats.hits == CACHE_ENTRIES
    assert cache.stats.corruptions == 0


class _InProcessExecutor:
    """Deterministic artifact per cache key, with thread-safe counts."""

    def __init__(self):
        import threading

        self.calls = {}
        self._lock = threading.Lock()

    def run(self, record, job_dir, checkpoint_dir):
        with self._lock:
            self.calls[record.cache_key] = (
                self.calls.get(record.cache_key, 0) + 1
            )
        time.sleep(0.001)  # stand-in for real compute
        return JobOutput(
            stdout=b"artifact:" + record.cache_key.encode(),
            stderr="",
            exit_status=0,
        )


def test_bench_single_flight_dedup_storm(benchmark, tmp_path):
    specs = [
        JobSpec.from_request("grid", {"rows": 4, "cols": 4, "seed": index})
        for index in range(STORM_DISTINCT)
    ]

    def storm(round_index=[0]):
        round_index[0] += 1
        executor = _InProcessExecutor()
        manager = JobManager(
            tmp_path / f"state{round_index[0]}",
            execute=executor,
            workers=4,
            queue_capacity=STORM_SUBMISSIONS,
        )
        manager.start()
        outcomes = [
            manager.submit(specs[index % STORM_DISTINCT])
            for index in range(STORM_SUBMISSIONS)
        ]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            records = manager.records()
            if all(r.state in ("done",) for r in records):
                break
            time.sleep(0.002)
        responses = [manager.result(o.record.id) for o in outcomes]
        manager.drain(grace=0.0)
        return executor, outcomes, responses

    executor, outcomes, responses = benchmark.pedantic(
        storm, rounds=1 if SMOKE else 3, iterations=1
    )
    # The dup-storm invariant, measured: one computation per distinct
    # spec, every response present and byte-identical to it.
    assert executor.calls == {spec.cache_key: 1 for spec in specs}
    assert all(outcome.accepted for outcome in outcomes)
    for index, (payload, reason) in enumerate(responses):
        assert reason == "ok"
        expected = specs[index % STORM_DISTINCT].cache_key.encode()
        assert payload == b"artifact:" + expected
