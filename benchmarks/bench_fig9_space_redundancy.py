"""Figure 9: percent correct vs injected fault rate, space redundancy.

Three concurrent ALU copies voted through a fault-prone LUT (or CMOS)
voter.  Section 5: ``aluss`` -- triplicated bit strings AND triplicated
modules -- is the paper's best configuration, reaching 98 % correct at
3 % injected faults (raw FIT ~ 1e24) for a ~9x area cost.
"""

from benchmarks.conftest import BENCH_PERCENTS, BENCH_TRIALS, print_series
from repro.experiments.figures import figure7, figure9


def run_figure9():
    return figure9(fault_percents=BENCH_PERCENTS,
                   trials_per_workload=BENCH_TRIALS, seed=2004)


def test_bench_figure9(benchmark):
    result = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    series = result.series()
    print_series(result.title, BENCH_PERCENTS, series)

    idx = {p: i for i, p in enumerate(BENCH_PERCENTS)}
    # The paper's headline: ~98% at 3% injected on aluss.
    assert series["aluss"][idx[3]] >= 94.0
    assert series["aluss"][idx[1]] >= 99.0
    for p in BENCH_PERCENTS[1:]:
        if series["alusn"][idx[p]] >= 5.0:
            assert series["alusn"][idx[p]] > series["alush"][idx[p]], p
    assert series["aluscmos"][idx[3]] < 25.0

    # aluss ~ aluns: eliminating module-level FT loses almost nothing.
    fig7 = figure7(fault_percents=(3,), trials_per_workload=BENCH_TRIALS,
                   seed=2004)
    delta = abs(
        result.point("aluss", 3).percent_correct
        - fig7.point("aluns", 3).percent_correct
    )
    assert delta < 8.0
