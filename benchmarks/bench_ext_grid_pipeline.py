"""Extension (paper Section 7): cycle-based full-system simulation.

Times a complete shift-in / compute / shift-out image job on the grid --
the paper's envisioned deployment -- and reports the per-phase cycle
budget, which is dominated by serialising 8-flit instruction packets over
the 8-bit edge buses exactly as the paper's bus math predicts.
"""

from benchmarks.conftest import scaled
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video


def run_pipeline():
    sim = GridSimulator(rows=4, cols=4, seed=11)
    return sim.run_image_job(gradient(8, 8), reverse_video())


def test_bench_grid_image_pipeline(benchmark):
    outcome = benchmark.pedantic(run_pipeline, rounds=scaled(2, 1),
                                 iterations=1)
    cycles = outcome.job.cycles
    print()
    print(f"  shift-in {cycles.shift_in} + compute {cycles.compute} + "
          f"shift-out {cycles.shift_out} = {cycles.total} cycles "
          f"for 64 pixels on a 4x4 grid")
    assert outcome.pixel_accuracy == 1.0
    # Shift-in must dominate: 64 instruction packets x 8 flits over four
    # column buses, versus 4-flit result packets on the way out.
    assert cycles.shift_in > cycles.shift_out
    assert cycles.shift_in >= 64 * 8 / 4
