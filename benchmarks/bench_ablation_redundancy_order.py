"""Ablation: bit-level replication order (1x / 3x / 5x / 7x strings).

The paper picks triplication; this sweep shows what higher-order
replication buys at the same fault fractions, against its linear area
cost (5x strings = 2560 sites, 7x = 3584, versus aluns' 1536).
"""

from benchmarks.conftest import SMOKE, print_series, scaled
from repro.experiments.ablations import ABLATION_PERCENTS, redundancy_order_ablation


def run_ablation():
    return redundancy_order_ablation(trials_per_workload=scaled(3, 1))


def test_bench_redundancy_order(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_series("Bit-level replication order", ABLATION_PERCENTS, series)
    if SMOKE:
        return
    mid = list(ABLATION_PERCENTS).index(5)
    assert series["3x"][mid] > series["1x"][mid]
    assert series["5x"][mid] >= series["3x"][mid]
    assert series["7x"][mid] >= series["5x"][mid]
    # Diminishing returns: the 3x->5x gain exceeds the 5x->7x gain at the
    # moderate-density knee (where TMR is already strong).
    knee = list(ABLATION_PERCENTS).index(2)
    gain_35 = series["5x"][knee] - series["3x"][knee]
    gain_57 = series["7x"][knee] - series["5x"][knee]
    assert gain_35 >= gain_57 - 2.0
