"""Per-kernel tier benchmarks for the compiled backend (PR 7).

The compiled tier accelerates three hot kernels; each gets its own
scalar/batched/compiled timer trio on the variant that stresses it:

* coded-LUT read + correct -- ``alunh`` (Hamming-coded LUT banks, the
  decode path dominates);
* gate-netlist evaluation -- ``aluncmos`` (CMOS majority netlists, the
  gate interpreter dominates);
* majority vote / ALU composition -- ``alusn`` (simplex-redundant
  composition, the vote/recombine path dominates).

The trios feed the artifact's derived ``speedups`` dict (see
``repro.obs.bench._SPEEDUP_TWINS``), which CI holds to floors via
``bench compare --speedup-floor``.  Compiled benchmarks take one warmup
round so first-call JIT/compile cost stays outside the timed window; it
is recorded separately under ``kernel.jit_compile`` / ``kernel.warmup``.

Set ``REPRO_BENCH_SMOKE=1`` to drop to one trial and one round.
"""

import os

from repro.alu.variants import build_alu
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import ExactFractionMask

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Paper methodology is five trials per workload; smoke keeps one.
TRIALS = 1 if SMOKE else 5
ROUNDS = 1 if SMOKE else 3


def _campaign(variant):
    return FaultCampaign(
        build_alu(variant), ExactFractionMask(0.03), seed=1
    )


def _suite(benchmark, bench_streams, variant, backend, warmup=False):
    campaign = _campaign(variant)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(
            bench_streams, TRIALS, backend=backend
        ),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=1 if warmup else 0,
    )
    assert 0.0 <= result.percent_correct <= 100.0


# --- coded-LUT read/correct: Hamming-coded banks -------------------------

def test_bench_lut_scalar(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alunh", "scalar")


def test_bench_lut_batched(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alunh", "batched")


def test_bench_lut_compiled(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alunh", "compiled", warmup=True)


# --- gate-netlist evaluation: CMOS majority gates ------------------------

def test_bench_netlist_scalar(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "aluncmos", "scalar")


def test_bench_netlist_batched(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "aluncmos", "batched")


def test_bench_netlist_compiled(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "aluncmos", "compiled", warmup=True)


# --- majority vote / ALU composition: simplex redundancy -----------------

def test_bench_vote_scalar(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alusn", "scalar")


def test_bench_vote_batched(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alusn", "batched")


def test_bench_vote_compiled(benchmark, bench_streams):
    _suite(benchmark, bench_streams, "alusn", "compiled", warmup=True)
