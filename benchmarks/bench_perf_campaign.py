"""Throughput of the vectorized fault-injection engine (PR 2 tentpole).

Measures the three execution tiers of a fault campaign -- scalar
per-instruction, batched NumPy, and the parallel executor -- and asserts
the tentpole's two contracts on a full Figure 7 regeneration:

* batched + ``jobs=4`` is at least 5x faster than the scalar serial path;
* the report text is byte-identical between the tiers.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) to shrink the sweep and
skip the wall-clock floor while keeping the identity assertion.
"""

import os
import time

import pytest

from repro.experiments.figures import figure7
from repro.experiments.report import format_series
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import ExactFractionMask
from repro.alu.variants import build_alu
from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec, run_campaign_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Figure 7 sweep used for the speedup measurement.
SPEEDUP_PERCENTS = (0, 1, 3, 9) if SMOKE else (0, 0.5, 1, 2, 3, 5, 9, 20, 50, 75)
SPEEDUP_TRIALS = 1 if SMOKE else 5


def _figure7_text(batched, jobs):
    result = figure7(
        fault_percents=SPEEDUP_PERCENTS,
        trials_per_workload=SPEEDUP_TRIALS,
        seed=2004,
        jobs=jobs,
        batched=batched,
    )
    return format_series(
        "fault%", list(SPEEDUP_PERCENTS), result.series()
    )


def test_bench_suite_scalar(benchmark, bench_streams):
    campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.03), seed=1)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(bench_streams, 1, batched=False),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_suite_batched(benchmark, bench_streams):
    campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.03), seed=1)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(bench_streams, 1, batched=True),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_executor_parallel(benchmark):
    items = [
        CampaignWorkItem(
            alu=ALUSpec.variant(v),
            policy=PolicySpec.exact(0.03),
            trials_per_workload=1,
            seed=1,
        )
        for v in ("alunn", "alunh")
    ]
    results = benchmark.pedantic(
        lambda: run_campaign_items(items, jobs=2), rounds=1, iterations=1
    )
    assert len(results) == 2


def _timed(fn, rounds):
    """Best-of-``rounds`` wall time (standard noise suppression)."""
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_figure7_speedup_and_identity(benchmark):
    """The tentpole acceptance check: >=5x on Figure 7, identical text."""
    rounds = 1 if SMOKE else 2
    scalar_text, t_scalar = _timed(
        lambda: _figure7_text(batched=False, jobs=1), rounds=1
    )

    def fast():
        return _figure7_text(batched=True, jobs=4)

    fast_text, t_fast = _timed(fast, rounds=rounds)
    benchmark.pedantic(fast, rounds=1, iterations=1)

    assert fast_text == scalar_text, "batched/parallel output diverged"
    speedup = t_scalar / t_fast
    print(
        f"\nFigure 7 regeneration: scalar {t_scalar:.2f}s, "
        f"batched+jobs=4 {t_fast:.2f}s, speedup {speedup:.2f}x"
    )
    if not SMOKE:
        assert speedup >= 5.0, f"speedup {speedup:.2f}x below the 5x target"
