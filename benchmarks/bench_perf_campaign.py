"""Throughput of the fault-injection engine across all three tiers.

Measures the execution tiers of a fault campaign -- scalar
per-instruction, batched NumPy, compiled native kernel (PR 7), and the
parallel executor -- and asserts the tentpole contracts:

* batched + ``jobs=4`` is at least 5x faster than the scalar serial
  path on a full Figure 7 regeneration, with byte-identical text;
* on the netlist-heavy ``aluscmos`` cell at the paper's five trials per
  workload the compiled tier is at least 4x over batched and 25x over
  scalar (measured ~5-6x / ~140x on the CI class of machine).

Each ``*_scalar`` / ``*_batched`` / ``*_compiled`` timer trio also feeds
the artifact's derived ``speedups`` dict, which CI holds to a floor via
``bench compare --speedup-floor``.  Compiled benchmarks pass one warmup
round so JIT/compile cost lands outside the timed window (it is recorded
separately under the ``kernel.jit_compile`` / ``kernel.warmup`` timers).

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) to shrink the sweep and
skip the wall-clock floors while keeping the identity assertions.
"""

import os
import time

import pytest

from repro.experiments.figures import figure7
from repro.experiments.report import format_series
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import BernoulliMask, ExactFractionMask
from repro.alu.variants import build_alu
from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec, run_campaign_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Figure 7 sweep used for the speedup measurement.
SPEEDUP_PERCENTS = (0, 1, 3, 9) if SMOKE else (0, 0.5, 1, 2, 3, 5, 9, 20, 50, 75)
SPEEDUP_TRIALS = 1 if SMOKE else 5


def _figure7_text(batched, jobs):
    result = figure7(
        fault_percents=SPEEDUP_PERCENTS,
        trials_per_workload=SPEEDUP_TRIALS,
        seed=2004,
        jobs=jobs,
        batched=batched,
    )
    return format_series(
        "fault%", list(SPEEDUP_PERCENTS), result.series()
    )


def test_bench_suite_scalar(benchmark, bench_streams):
    campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.03), seed=1)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(bench_streams, 1, batched=False),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_suite_batched(benchmark, bench_streams):
    campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.03), seed=1)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(bench_streams, 1, batched=True),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_suite_compiled(benchmark, bench_streams):
    campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.03), seed=1)
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(
            bench_streams, 1, backend="compiled"
        ),
        rounds=1 if SMOKE else 3,
        iterations=1,
        warmup_rounds=1,  # JIT/compile cost stays off the timer
    )
    assert 0.0 <= result.percent_correct <= 100.0


#: The compiled tier's showcase cell: aluscmos is netlist-evaluation
#: bound (not RNG-draw bound like the large-LUT variants), so it is
#: where the native kernel pays off most.  Paper methodology trials.
#: Bernoulli injection rather than exact-fraction: the exact policy
#: spends most of each trial in an argpartition over the site axis --
#: an RNG-stream-identical cost every tier pays equally -- which dilutes
#: the kernel signal this cell exists to gate.
CMOS_TRIALS = 1 if SMOKE else 5


def _cmos_campaign():
    return FaultCampaign(
        build_alu("aluscmos"), BernoulliMask(0.03), seed=1
    )


def test_bench_cmos_scalar(benchmark, bench_streams):
    campaign = _cmos_campaign()
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(
            bench_streams, CMOS_TRIALS, backend="scalar"
        ),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_cmos_batched(benchmark, bench_streams):
    campaign = _cmos_campaign()
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(
            bench_streams, CMOS_TRIALS, backend="batched"
        ),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_cmos_compiled(benchmark, bench_streams):
    campaign = _cmos_campaign()
    result = benchmark.pedantic(
        lambda: campaign.run_workload_suite(
            bench_streams, CMOS_TRIALS, backend="compiled"
        ),
        rounds=1 if SMOKE else 3,
        iterations=1,
        warmup_rounds=1,
    )
    assert 0.0 <= result.percent_correct <= 100.0


def test_bench_executor_parallel(benchmark):
    items = [
        CampaignWorkItem(
            alu=ALUSpec.variant(v),
            policy=PolicySpec.exact(0.03),
            trials_per_workload=1,
            seed=1,
        )
        for v in ("alunn", "alunh")
    ]
    results = benchmark.pedantic(
        lambda: run_campaign_items(items, jobs=2), rounds=1, iterations=1
    )
    assert len(results) == 2


def _timed(fn, rounds):
    """Best-of-``rounds`` wall time (standard noise suppression)."""
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_figure7_speedup_and_identity(benchmark):
    """The tentpole acceptance check: >=5x on Figure 7, identical text."""
    rounds = 1 if SMOKE else 2
    scalar_text, t_scalar = _timed(
        lambda: _figure7_text(batched=False, jobs=1), rounds=1
    )

    def fast():
        return _figure7_text(batched=True, jobs=4)

    fast_text, t_fast = _timed(fast, rounds=rounds)
    benchmark.pedantic(fast, rounds=1, iterations=1)

    assert fast_text == scalar_text, "batched/parallel output diverged"
    speedup = t_scalar / t_fast
    print(
        f"\nFigure 7 regeneration: scalar {t_scalar:.2f}s, "
        f"batched+jobs=4 {t_fast:.2f}s, speedup {speedup:.2f}x"
    )
    if not SMOKE:
        assert speedup >= 5.0, f"speedup {speedup:.2f}x below the 5x target"


def test_compiled_tier_floor_and_identity(bench_streams):
    """PR 7 acceptance: on aluscmos at the paper's five trials the
    compiled tier is >=4x over batched and >=25x over scalar, and all
    three tiers produce field-identical trial streams."""
    campaign = _cmos_campaign()
    trials = CMOS_TRIALS

    def run(backend):
        return campaign.run_workload_suite(
            bench_streams, trials, backend=backend
        )

    run("compiled")  # JIT/compile warmup outside the timed window
    scalar, t_scalar = _timed(lambda: run("scalar"), rounds=1 if SMOKE else 2)
    batched, t_batched = _timed(lambda: run("batched"), rounds=1 if SMOKE else 3)
    compiled, t_compiled = _timed(
        lambda: run("compiled"), rounds=1 if SMOKE else 3
    )

    assert scalar.trials == batched.trials == compiled.trials, (
        "tiers diverged: the compiled kernel is not bit-identical"
    )
    over_batched = t_batched / t_compiled
    over_scalar = t_scalar / t_compiled
    print(
        f"\naluscmos x{trials} trials: scalar {t_scalar * 1e3:.1f}ms, "
        f"batched {t_batched * 1e3:.1f}ms, compiled {t_compiled * 1e3:.1f}ms "
        f"({over_batched:.2f}x over batched, {over_scalar:.1f}x over scalar)"
    )
    if not SMOKE:
        assert over_batched >= 4.0, (
            f"compiled only {over_batched:.2f}x over batched (floor 4x)"
        )
        assert over_scalar >= 25.0, (
            f"compiled only {over_scalar:.1f}x over scalar (floor 25x)"
        )
