"""Extension: sustained throughput versus transient fault pressure.

The paper measures *accuracy* versus fault rate; a deployed co-processor
also pays in *time*; faulty cells accumulate heartbeat errors, get
disabled, and their work rides the retry protocol.  This bench runs the
same image job at increasing per-cell ALU fault rates and reports cycles
per completed job, surviving cells, and accuracy together.
"""

from benchmarks.conftest import scaled
from repro.faults.mask import ExactFractionMask
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video

# The asserts key on the endpoints; smoke sweeps just those.
FAULT_PERCENTS = scaled((0.0, 1.0, 3.0, 5.0), (0.0, 5.0))


def run_sweep(scheme: str):
    rows = []
    for percent in FAULT_PERCENTS:
        sim = GridSimulator(
            rows=3,
            cols=3,
            alu_scheme=scheme,
            alu_fault_policy=(
                ExactFractionMask(percent / 100) if percent else None
            ),
            error_threshold=6,
            adaptive_routing=True,
            seed=2004,
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video(),
                                    max_rounds=4)
        alive = len(sim.grid.alive_cells())
        rows.append(
            (percent, outcome.stats.cycles, outcome.job.rounds, alive,
             outcome.pixel_accuracy)
        )
    return rows


def test_bench_throughput_vs_fault_rate(benchmark):
    uncoded = benchmark.pedantic(run_sweep, args=("none",), rounds=1,
                                 iterations=1)
    tmr = run_sweep("tmr")
    print()
    for scheme, rows in (("none", uncoded), ("tmr", tmr)):
        print(f"  scheme={scheme}")
        print(f"  {'fault %':>8}  {'cycles':>7}  {'rounds':>6}  "
              f"{'alive':>5}  {'accuracy':>8}")
        for percent, cycles, rounds, alive, accuracy in rows:
            print(f"  {percent:>8g}  {cycles:>7}  {rounds:>6}  {alive:>5}  "
                  f"{accuracy:>8.3f}")

    # Fault-free baseline: one round, full grid, perfect image.
    assert uncoded[0][2] == 1 and uncoded[0][3] == 9 and uncoded[0][4] == 1.0
    # Uncoded cells blow their error budgets under fire: the watchdog
    # harvests cells and the job pays in cycles and/or accuracy.
    worst = uncoded[-1]
    assert worst[3] < 9 or worst[1] > uncoded[0][1]
    # TMR cells at the same rates stay alive and accurate.
    assert tmr[-1][3] == 9
    assert tmr[-1][4] >= 0.95
