"""Figure 1: the encoded-lookup-table concept, demonstrated.

Paper Figure 1 shows a sum function of four variables built (a) from
conventional combinational logic and (b) as an error-correcting lookup
table.  This bench constructs both -- the gate version on the netlist
substrate, the LUT version under each coding scheme -- verifies they
compute the same function, and injects the paper's per-fraction faults
into each to show what the encoding buys at the single-function scale.
"""

import itertools

import numpy as np

from benchmarks.conftest import scaled
from repro.faults.mask import ExactFractionMask
from repro.logic.gates import GateType
from repro.logic.hamming_checker import build_xor_tree
from repro.logic.netlist import Netlist
from repro.lut.coded import CodedLUT
from repro.lut.synth import figure1_sum_table

PERCENTS = (1, 3, 5, 10)
TRIALS = scaled(800, 200)


def build_gate_sum():
    """Figure 1(a): the sum bit from discrete XOR gates."""
    net = Netlist("figure1a")
    inputs = [net.input(name) for name in "abcd"]
    out = build_xor_tree(net, inputs, tag="sum")
    net.set_output("sum", out)
    return net


def gate_error_rate(net, fraction, rng):
    policy = ExactFractionMask(fraction)
    wrong = 0
    for _ in range(TRIALS):
        bits = [int(b) for b in rng.integers(0, 2, size=4)]
        mask = policy.generate(net.node_count, rng)
        got = net.evaluate(dict(zip("abcd", bits)), fault_mask=mask)["sum"]
        if got != sum(bits) % 2:
            wrong += 1
    return wrong / TRIALS


def lut_error_rate(lut, fraction, rng):
    policy = ExactFractionMask(fraction)
    table = lut.truth
    wrong = 0
    for _ in range(TRIALS):
        address = int(rng.integers(16))
        mask = policy.generate(lut.total_bits, rng)
        if lut.read(address, mask) != table.lookup(address):
            wrong += 1
    return wrong / TRIALS


def run_comparison():
    net = build_gate_sum()
    table = figure1_sum_table()
    # Functional equivalence first (the point of Figure 1).
    for bits in itertools.product((0, 1), repeat=4):
        assert net.evaluate(dict(zip("abcd", bits)))["sum"] == table(*bits)

    rng = np.random.default_rng(2004)
    results = {"gates": [gate_error_rate(net, p / 100, rng) for p in PERCENTS]}
    for scheme in ("none", "hamming", "tmr"):
        lut = CodedLUT(table, scheme)
        results[f"lut:{scheme}"] = [
            lut_error_rate(lut, p / 100, rng) for p in PERCENTS
        ]
    return results


def test_bench_figure1_concept(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    header = "  ".join(f"{k:>12}" for k in results)
    print(f"  {'fault %':>8}  {header}")
    for i, percent in enumerate(PERCENTS):
        row = "  ".join(f"{100 * results[k][i]:>11.1f}%" for k in results)
        print(f"  {percent:>8g}  {row}")

    # The TMR-encoded table is the most robust at every fraction.
    for i in range(len(PERCENTS)):
        assert results["lut:tmr"][i] <= results["lut:none"][i]
        assert results["lut:tmr"][i] <= results["gates"][i]
