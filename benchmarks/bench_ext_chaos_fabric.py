"""Extension: chaos/soak sweep of the fault-tolerant transport fabric.

The paper sweeps ALU-level fault density; here the *links* misbehave
instead: per-bit flips on the wire image, whole-packet drops, and stall
cycles.  The sweep compares the bare fabric (corruption caught only if a
packet no longer frames) against the protected one (CRC-8 framing +
bounded retransmit with backoff), reporting delivered-correct fraction,
retransmit overhead, and watchdog disables at each operating point.

Checked claims:
* at a moderate flip rate the protected fabric delivers strictly more
  correct results than the bare one with the same retry budget;
* at rate zero the CRC costs at most one flit per packet in cycles;
* ``run_job`` never raises or hangs, even on a fabric that drops every
  packet -- it returns a :class:`JobResult` with per-cause accounting.
"""

from benchmarks.conftest import scaled
from repro.experiments.chaos_fabric import (
    chaos_sweep,
    chaos_table_text,
    run_chaos_point,
)
from repro.grid.linkfault import LinkFaultConfig
from repro.grid.simulator import GridSimulator

N_INSTRUCTIONS = 48


def run_sweep():
    return chaos_sweep(
        # The asserts key on rates 0.0 and 0.003; smoke sweeps just those.
        link_rates=scaled((0.0, 0.001, 0.003, 0.01), (0.0, 0.003)),
        retry_budgets=(1, 3),
        n_instructions=N_INSTRUCTIONS,
        seed=2004,
    )


def test_bench_chaos_fabric_sweep(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(chaos_table_text(points))

    by_key = {
        (p.bit_flip_rate, p.protected, p.max_rounds): p for p in points
    }

    # Protection pays at a moderate fault rate: strictly more correct
    # deliveries than the bare fabric with the same retry budget.
    bare = by_key[(0.003, False, 3)]
    protected = by_key[(0.003, True, 3)]
    assert protected.delivered_correct > bare.delivered_correct

    # The protected fabric never delivers a corrupted payload silently;
    # the bare fabric at nonzero rates does (that is the whole case for
    # the CRC flit).
    assert protected.silent_corruptions == 0
    assert bare.silent_corruptions > 0

    # Rate-0 overhead bound: one CRC flit per packet, two packets per
    # instruction (one in, one out), and nothing else.
    clean_bare = by_key[(0.0, False, 1)]
    clean_protected = by_key[(0.0, True, 1)]
    assert clean_bare.delivered_correct == N_INSTRUCTIONS
    assert clean_protected.delivered_correct == N_INSTRUCTIONS
    assert clean_protected.retransmissions == 0
    overhead = clean_protected.total_cycles - clean_bare.total_cycles
    assert overhead <= 2 * N_INSTRUCTIONS


def test_bench_chaos_total_loss_degrades_gracefully():
    """A fabric that drops every packet still returns, with accounting."""
    sim = GridSimulator(
        rows=3,
        cols=3,
        link_fault_config=LinkFaultConfig(drop_rate=1.0),
        crc_enabled=True,
        seed=7,
    )
    point = run_chaos_point(
        0.0, protected=True, max_rounds=2, drop_rate=1.0, seed=7
    )
    assert point.delivered == 0
    assert point.link_dropped > 0
    assert point.unassigned + point.timed_out >= point.submitted
    # The direct run_job path agrees: no exception, empty results.
    job = sim.run_instructions([(0, 0b000, 1, 2), (1, 0b111, 3, 4)])
    assert job.results == {}
    assert job.delivery.link_dropped > 0
    assert not job.complete
