"""Extension (paper §7): non-streaming workloads on the grid.

Streaming kernels finish in one shift-in/compute/shift-out round; a
dependent computation needs one round per dependency wave, with the CMOS
control processor resolving operands between waves.  This bench runs a
balanced XOR-reduction tree and an FIR-like filter through the grid and
measures the per-wave cost -- the adaptation the paper's future work
asks about.
"""

from benchmarks.conftest import scaled
from repro.grid.simulator import GridSimulator
from repro.workloads.dataflow import (
    GridDataflowExecutor,
    checksum_tree_program,
    fir_filter_program,
)

N_LEAVES = scaled(16, 8)
DATA = [(i * 37 + 11) & 0xFF for i in range(N_LEAVES)]


def run_checksum_tree():
    sim = GridSimulator(rows=3, cols=3, seed=13)
    program = checksum_tree_program(DATA)
    outcome = GridDataflowExecutor(sim).run(program)
    return sim, program, outcome


def test_bench_dataflow_checksum_tree(benchmark):
    sim, program, outcome = benchmark.pedantic(
        run_checksum_tree, rounds=1, iterations=1
    )
    print()
    print(f"  {len(program)} nodes in {program.depth} waves, "
          f"{sim.grid.cycle} total fabric cycles")
    assert outcome.complete
    assert outcome.results == program.reference_results()
    assert outcome.waves_executed == N_LEAVES.bit_length() - 1  # log2


def run_fir():
    sim = GridSimulator(rows=3, cols=3, seed=14)
    program = fir_filter_program(DATA[:scaled(10, 8)])
    outcome = GridDataflowExecutor(sim).run(program)
    return program, outcome


def test_bench_dataflow_fir(benchmark):
    program, outcome = benchmark.pedantic(run_fir, rounds=1, iterations=1)
    print()
    print(f"  FIR: {len(program)} nodes, depth {program.depth}, "
          f"complete={outcome.complete}")
    assert outcome.complete
    assert outcome.accuracy_against(program.reference_results()) == 1.0
