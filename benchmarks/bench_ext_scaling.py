"""Extension (paper §6.2): the system-check bottleneck, measured.

The paper's case against external reconfiguration (Teramac, Phoenix) is
that periodic whole-system surveys stop scaling: checking time grows
with block count while the NanoBox's distributed heartbeat checks every
cell every cycle regardless of grid size.  This bench measures both
checkers' failure-detection latency across grid sizes, plus how the
fixed 64-pixel job's cycle budget scales with grid shape.
"""

import time

from benchmarks.conftest import SMOKE, scaled
from repro.experiments.scaling import (
    detection_latency,
    detection_table_text,
    pipeline_scaling,
    pipeline_table_text,
)
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.engine import GridState
from repro.grid.simulator import GridSimulator

SIZES = ((2, 2), (4, 4), (8, 8))


def run_detection():
    return detection_latency(sizes=SIZES, trials=scaled(60, 20), seed=2004)


def test_bench_detection_latency(benchmark):
    points = benchmark.pedantic(run_detection, rounds=1, iterations=1)
    print()
    print(detection_table_text(points))
    # Watchdog latency is flat; external latency scales with cell count.
    assert all(p.watchdog_latency == 1.0 for p in points)
    assert points[-1].external_latency > points[0].external_latency * 8
    # 8x8: mean external latency ~ 32 cycles of paused computation.
    assert points[-1].external_latency > 16


def run_pipeline():
    return pipeline_scaling(sizes=((2, 2), (2, 4), (4, 4), (4, 8)), seed=0)


def test_bench_pipeline_scaling(benchmark):
    points = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    print()
    print(pipeline_table_text(points))
    by_shape = {(p.rows, p.cols): p for p in points}
    # Doubling the columns roughly halves the shift-in phase (parallel
    # edge buses), the dominant cost.
    assert by_shape[(2, 4)].shift_in < by_shape[(2, 2)].shift_in
    assert by_shape[(4, 8)].shift_in < by_shape[(4, 4)].shift_in


# -- Engine scaling: the event-driven core versus the dense oracle ----
#
# A mostly-quiescent fabric is the paper's deployment reality (per-cell
# fault rates are tiny), and it is exactly where dense per-cell ticking
# stops scaling: cost per cycle grows with cell count whether or not
# anything happens.  The sparse engine does per-tick work proportional
# to *activity*, so an idle 10^6-cell fleet advances in O(1) per tick.
# The common-size point also re-checks bit identity under load: both
# engines must land on the same GridState and the same fault tally.

#: Largest size both engines run at in reasonable time.
ENGINE_COMMON = scaled((64, 64), (16, 16))
ENGINE_TICKS = scaled(300, 60)
ENGINE_PROCESS = TemporalFaultProcess.transient(1e-5, errors_per_cycle=3)

#: Sparse-only fleet points: ~10^5 and 10^6 cells.
FLEET_SIZES = scaled(((316, 316), (1000, 1000)), ((316, 316),))
FLEET_TICKS = 300


def _engine_soak(engine, rows, cols, ticks, process):
    sim = GridSimulator(
        rows=rows,
        cols=cols,
        temporal_fault_process=process,
        heartbeat_decay=0.5,
        error_threshold=3,
        seed=2004,
        grid_engine=engine,
    )
    start = time.perf_counter()
    sim.control.tick(ticks)
    elapsed = time.perf_counter() - start
    return (
        elapsed,
        GridState.from_grid(sim.grid, sim.watchdog),
        sim.stats(),
        sim.grid.alive_count(),
    )


def run_engine_scaling():
    rows, cols = ENGINE_COMMON
    dense = _engine_soak("dense", rows, cols, ENGINE_TICKS, ENGINE_PROCESS)
    sparse = _engine_soak("sparse", rows, cols, ENGINE_TICKS, ENGINE_PROCESS)
    fleet = [
        (r, c, _engine_soak("sparse", r, c, FLEET_TICKS, None))
        for r, c in FLEET_SIZES
    ]
    return dense, sparse, fleet


def test_bench_engine_scaling(benchmark):
    dense, sparse, fleet = benchmark.pedantic(
        run_engine_scaling, rounds=1, iterations=1
    )
    rows, cols = ENGINE_COMMON
    speedup = dense[0] / sparse[0] if sparse[0] else float("inf")
    print()
    print(f"  {'cells':>9}  {'engine':>7}  {'ticks':>6}  {'seconds':>8}")
    print(f"  {rows * cols:>9}  {'dense':>7}  {ENGINE_TICKS:>6}  "
          f"{dense[0]:>8.3f}")
    print(f"  {rows * cols:>9}  {'sparse':>7}  {ENGINE_TICKS:>6}  "
          f"{sparse[0]:>8.3f}  ({speedup:.0f}x)")
    for r, c, (elapsed, _, _, alive) in fleet:
        print(f"  {r * c:>9}  {'sparse':>7}  {FLEET_TICKS:>6}  "
              f"{elapsed:>8.3f}  (alive {alive})")

    # Bit identity under load at the largest common size.
    assert dense[1] == sparse[1], "\n".join(dense[1].diff(sparse[1])[:10])
    assert dense[2] == sparse[2]
    # The event-driven core must beat dense by >= 10x at the largest
    # common size (smoke sizes are too small for the ratio to be
    # meaningful, so the floor is full-run only).
    if not SMOKE:
        assert speedup >= 10, f"sparse speedup only {speedup:.1f}x"
    # Idle fleets advance in activity-proportional time: the 10^5/10^6
    # points must finish far faster than the *busy* common grid, despite
    # having 25-250x the cells.
    for r, c, (elapsed, _, _, alive) in fleet:
        assert alive == r * c
        assert elapsed < max(dense[0], 1.0)
