"""Extension (paper §6.2): the system-check bottleneck, measured.

The paper's case against external reconfiguration (Teramac, Phoenix) is
that periodic whole-system surveys stop scaling: checking time grows
with block count while the NanoBox's distributed heartbeat checks every
cell every cycle regardless of grid size.  This bench measures both
checkers' failure-detection latency across grid sizes, plus how the
fixed 64-pixel job's cycle budget scales with grid shape.
"""

from benchmarks.conftest import scaled
from repro.experiments.scaling import (
    detection_latency,
    detection_table_text,
    pipeline_scaling,
    pipeline_table_text,
)

SIZES = ((2, 2), (4, 4), (8, 8))


def run_detection():
    return detection_latency(sizes=SIZES, trials=scaled(60, 20), seed=2004)


def test_bench_detection_latency(benchmark):
    points = benchmark.pedantic(run_detection, rounds=1, iterations=1)
    print()
    print(detection_table_text(points))
    # Watchdog latency is flat; external latency scales with cell count.
    assert all(p.watchdog_latency == 1.0 for p in points)
    assert points[-1].external_latency > points[0].external_latency * 8
    # 8x8: mean external latency ~ 32 cycles of paused computation.
    assert points[-1].external_latency > 16


def run_pipeline():
    return pipeline_scaling(sizes=((2, 2), (2, 4), (4, 4), (4, 8)), seed=0)


def test_bench_pipeline_scaling(benchmark):
    points = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    print()
    print(pipeline_table_text(points))
    by_shape = {(p.rows, p.cols): p for p in points}
    # Doubling the columns roughly halves the shift-in phase (parallel
    # edge buses), the dominant cost.
    assert by_shape[(2, 4)].shift_in < by_shape[(2, 2)].shift_in
    assert by_shape[(4, 8)].shift_in < by_shape[(4, 4)].shift_in
