"""Table 2: ALU naming conventions and potential fault-injection sites.

Times construction of each of the twelve variants and asserts that every
constructed site count equals the paper's published number exactly.
"""

import pytest

from repro.alu.variants import TABLE2_SITE_COUNTS, build_alu, variant_names
from repro.experiments.tables import table2_text


@pytest.mark.parametrize("name", variant_names())
def test_bench_variant_construction(benchmark, name):
    """Build one Table 2 variant and check its site count."""
    alu = benchmark(build_alu, name)
    assert alu.site_count == TABLE2_SITE_COUNTS[name]


def test_bench_table2_render(benchmark):
    text = benchmark(table2_text)
    print()
    print(text)
    assert "MISMATCH" not in text
