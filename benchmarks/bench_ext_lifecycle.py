"""Extension: self-healing lifecycle versus permanent disable.

The paper's watchdog (Section 2.3) disables a silent cell forever.  That
is the right call for a permanent defect but throws away capacity when
the underlying fault process is transient or intermittent -- the common
case for nanoscale devices.  This bench sweeps the temporal fault
taxonomy (:mod:`repro.faults.temporal`) against the two lifecycle
policies and asserts the headline claims of the extension:

* under an intermittent-burst process at the same injected-fault rate,
  quarantine + canary re-admission achieves *strictly* higher goodput
  (correct results per kilocycle) than permanent disable;
* under a permanent stuck-at process, the self-healing policy is no
  worse -- failed probe rounds retire the cell just as the baseline
  would have;
* the whole sweep is deterministic for a fixed seed: running it twice
  yields identical points, table text included.
"""

from benchmarks.conftest import scaled
from repro.experiments.lifecycle import (
    default_processes,
    lifecycle_sweep,
    lifecycle_table_text,
    permanent_policy,
    self_healing_policy,
)
from repro.faults.temporal import FaultKind

JOBS = scaled(4, 2)
N_INSTRUCTIONS = scaled(64, 48)
SEED = 2004


def run_sweep():
    return lifecycle_sweep(
        jobs=JOBS,
        n_instructions=N_INSTRUCTIONS,
        seed=SEED,
    )


def test_bench_lifecycle_sweep(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(lifecycle_table_text(points))

    by_key = {(p.process, p.policy) for p in points}
    assert len(by_key) == len(points), "sweep points must be unique"
    lookup = {(p.process, p.policy): p for p in points}

    processes = {proc.kind: proc.describe() for proc in default_processes()}

    # Re-admission pays under intermittent bursts: the same fault
    # history, strictly more correct results per kilocycle.
    intermittent = processes[FaultKind.INTERMITTENT]
    healing = lookup[(intermittent, "self-healing")]
    baseline = lookup[(intermittent, "permanent")]
    assert healing.goodput > baseline.goodput
    assert healing.readmissions > 0

    # ...and costs nothing under genuine permanent defects: probes keep
    # failing, the cell retires, goodput matches the baseline.
    permanent = processes[FaultKind.PERMANENT]
    healing_perm = lookup[(permanent, "self-healing")]
    baseline_perm = lookup[(permanent, "permanent")]
    assert healing_perm.goodput >= baseline_perm.goodput

    # Transient glitches should not cost the self-healing fabric any
    # cells at all: the leaky bucket absorbs isolated upsets.
    transient = processes[FaultKind.TRANSIENT]
    healing_tr = lookup[(transient, "self-healing")]
    assert healing_tr.retired == 0


def test_bench_lifecycle_deterministic():
    first = run_sweep()
    second = run_sweep()
    assert first == second
    assert lifecycle_table_text(first) == lifecycle_table_text(second)


def test_bench_lifecycle_legacy_equivalence():
    """decay=0 + probing off must reproduce the paper baseline exactly.

    The permanent PolicyConfig *is* the legacy configuration; spelling
    it out two ways (factory versus hand-rolled defaults) must yield
    identical measurements.
    """
    from repro.experiments.lifecycle import PolicyConfig
    from repro.grid.watchdog import LifecyclePolicy

    explicit = PolicyConfig(
        name="permanent",
        heartbeat_decay=0.0,
        policy=LifecyclePolicy(
            suspect_polls=0,
            probing=False,
        ),
    )
    points_factory = lifecycle_sweep(
        policies=(permanent_policy(),),
        jobs=2,
        n_instructions=48,
        seed=SEED,
    )
    points_explicit = lifecycle_sweep(
        policies=(explicit,),
        jobs=2,
        n_instructions=48,
        seed=SEED,
    )
    assert points_factory == points_explicit
