"""Ablation: spatially-correlated faults and TMR string layout.

The paper injects *uniformly distributed* random transients.  Physical
upsets in dense nanodevice arrays cluster -- a strike takes out a run of
neighbouring cells -- and then the physical layout of a triplicated bit
string suddenly matters:

* **blocked** (copy after copy): a short burst lands inside one copy and
  the majority vote absorbs it -- bursts are actually *easier* than
  uniform faults of the same count;
* **interleaved** (the three copies of each bit adjacent): one burst
  spans multiple copies of the same bit and defeats the vote.

Under uniform injection the two layouts are statistically identical,
confirming this is purely a correlation effect.
"""

from benchmarks.conftest import SMOKE, scaled
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import BurstMask, ExactFractionMask
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads

FRACTION = 0.03
BURST = 4
TRIALS = scaled(5, 1)


def run_matrix():
    workloads = paper_workloads(gradient(8, 8))
    results = {}
    for scheme in ("tmr", "tmr-interleaved"):
        alu = SimplexALU(NanoBoxALU(scheme=scheme), name=f"burst[{scheme}]")
        for label, policy in (
            ("uniform", ExactFractionMask(FRACTION)),
            ("burst", BurstMask(FRACTION, BURST)),
        ):
            campaign = FaultCampaign(alu, policy, seed=5)
            results[(scheme, label)] = campaign.run_workload_suite(
                workloads, TRIALS
            ).percent_correct
    return results


def test_bench_burst_faults_vs_layout(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    print(f"  {'layout':>18}  {'uniform':>8}  {'burst(4)':>8}")
    for scheme in ("tmr", "tmr-interleaved"):
        print(f"  {scheme:>18}  {results[(scheme, 'uniform')]:>8.1f}  "
              f"{results[(scheme, 'burst')]:>8.1f}")

    if SMOKE:
        return
    # Uniform faults cannot tell the layouts apart...
    assert abs(
        results[("tmr", "uniform")] - results[("tmr-interleaved", "uniform")]
    ) < 6.0
    # ...bursts punish the interleaved layout hard...
    assert results[("tmr-interleaved", "burst")] < \
        results[("tmr", "burst")] - 10.0
    # ...and the blocked layout rides bursts at least as well as uniform.
    assert results[("tmr", "burst")] >= results[("tmr", "uniform")] - 3.0
