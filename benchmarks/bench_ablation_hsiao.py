"""Ablation: the information code done right -- Hsiao SEC-DED LUTs.

The paper shortlists Hamming, Hsiao, and Reed-Solomon as candidate
lookup-table codes but only evaluates Hamming, whose decoder fired false
positives on non-addressed-bit errors.  A Hsiao SEC-DED decoder never
corrects on an even syndrome, so double errors are passed through rather
than "fixed" into the output.  This bench quantifies what the paper's
information-code row would have looked like with that decoder, against
the uncoded and triplicated tables at matched fault fractions.
"""

from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.experiments.ablations import sweep_unit
from benchmarks.conftest import SMOKE, print_series, scaled

PERCENTS = (0, 0.5, 1, 2, 3, 5, 9)


def run_comparison():
    series = {}
    for scheme in ("none", "hamming", "hsiao", "tmr"):
        alu = SimplexALU(NanoBoxALU(scheme=scheme), name=f"hsiao-ablate[{scheme}]")
        series[scheme] = sweep_unit(alu, PERCENTS,
                                    trials_per_workload=scaled(4, 1), seed=21)
    return series


def test_bench_hsiao_information_code(benchmark):
    series = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_series("Information codes: Hsiao SEC-DED vs paper Hamming",
                 PERCENTS, series)
    if not SMOKE:
        knee = PERCENTS.index(2)
        # Hsiao must beat both the paper's Hamming decoder and no code...
        assert series["hsiao"][knee] > series["hamming"][knee]
        assert series["hsiao"][knee] >= series["none"][knee]
        # ...while triplicated strings stay the overall winner.
        assert series["tmr"][knee] >= series["hsiao"][knee]
    # Site cost context: hsiao = 16 x 44 = 704 sites, between alunh's
    # 672 and aluns' 1536.
    assert SimplexALU(NanoBoxALU(scheme="hsiao")).site_count == 704
