"""Extension (paper Sections 2.3 / 7): system-level failover and recovery.

The paper describes heartbeat monitoring, watchdog cell disable, memory
salvage, and control-processor rerouting but leaves their evaluation to
future work.  This benchmark runs a full image job on a grid that loses
cells mid-flight and measures the recovery machinery end to end.
"""

import pytest

from benchmarks.conftest import scaled
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import hue_shift

#: 64 pixels normally, 48 under smoke -- still enough that both kills
#: (cycles 30 and 90) land while the job is in flight.
SIZE = scaled((8, 8), (8, 6))


def run_failover_job():
    sim = GridSimulator(
        rows=3,
        cols=3,
        seed=31,
        kill_schedule={30: [(1, 1)], 90: [(0, 2)]},
    )
    return sim.run_image_job(gradient(*SIZE), hue_shift(), max_rounds=4)


def test_bench_failover_recovery(benchmark):
    outcome = benchmark.pedantic(run_failover_job, rounds=1, iterations=1)
    stats = outcome.stats
    print()
    print(f"  failed cells : {stats.failed_cells}")
    print(f"  salvaged     : {stats.salvaged_words} words "
          f"(lost {stats.lost_words})")
    print(f"  rounds       : {outcome.job.rounds}, cycles {stats.cycles}")
    print(f"  pixel accuracy after recovery: {outcome.pixel_accuracy:.3f}")
    assert len(stats.failed_cells) == 2
    assert outcome.pixel_accuracy == 1.0


def run_unsalvageable_job():
    sim = GridSimulator(
        rows=3,
        cols=3,
        seed=32,
        kill_schedule={40: [(1, 1)]},
        memory_salvageable=False,
    )
    return sim.run_image_job(gradient(*SIZE), hue_shift(), max_rounds=4)


def test_bench_failover_without_salvage(benchmark):
    """When the dead cell's memory is gone too, only the control
    processor's retry protocol recovers -- at a cycle cost."""
    outcome = benchmark.pedantic(run_unsalvageable_job, rounds=1, iterations=1)
    print()
    print(f"  rounds={outcome.job.rounds} cycles={outcome.stats.cycles} "
          f"accuracy={outcome.pixel_accuracy:.3f}")
    assert outcome.pixel_accuracy == 1.0
    assert outcome.job.rounds >= 2  # retry was actually needed
