"""Analysis bench: where the recursion leaks.

Instruments the paper's headline configuration (``aluss``) at its 3 %
operating knee with the error ledger and reports which segments' faults
show up disproportionately in the unmasked computations.  The expected
story: faults in any single ALU copy are voted away, so unmasked runs
are enriched in voter hits and multi-copy coincidences.
"""

from benchmarks.conftest import SMOKE, scaled
from repro.experiments.attribution import attribution_study, attribution_table_text


def run_study():
    return attribution_study(
        "aluss", fault_fraction=0.03, observations=scaled(800, 200), seed=2004
    )


def test_bench_fault_attribution(benchmark):
    report = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print()
    print(attribution_table_text(report))
    coverage = report.coverage_by_count
    low = min(coverage)
    high = max(coverage)
    print(f"  coverage at {low} faults/computation: "
          f"{100 * coverage[low]:.1f}%; at {high}: "
          f"{100 * coverage[high]:.1f}%")

    assert report.coverage >= 0.9
    shares = {name: (a, b) for name, a, b in report.segment_shares()}
    # The voter is the module level's single point of failure: its share
    # among unmasked runs should not be *under*-represented.
    share_all, share_bad = shares["voter"]
    if not SMOKE:  # segment shares need the full sample size
        assert share_bad >= share_all * 0.7
