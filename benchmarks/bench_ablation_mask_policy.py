"""Ablation: exact-fraction versus Bernoulli fault injection.

The paper forces an exact fraction of sites to flip per computation; the
closed-form models assume independent per-site flips.  The two must agree
closely, confirming the injection semantics carries no hidden effect --
and licensing the analytical cross-checks in ``repro.analysis``.
"""

from benchmarks.conftest import SMOKE, print_series, scaled
from repro.experiments.ablations import ABLATION_PERCENTS, mask_policy_ablation


def run_ablation():
    return mask_policy_ablation(trials_per_workload=scaled(4, 1))


def test_bench_mask_policy(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_series("Mask policy (TMR ALU)", ABLATION_PERCENTS, series)
    tolerance = 25.0 if SMOKE else 10.0
    for i, pct in enumerate(ABLATION_PERCENTS):
        delta = abs(series["exact"][i] - series["bernoulli"][i])
        assert delta < tolerance, f"policies diverge at {pct}%: {delta}"
