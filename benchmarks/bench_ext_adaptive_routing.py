"""Extension (paper §§6.2/7): rerouting around faulty cells.

Teramac and Phoenix -- the external-reconfiguration systems the paper
compares against -- reroute connections around faulty blocks; the paper
defers the NanoBox equivalent ("how the control microprocessor should
reroute data assigned to a failed processor cell") to future work.  This
bench kills a *top-row* cell, which under the deterministic five-case
rule strands its entire column, and measures how much capacity the
fault-adaptive routing policy recovers.
"""

from benchmarks.conftest import scaled
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video

KILL = {10: [(3, 1)]}  # top-row cell of a 4x4 grid dies almost immediately

#: Image size: 64 pixels normally, 32 under smoke (kill still lands
#: mid-job -- shift-in alone takes 32 * 8 / 4 = 64 cycles).
SIZE = scaled((8, 8), (8, 4))


def run(adaptive: bool):
    sim = GridSimulator(
        rows=4, cols=4, seed=17, kill_schedule=dict(KILL),
        adaptive_routing=adaptive,
    )
    outcome = sim.run_image_job(gradient(*SIZE), reverse_video(), max_rounds=3)
    reachable = sum(
        sim.grid.reachable(r, c) for r in range(4) for c in range(4)
    )
    return outcome, reachable


def test_bench_adaptive_routing(benchmark):
    (adaptive_outcome, adaptive_reach) = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )
    deterministic_outcome, deterministic_reach = run(False)

    print()
    print(f"  reachable cells after top-row kill: deterministic "
          f"{deterministic_reach}/16, adaptive {adaptive_reach}/16")
    print(f"  pixel accuracy: deterministic "
          f"{deterministic_outcome.pixel_accuracy:.3f} "
          f"({deterministic_outcome.stats.cycles} cycles), adaptive "
          f"{adaptive_outcome.pixel_accuracy:.3f} "
          f"({adaptive_outcome.stats.cycles} cycles)")

    # Both recover full accuracy (the retry protocol reassigns work),
    # but only the adaptive fabric keeps the dead cell's column usable.
    assert adaptive_outcome.pixel_accuracy == 1.0
    assert deterministic_outcome.pixel_accuracy == 1.0
    assert adaptive_reach == 15          # all survivors reachable
    assert deterministic_reach == 12     # the dead cell's column stranded
