"""Table 1: the processor-cell ALU instruction set.

Times single-instruction execution on the NanoBox lookup-table ALU per
opcode and asserts the ISA semantics the table defines.
"""

import pytest

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.reference import reference_compute
from repro.experiments.tables import table1_text


@pytest.fixture(scope="module")
def alu():
    return NanoBoxALU(scheme="tmr")


@pytest.mark.parametrize("opcode", list(Opcode), ids=lambda o: o.name)
def test_bench_instruction(benchmark, alu, opcode):
    """One fault-free instruction through the TMR-coded LUT datapath."""
    result = benchmark(alu.compute, int(opcode), 0xC8, 0x64)
    want = reference_compute(int(opcode), 0xC8, 0x64)
    assert (result.value, result.carry) == (want.value, want.carry)


def test_bench_table1_render(benchmark):
    """Regenerate the table itself."""
    text = benchmark(table1_text)
    print()
    print(text)
    for row in ("000  AND", "001  OR", "010  XOR", "111  ADD"):
        assert row.split()[1] in text
