"""Ablation: Hamming protection block size.

16-bit blocks (5 check bits each) are what land ``alunh`` on Table 2's
672 sites.  Smaller blocks expose fewer non-addressed bits per syndrome
-- fewer false positives under the paper's output-corrector architecture
-- at a higher check-bit cost per stored bit.
"""

from benchmarks.conftest import SMOKE, print_series, scaled
from repro.experiments.ablations import ABLATION_PERCENTS, hamming_block_size_ablation


def run_ablation():
    return hamming_block_size_ablation(trials_per_workload=scaled(3, 1))


def test_bench_hamming_block_size(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_series("Hamming block size (paper uses 16)", ABLATION_PERCENTS,
                 series)
    if not SMOKE:
        knee = list(ABLATION_PERCENTS).index(1)
        assert series["block8"][knee] >= series["block16"][knee] - 3.0
        assert series["block16"][knee] >= series["block32"][knee] - 3.0
    for name, values in series.items():
        assert values[0] == 100.0, name
