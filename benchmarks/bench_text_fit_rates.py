"""Section 4/5 FIT-rate translations and headline reliability claims.

Regenerates the percent -> FIT translation for ``aluss`` (the paper's
worked example: 1 % -> ~50 faults/cycle -> 3.6e23 FIT) and re-measures the
abstract's claims: 100 % correct computation at raw FIT rates up to ~1e23
and ~98 % at rates in excess of 1e24.
"""

import pytest

from benchmarks.conftest import scaled
from repro.experiments.fit_table import fit_rows, fit_table_text, headline_claims


def test_bench_fit_translation(benchmark):
    rows = benchmark(fit_rows, "aluss")
    print()
    print(fit_table_text("aluss"))
    table = {pct: (faults, fit) for pct, faults, fit in rows}
    assert table[1][0] == pytest.approx(50.4)
    assert table[1][1] == pytest.approx(3.6e23, rel=0.01)
    assert table[3][1] > 1e24


def test_bench_headline_claims(benchmark):
    claims = benchmark.pedantic(
        headline_claims, kwargs=dict(trials_per_workload=scaled(5, 2), seed=2004),
        rounds=1, iterations=1,
    )
    print()
    for claim in claims:
        status = "OK" if claim.holds else "FAIL"
        print(f"  [{status}] {claim.claim}: paper={claim.paper_value} "
              f"measured={claim.measured_value}")
    assert all(c.holds for c in claims)
