"""Analysis bench: watchdog harvesting horizons.

Composes the per-computation models into the system-level question the
grid's heartbeat machinery creates: at a given fault rate, how many
instructions does a cell compute before the watchdog disables it, and
how much of a grid survives a 64-instruction job?
"""

from benchmarks.conftest import scaled
from repro.analysis.system import (
    disagreement_probability,
    expected_instructions_to_disable,
    expected_surviving_cells,
    grid_degradation_horizon,
)
from repro.experiments.report import format_table


RATES = scaled((0.005, 0.01, 0.03), (0.01, 0.03))


def run_analysis():
    rows = []
    for scheme in ("none", "tmr"):
        for p in RATES:
            d = disagreement_probability(scheme, p)
            rows.append(
                (
                    scheme,
                    p,
                    d,
                    expected_instructions_to_disable(8, d),
                    expected_surviving_cells(64, 64, 8, d),
                    grid_degradation_horizon(scheme, p),
                )
            )
    return rows


def test_bench_watchdog_horizons(benchmark):
    rows = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    print()
    rendered = [
        (scheme, f"{p:g}", f"{d:.4f}", f"{mean:.0f}", f"{alive:.1f}/64",
         horizon)
        for scheme, p, d, mean, alive, horizon in rows
    ]
    print("Watchdog horizons (threshold 8, 64 instructions/cell)")
    print(format_table(
        ("scheme", "fault %/100", "P(detect)", "mean instr to disable",
         "cells alive after job", "90% survival horizon"),
        rendered,
    ))
    by = {(scheme, p): row for scheme, p, *row in
          [(r[0], r[1], r) for r in rows]}
    # TMR cells outlive uncoded cells at every rate.
    for p in RATES:
        none_row = next(r for r in rows if r[0] == "none" and r[1] == p)
        tmr_row = next(r for r in rows if r[0] == "tmr" and r[1] == p)
        assert tmr_row[3] > none_row[3]      # mean instructions to disable
        assert tmr_row[4] >= none_row[4]     # surviving cells
