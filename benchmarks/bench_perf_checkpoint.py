"""Cost of crash-safety: checkpoint store and resilient runner overhead.

Three measurements with correctness assertions riding along:

* raw :class:`~repro.perf.checkpoint.CheckpointStore` save+load
  round-trip throughput (the fsync-bound floor of the durability layer);
* a cold resilient figure sweep (computes and checkpoints every chunk)
  versus the identical plain sweep -- checkpointing must not perturb the
  results;
* a warm resume of the same sweep (every chunk served from disk), which
  must also be value-identical to the plain sweep.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) to shrink the sweep
while keeping every identity assertion.
"""

import os

from repro.experiments.figures import run_figure, run_figure_resilient
from repro.perf import ResilientRuntime
from repro.perf.checkpoint import CheckpointStore

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Figure-sweep shape for the resilient-runtime measurements.
PERCENTS = (0, 1, 9) if SMOKE else (0, 0.5, 1, 3, 9, 30, 75)
TRIALS = 1 if SMOKE else 2
CHUNKS_PAYLOADS = 16 if SMOKE else 128


def _plain_sweep():
    return run_figure(
        "figure7", fault_percents=PERCENTS, trials_per_workload=TRIALS,
        seed=2004,
    )


def _resilient_sweep(tmp_path, resume):
    return run_figure_resilient(
        "figure7",
        ResilientRuntime(checkpoint_dir=tmp_path / "ck", resume=resume),
        fault_percents=PERCENTS,
        trials_per_workload=TRIALS,
        seed=2004,
    )


def test_bench_checkpoint_save_load_roundtrip(benchmark, tmp_path):
    payloads = [
        [{"total": i, "correct": i, "injected_faults": i * 3}] * 4
        for i in range(CHUNKS_PAYLOADS)
    ]

    def save_and_load():
        store = CheckpointStore(tmp_path / "roundtrip", "bench0001")
        for index, payload in enumerate(payloads):
            store.save(index, payload)
        loaded = [store.load(index)[0] for index in range(len(payloads))]
        return store, loaded

    store, loaded = benchmark.pedantic(
        save_and_load, rounds=1 if SMOKE else 3, iterations=1
    )
    assert loaded == payloads
    assert store.stats.hits == CHUNKS_PAYLOADS
    assert store.stats.corruptions == 0


def test_bench_resilient_sweep_cold(benchmark, tmp_path):
    plain = _plain_sweep()
    run = benchmark.pedantic(
        lambda: _resilient_sweep(tmp_path, resume=False),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    # Checkpointing must never perturb the numbers.
    assert run.figure is not None
    assert run.figure.to_text() == plain.to_text()
    assert run.outcome.computed_chunks == run.outcome.chunks


def test_bench_resilient_sweep_resume(benchmark, tmp_path):
    plain = _plain_sweep()
    _resilient_sweep(tmp_path, resume=False)  # populate the store
    run = benchmark.pedantic(
        lambda: _resilient_sweep(tmp_path, resume=True),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    assert run.figure is not None
    assert run.figure.to_text() == plain.to_text()
    assert run.outcome.reused_chunks == run.outcome.chunks
    assert run.outcome.computed_chunks == 0
