"""Ablation: how much of ``alunh``'s loss is the decoder architecture?

The paper attributes the information-coded ALU's poor showing to "false
positives caused by errors in bits which are not addressed by the lookup
table inputs".  Sweeping three decoder semantics separates the code from
the architecture:

* ``hamming``      -- paper-calibrated output corrector (false positives
  on check-bit syndromes);
* ``hamming-sec``  -- textbook positional SEC (no false positives);
* ``hamming-fp``   -- flip-output-on-any-syndrome (fully pessimistic).
"""

from benchmarks.conftest import SMOKE, print_series, scaled
from repro.experiments.ablations import ABLATION_PERCENTS, hamming_semantics_ablation


def run_ablation():
    return hamming_semantics_ablation(trials_per_workload=scaled(3, 1))


def test_bench_hamming_semantics(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_series("Hamming decoder semantics", ABLATION_PERCENTS, series)
    if SMOKE:
        return
    knee = list(ABLATION_PERCENTS).index(2)
    # The architecture, not the code, loses: a textbook decoder would
    # have beaten the uncoded table at the knee...
    assert series["hamming-sec"][knee] >= series["none"][knee]
    # ...while the paper's output corrector loses to it...
    assert series["hamming"][knee] < series["none"][knee]
    # ...and the pessimistic variant is no better than the paper's.
    assert series["hamming-fp"][knee] <= series["hamming"][knee] + 3.0
