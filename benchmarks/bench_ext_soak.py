"""Extension: endurance -- back-to-back jobs on an aging fabric.

Single-job accuracy hides a deployment reality: memory upsets accumulate
across jobs, heartbeat error tallies only ever grow, and the watchdog's
harvest is monotone.  This bench runs a sequence of image jobs on one
grid under continuous memory upsets and transient ALU faults, with and
without periodic scrubbing, tracking accuracy and surviving cells over
the sequence.
"""

from benchmarks.conftest import SMOKE, scaled
from repro.experiments.fleet import run_fleet_soak
from repro.faults.mask import ExactFractionMask
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import hue_shift, reverse_video

JOBS = scaled(6, 3)
UPSET_RATE = 5e-5


def run_sequence(scrub_interval: int):
    sim = GridSimulator(
        rows=3,
        cols=3,
        alu_scheme="tmr",
        alu_fault_policy=ExactFractionMask(0.005),
        memory_upset_rate=UPSET_RATE,
        scrub_interval=scrub_interval,
        error_threshold=24,
        seed=2004,
    )
    accuracies = []
    workloads = [reverse_video(), hue_shift()]
    for job in range(JOBS):
        outcome = sim.run_image_job(
            gradient(8, 8), workloads[job % 2], max_rounds=3
        )
        accuracies.append(outcome.pixel_accuracy)
    return accuracies, len(sim.grid.alive_cells()), sim.scrub_corrections


def test_bench_soak_sequence(benchmark):
    scrubbed = benchmark.pedantic(run_sequence, args=(8,), rounds=1,
                                  iterations=1)
    plain = run_sequence(0)
    print()
    print(f"  {'job':>4}  {'no scrub':>9}  {'scrub/8':>9}")
    for i in range(JOBS):
        print(f"  {i:>4}  {plain[0][i]:>9.3f}  {scrubbed[0][i]:>9.3f}")
    print(f"  alive after {JOBS} jobs: no-scrub {plain[1]}/9, "
          f"scrubbed {scrubbed[1]}/9; "
          f"{scrubbed[2]} bits repaired by scrubbing")

    # Endurance: mean accuracy with scrubbing must not trail without.
    mean_plain = sum(plain[0]) / JOBS
    mean_scrubbed = sum(scrubbed[0]) / JOBS
    assert mean_scrubbed >= mean_plain - 0.02
    assert scrubbed[2] > 0  # scrubbing actually repaired something
    # Every job in both runs stays above a floor -- no collapse over the
    # sequence (the residual loss comes from the *unprotected* operand
    # and instruction-ID fields, which no amount of scrubbing repairs --
    # the cost of the paper's choice to triplicate only critical fields).
    assert min(plain[0]) >= 0.75
    assert min(scrubbed[0]) >= 0.75


# -- Fleet soak: rolling quarantine/re-admission wave at 10^5-10^6 ----
#
# The event-driven engine's worst realistic case is not an idle fleet
# but one under continuous lifecycle churn: a rolling wave sweeps the
# columns, overwhelming one column's heartbeats every WAVE_PERIOD
# cycles; the watchdog quarantines them and canary probe rounds
# re-admit them.  The fleet is sharded into column-band regions fanned
# out over a process pool (the executor's chunk-merge convention), and
# the fold is deterministic for any worker count.

#: 10^6 cells full; ~10^5 cells under REPRO_BENCH_SMOKE=1.
FLEET_SHAPE = scaled((1000, 1000), (316, 316))
FLEET_REGIONS = scaled(8, 4)
FLEET_JOBS = scaled(4, 2)
FLEET_TICKS = scaled(200, 100)
WAVE_PERIOD = 25
FLEET_PROCESS = TemporalFaultProcess.transient(1e-6, errors_per_cycle=3)


def run_fleet_wave():
    rows, cols = FLEET_SHAPE
    return run_fleet_soak(
        rows,
        cols,
        ticks=FLEET_TICKS,
        regions=FLEET_REGIONS,
        jobs=FLEET_JOBS,
        seed=2004,
        process=FLEET_PROCESS,
        wave_period=WAVE_PERIOD,
        error_threshold=3,
        probe_interval=50,
    )


def test_bench_fleet_wave_soak(benchmark):
    report = benchmark.pedantic(run_fleet_wave, rounds=1, iterations=1)
    rows, cols = FLEET_SHAPE
    print()
    print(f"  fleet {rows}x{cols} ({report.cells} cells), "
          f"{report.regions} regions, {report.cycles} cycles")
    print(f"  quarantines {report.quarantines}, "
          f"readmissions {report.readmissions}, "
          f"retired {report.retired}, "
          f"fault events {report.fault_events}")
    print(f"  availability {report.availability:.4f}")

    # The whole fleet soaked: every region ran every cycle.
    assert report.cells == rows * cols
    assert report.cycles == FLEET_TICKS
    # The wave actually churned the lifecycle: every sweep quarantined
    # a full column per region, and probing won those cells back.
    waves = FLEET_TICKS // WAVE_PERIOD
    assert report.quarantines >= waves * rows
    assert report.readmissions > 0
    # Churn is bounded: the fleet stays overwhelmingly available.
    assert report.availability > 0.9
    if not SMOKE:
        assert report.cells == 10**6