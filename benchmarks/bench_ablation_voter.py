"""Ablation: module-voter construction.

The paper votes through lookup tables coded like the ALU's own (and
injects faults on the voter's bit string, Section 4).  This sweep holds
the cores fixed (TMR-string NanoBox ALUs, space redundancy) and swaps the
voter: TMR-coded LUTs, uncoded LUTs, Hamming LUTs, and the CMOS gate
voter.
"""

from benchmarks.conftest import SMOKE, print_series, scaled
from repro.experiments.ablations import ABLATION_PERCENTS, voter_coding_ablation


def run_ablation():
    return voter_coding_ablation(trials_per_workload=scaled(3, 1))


def test_bench_voter_coding(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_series("Module-voter construction (TMR cores)", ABLATION_PERCENTS,
                 series)
    if not SMOKE:
        knee = list(ABLATION_PERCENTS).index(3)
        # A protected voter must not trail the unprotected one by much,
        # and at the knee the TMR voter should be at least competitive.
        assert series["voter:tmr"][knee] >= series["voter:none"][knee] - 4.0
        assert (series["voter:tmr"][knee]
                >= series["voter:hamming"][knee] - 4.0)
    # Sanity: every configuration is perfect at zero faults.
    for name, values in series.items():
        assert values[0] == 100.0, name
