"""Abstract / Section 5 claim: ~9x area overhead for the headline config.

"By triplicating at the bit-level and triplicating again at the
module-level, we incur area overhead on the order of 9x."
"""

import pytest

from repro.experiments.area import area_rows, area_table_text, headline_overhead


def test_bench_area_overhead(benchmark):
    rows = benchmark(area_rows)
    print()
    print(area_table_text())
    ratios = {name: ratio for name, _, ratio, _ in rows}
    assert ratios["alunn"] == 1.0
    assert 9.0 <= headline_overhead() < 10.0
    # Triplication levels multiply: bit-level TMR alone is 3x, adding
    # module-level space redundancy lands near 3 x 3 (plus the voter).
    assert ratios["aluns"] == pytest.approx(3.0)
    assert ratios["aluss"] == pytest.approx(ratios["aluns"] * 3, rel=0.1)
