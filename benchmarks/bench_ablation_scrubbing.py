"""Ablation: memory scrubbing against persistent single-event upsets.

Section 2.2 triplicates the critical memory-word fields so a single
upset per field is voted away -- but upsets *accumulate* in storage over
a job's lifetime, and two hits on the same field defeat the vote.
Periodic scrubbing (rewriting each word in canonical form) resets the
clock: upsets must now coincide within one scrub interval.  This bench
sweeps the upset rate with scrubbing off and on.
"""

from benchmarks.conftest import scaled
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video

UPSET_RATES = scaled((1e-4, 3e-4, 1e-3), (3e-4, 1e-3))


def run_sweep():
    rows = []
    for rate in UPSET_RATES:
        accuracies = {}
        for label, interval in (("no scrub", 0), ("scrub/8", 8)):
            sim = GridSimulator(
                rows=2, cols=2, seed=2004,
                memory_upset_rate=rate, scrub_interval=interval,
            )
            outcome = sim.run_image_job(gradient(8, 8), reverse_video())
            accuracies[label] = outcome.pixel_accuracy
        rows.append((rate, accuracies["no scrub"], accuracies["scrub/8"]))
    return rows


def test_bench_memory_scrubbing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(f"  {'upset rate':>12}  {'no scrub':>9}  {'scrub/8':>9}")
    for rate, plain, scrubbed in rows:
        print(f"  {rate:>12g}  {plain:>9.3f}  {scrubbed:>9.3f}")
    # Scrubbing must never hurt, and the cumulative benefit must show at
    # at least one swept rate.
    assert all(scrubbed >= plain - 0.02 for _, plain, scrubbed in rows)
    assert any(scrubbed > plain for _, plain, scrubbed in rows) or all(
        plain >= 0.99 for _, plain, _ in rows
    )
