"""Figure 7: percent correct vs injected fault rate, no module-level FT.

Regenerates the four-series sweep (aluncmos / alunh / alunn / aluns) and
asserts the paper's Section 5 claims about it:

* ``aluns`` stays >= 98 % correct out to 2 % injected faults and above
  60 % out to 9 %;
* ``alunn`` beats ``alunh`` at every nonzero percentage;
* ``aluncmos`` is the worst performer (paper: 39 % at 1 %, 9 % at 3 %,
  ~0 beyond).
"""

from benchmarks.conftest import BENCH_PERCENTS, BENCH_TRIALS, print_series
from repro.experiments.figures import figure7


def run_figure7():
    return figure7(fault_percents=BENCH_PERCENTS,
                   trials_per_workload=BENCH_TRIALS, seed=2004)


def test_bench_figure7(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    series = result.series()
    print_series(result.title, BENCH_PERCENTS, series)

    idx = {p: i for i, p in enumerate(BENCH_PERCENTS)}
    # Headline TMR behaviour.
    assert series["aluns"][idx[2]] >= 95.0
    assert series["aluns"][idx[9]] >= 60.0
    # alunn > alunh wherever the curves are resolvable (at the saturated
    # tail both sit at ~0 % and sampling noise dominates).
    for p in BENCH_PERCENTS[1:]:
        if series["alunn"][idx[p]] >= 5.0:
            assert series["alunn"][idx[p]] > series["alunh"][idx[p]], p
    # CMOS collapses fastest.
    assert series["aluncmos"][idx[1]] < 55.0
    assert series["aluncmos"][idx[3]] < 20.0
    assert series["aluncmos"][idx[9]] < 5.0
    # Everything is perfect with zero injected faults.
    for name in series:
        assert series[name][idx[0]] == 100.0
