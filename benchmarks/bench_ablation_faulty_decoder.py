"""Ablation: what was the perfect-decoder idealisation worth?

Paper Section 4 injects faults only on lookup-table bit strings -- "we
do not model faults in the lookup table error detector or corrector".
This study builds the detector/corrector as a real gate netlist
(``hamming-gate`` scheme, ~doubling each LUT's fault surface) and holds
the *injected fraction* constant, so the decoder logic takes its
proportional share of the hits.
"""

from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.experiments.ablations import sweep_unit
from benchmarks.conftest import SMOKE, print_series, scaled

PERCENTS = (0, 0.5, 1, 2, 3, 5)


def run_comparison():
    series = {}
    for scheme, label in (("hamming", "ideal decoder"),
                          ("hamming-gate", "fault-prone decoder")):
        alu = SimplexALU(NanoBoxALU(scheme=scheme), name=f"decoder[{label}]")
        series[label] = sweep_unit(alu, PERCENTS, trials_per_workload=scaled(4, 1),
                                   seed=23)
    return series


def test_bench_faulty_decoder(benchmark):
    series = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_series("Hamming LUT: ideal vs fault-prone decoder logic",
                 PERCENTS, series)
    gate_alu = SimplexALU(NanoBoxALU(scheme="hamming-gate"))
    ideal_alu = SimplexALU(NanoBoxALU(scheme="hamming"))
    print(f"\n  fault surface: ideal {ideal_alu.site_count} sites, "
          f"gate-level {gate_alu.site_count} sites")

    # Fault-free both are perfect; under fire the fault-prone decoder
    # must do no better than the ideal one (same storage + extra targets,
    # though per-site exposure differs because the fraction is fixed).
    assert series["ideal decoder"][0] == 100.0
    assert series["fault-prone decoder"][0] == 100.0
    if not SMOKE:
        knee = PERCENTS.index(2)
        assert series["fault-prone decoder"][knee] <= \
            series["ideal decoder"][knee] + 10.0
