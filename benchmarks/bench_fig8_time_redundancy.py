"""Figure 8: percent correct vs injected fault rate, time redundancy.

Same sweep as Figure 7 but with module-level time redundancy (one ALU
computing each instruction three times into fault-prone holding
registers, then voting).  Section 5's finding: the curves look nearly
identical to Figure 7 per bit-level technique -- at these densities
module-level redundancy adds almost nothing on top of bit-level TMR.
"""

from benchmarks.conftest import BENCH_PERCENTS, BENCH_TRIALS, print_series
from repro.experiments.figures import figure7, figure8


def run_figure8():
    return figure8(fault_percents=BENCH_PERCENTS,
                   trials_per_workload=BENCH_TRIALS, seed=2004)


def test_bench_figure8(benchmark):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    series = result.series()
    print_series(result.title, BENCH_PERCENTS, series)

    idx = {p: i for i, p in enumerate(BENCH_PERCENTS)}
    assert series["aluts"][idx[2]] >= 94.0
    # Strict alutn > aluth ordering where the curves are resolvable; at
    # the saturated tail (both ~0 %) sampling noise dominates.
    for p in BENCH_PERCENTS[1:]:
        if series["alutn"][idx[p]] >= 5.0:
            assert series["alutn"][idx[p]] > series["aluth"][idx[p]], p
    assert series["alutcmos"][idx[3]] < 20.0

    # Cross-figure similarity: time redundancy ~ no module redundancy for
    # the triplicated-string bit level at the knee.
    fig7 = figure7(fault_percents=(2, 3), trials_per_workload=BENCH_TRIALS,
                   seed=2004)
    for p in (2, 3):
        delta = abs(
            result.point("aluts", p).percent_correct
            - fig7.point("aluns", p).percent_correct
        )
        assert delta < 8.0, f"aluts vs aluns at {p}%: {delta}"
