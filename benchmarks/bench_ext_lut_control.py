"""Extension (paper Section 7): fault injection on LUT-built control logic.

"Our foremost future work is to convert the entire processor cell,
including the router and alu-control modules, into lookup tables [to]
analyze the effect of high fault rates on control logic."  This benchmark
pushes fault masks through the LUT-implemented flag voters and measures
how often the control path misclassifies memory words, for uncoded versus
triplicated control tables.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.cell.lutctrl import LUTFieldVoter
from repro.cell.memword import MemoryWord
from repro.faults.mask import ExactFractionMask

_WORD = MemoryWord(
    instruction_id=42, opcode=0b111, operand1=10, operand2=20,
    data_valid=True, to_be_computed=True,
).pack()


TRIALS = scaled(4000, 800)


def misclassification_rate(scheme: str, fault_fraction: float,
                           trials: int = TRIALS) -> float:
    voter = LUTFieldVoter(scheme)
    policy = ExactFractionMask(fault_fraction)
    rng = np.random.default_rng(7)
    wrong = 0
    for _ in range(trials):
        mask = policy.generate(voter.site_count, rng)
        if voter.classify_word(_WORD, fault_mask=mask) != (True, True):
            wrong += 1
    return wrong / trials


def test_bench_lut_control_uncoded(benchmark):
    rate = benchmark.pedantic(
        misclassification_rate, args=("none", 0.05), rounds=1, iterations=1
    )
    print(f"\n  uncoded control-flag voter @5% faults: "
          f"{100 * rate:.1f}% words misclassified")
    assert rate > 0.0


def test_bench_lut_control_tmr(benchmark):
    rate_tmr = benchmark.pedantic(
        misclassification_rate, args=("tmr", 0.05), rounds=1, iterations=1
    )
    rate_none = misclassification_rate("none", 0.05)
    print(f"\n  TMR control-flag voter @5% faults: "
          f"{100 * rate_tmr:.2f}% vs uncoded {100 * rate_none:.2f}%")
    # Triplicated control tables must misclassify strictly less often.
    assert rate_tmr < rate_none
