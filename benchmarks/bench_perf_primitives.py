"""Performance baselines for the simulation primitives.

Not a paper experiment: these benchmarks track the cost of the hot
operations every sweep is built from, so performance regressions in the
substrate show up directly in CI history.
"""

import numpy as np
import pytest

from repro.alu.cmos import CMOSALU
from repro.alu.nanobox import NanoBoxALU
from repro.alu.variants import build_alu
from repro.faults.mask import ExactFractionMask
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_lut_read_tmr(benchmark):
    lut = CodedLUT(TruthTable.from_function(5, lambda *b: sum(b) % 2), "tmr")
    result = benchmark(lut.read, 13, 1 << 45)
    assert result in (0, 1)


def test_bench_lut_read_hamming(benchmark):
    lut = CodedLUT(
        TruthTable.from_function(5, lambda *b: sum(b) % 2), "hamming"
    )
    result = benchmark(lut.read, 13, 1 << 20)
    assert result in (0, 1)


def test_bench_mask_generation_aluss(benchmark, rng):
    policy = ExactFractionMask(0.03)
    mask = benchmark(policy.generate, 5040, rng)
    assert mask >= 0


def test_bench_nanobox_compute(benchmark):
    alu = NanoBoxALU(scheme="tmr")
    result = benchmark(alu.compute, 0b111, 0xC8, 0x64)
    assert result.value == (0xC8 + 0x64) & 0xFF


def test_bench_cmos_compute(benchmark):
    alu = CMOSALU()
    result = benchmark(alu.compute, 0b111, 0xC8, 0x64)
    assert result.value == (0xC8 + 0x64) & 0xFF


def test_bench_aluss_full_computation(benchmark, rng):
    """One instruction on the paper's headline config with a 3% mask --
    the inner loop of every Figure 9 data point."""
    alu = build_alu("aluss")
    policy = ExactFractionMask(0.03)

    def one_instruction():
        mask = policy.generate(alu.site_count, rng)
        return alu.compute(0b010, 0xAA, 0x55, fault_mask=mask)

    result = benchmark(one_instruction)
    assert 0 <= result.value <= 255
