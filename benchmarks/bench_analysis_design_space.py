"""Analysis bench: fault budgets and the area/accuracy trade-off.

Uses the closed-form models (cross-validated against the Monte Carlo
simulators by the property tests) to answer the adopter questions the
paper's evaluation implies: how much raw FIT each bit-level technique
tolerates at the 98 % target, and whether triplication is the sweet spot
of the replication family at the paper's operating knee.
"""

from benchmarks.conftest import SMOKE, scaled
from repro.analysis.design_space import fault_budget, fit_budget, tradeoff_table
from repro.experiments.report import format_table


SCHEMES = scaled(("none", "hamming", "tmr", "5mr", "7mr"),
                 ("none", "hamming", "tmr"))


def run_analysis():
    budgets = {
        scheme: (fault_budget(scheme, 98.0), fit_budget(scheme, 98.0))
        for scheme in SCHEMES
    }
    tradeoffs = tradeoff_table(0.025)
    return budgets, tradeoffs


def test_bench_design_space(benchmark):
    budgets, tradeoffs = benchmark.pedantic(run_analysis, rounds=1,
                                            iterations=1)
    print()
    rows = [
        (scheme, f"{frac * 100:.3f}%", f"{fit:.2e}")
        for scheme, (frac, fit) in budgets.items()
    ]
    print("Fault budget at 98% correct (closed form)")
    print(format_table(("scheme", "max injected %", "max raw FIT"), rows))
    print()
    rows = [
        (scheme, f"{overhead:.2f}x", f"{acc:.1f}", f"{fom:.1f}")
        for scheme, overhead, acc, fom in tradeoffs
    ]
    print("Accuracy vs area at 2.5% injected faults")
    print(format_table(("scheme", "overhead", "accuracy", "acc/overhead"),
                       rows))

    # TMR's 98%-budget lands in the paper's headline FIT decade.
    assert 1e23 < budgets["tmr"][1] < 1e25
    # Replication budgets rise with order; information code trails all.
    if not SMOKE:  # higher replication orders dropped from the smoke sweep
        assert budgets["7mr"][0] > budgets["5mr"][0] > budgets["tmr"][0]
    assert budgets["hamming"][0] < budgets["none"][0]
