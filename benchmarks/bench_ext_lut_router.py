"""Extension (paper §7): the router converted to lookup tables.

The other half of the control-logic-in-LUTs future work (alongside
``bench_ext_lut_control``'s flag voters): the five-case routing decision
built from comparator and decision LUTs, fault-injected at the paper's
percentages.  Reports the misroute rate per coding scheme -- a misroute
sends a packet the wrong way (recoverable by more hops or a retry) or
produces an invalid direction code (a detectable drop).
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.cell.lutrouter import LUTRouter
from repro.cell.router import route_packet
from repro.faults.mask import ExactFractionMask

PERCENTS = (0.5, 1, 2, 5)
TRIALS = scaled(500, 120)
N_JOB = scaled(32, 16)


def misroute_rates(scheme: str):
    rng = np.random.default_rng(2004)
    router = LUTRouter(scheme)
    rates = []
    for percent in PERCENTS:
        policy = ExactFractionMask(percent / 100)
        wrong = 0
        for _ in range(TRIALS):
            dr, dc, cr, cc = (int(x) for x in rng.integers(0, 8, size=4))
            mask = policy.generate(router.site_count, rng)
            got, valid = router.route(dr, dc, cr, cc, fault_mask=mask)
            if not valid or got is not route_packet(dr, dc, cr, cc).direction:
                wrong += 1
        rates.append(wrong / TRIALS)
    return rates


def run_comparison():
    return {scheme: misroute_rates(scheme) for scheme in ("none", "tmr")}


def test_bench_lut_router(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(f"  {'fault %':>8}  {'uncoded':>9}  {'tmr':>9}")
    for i, percent in enumerate(PERCENTS):
        print(f"  {percent:>8g}  {100 * results['none'][i]:>8.1f}%  "
              f"{100 * results['tmr'][i]:>8.1f}%")
    print(f"  sites: uncoded {LUTRouter('none').site_count}, "
          f"tmr {LUTRouter('tmr').site_count}")

    for i in range(len(PERCENTS)):
        assert results["tmr"][i] <= results["none"][i]
    # At the 2% knee the TMR router must cut misroutes substantially.
    knee = PERCENTS.index(2)
    assert results["tmr"][knee] < results["none"][knee] * 0.5


def run_fabric_job(scheme: str):
    """LUT routers live in the fabric: whole image job at 2% router faults."""
    from repro.faults.mask import ExactFractionMask as EFM
    from repro.grid.grid import NanoBoxGrid
    from repro.grid.control import ControlProcessor
    from repro.grid.watchdog import Watchdog

    policy = EFM(0.02)

    def factory(coord):
        rng = np.random.default_rng(
            np.random.SeedSequence([2004, coord[0], coord[1]])
        )
        sites = LUTRouter(scheme).site_count
        return lambda: policy.generate(sites, rng)

    grid = NanoBoxGrid(3, 3, lut_router_scheme=scheme,
                       router_mask_source_factory=factory, n_words=12)
    cp = ControlProcessor(grid, watchdog=Watchdog(grid))
    instructions = [(i, 0b010, (i * 19) & 0xFF, 0xFF)
                    for i in range(N_JOB)]
    result = cp.run_job(instructions, max_rounds=3)
    return grid, result


def test_bench_lut_router_in_fabric(benchmark):
    grid_none, result_none = benchmark.pedantic(
        run_fabric_job, args=("none",), rounds=1, iterations=1
    )
    grid_tmr, result_tmr = run_fabric_job("tmr")
    print()
    for label, grid, result in (("uncoded", grid_none, result_none),
                                ("tmr", grid_tmr, result_tmr)):
        got = len(result.results)
        print(f"  {label:>8}: misroutes={grid.misroutes} "
              f"invalid={grid.invalid_routes} "
              f"dropped={len(grid.dropped_packets)} results={got}/{N_JOB} "
              f"rounds={result.rounds}")
    # Misdelivered packets still compute correctly (operands travel with
    # the packet), so correctness of returned results is unconditional.
    for iid, op, a, b in [(i, 0b010, (i * 19) & 0xFF, 0xFF)
                          for i in range(N_JOB)]:
        for result in (result_none, result_tmr):
            if iid in result.results:
                assert result.results[iid] == a ^ 0xFF
    assert grid_tmr.misroutes <= grid_none.misroutes
    assert result_tmr.complete
