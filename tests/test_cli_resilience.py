"""CLI-level crash-safety tests: checkpoints, resume, deadlines.

The contract under test: for every experiment-running subcommand, a
checkpointed run and a resumed run print stdout byte-identical to the
plain flag-free run (recovery accounting goes to stderr only), and an
expired ``--deadline`` yields a well-formed partial report with exit
status 3.
"""

import json

import pytest

from repro.cli import EXIT_INCOMPLETE, main

SWEEP = ["sweep", "--quick", "--seed", "11"]
GRID = ["grid", "--rows", "2", "--cols", "2", "--image-size", "4",
        "--kill", "0,1@40", "--seed", "3"]
CHAOS = ["chaos", "--rates", "0", "0.003", "--instructions", "16",
         "--rows", "2", "--cols", "2"]
LIFECYCLE = ["lifecycle", "--jobs", "1", "--instructions", "16",
             "--rows", "2", "--cols", "2"]


def _run(capsys, argv):
    status = main(argv)
    captured = capsys.readouterr()
    return status, captured.out, captured.err


class TestResumeByteIdentity:
    @pytest.mark.parametrize(
        "argv", (SWEEP, GRID, CHAOS, LIFECYCLE),
        ids=("sweep", "grid", "chaos", "lifecycle"),
    )
    def test_checkpoint_and_resume_match_plain_run(
        self, capsys, tmp_path, argv
    ):
        plain_status, plain_out, _ = _run(capsys, argv)
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        first_status, first_out, first_err = _run(capsys, argv + ck)
        assert first_status == plain_status
        assert first_out == plain_out
        assert "computed" in first_err
        resumed_status, resumed_out, resumed_err = _run(
            capsys, argv + ck + ["--resume"]
        )
        assert resumed_status == plain_status
        assert resumed_out == plain_out
        assert "computed 0" in resumed_err  # everything came from disk

    def test_corrupt_checkpoint_quarantined_and_output_unchanged(
        self, capsys, tmp_path
    ):
        _, plain_out, _ = _run(capsys, SWEEP)
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        _run(capsys, SWEEP + ck)
        records = sorted((tmp_path / "ck").glob("*/chunk_*.json"))
        assert records
        records[0].write_text(records[0].read_text()[:25])  # truncate
        status, out, err = _run(capsys, SWEEP + ck + ["--resume"])
        assert status == 0
        assert out == plain_out
        assert "quarantined 1 corrupt record(s)" in err
        assert list((tmp_path / "ck").glob("*/*.corrupt*"))


class TestDeadline:
    def test_expired_deadline_reports_explicit_partial(
        self, capsys, tmp_path
    ):
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        status, out, err = _run(
            capsys, SWEEP + ck + ["--deadline", "0.000001"]
        )
        assert status == EXIT_INCOMPLETE
        assert "INCOMPLETE" in out
        assert "[partial]" in out
        assert "deadline hit" in err
        # The partial run is a valid launchpad: resume completes it.
        _, plain_out, _ = _run(capsys, SWEEP)
        resumed_status, resumed_out, _ = _run(capsys, SWEEP + ck + ["--resume"])
        assert resumed_status == 0
        assert resumed_out == plain_out

    def test_deadline_applies_to_grid_single_chunk(self, capsys, tmp_path):
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        status, out, _ = _run(capsys, GRID + ck + ["--deadline", "0.000001"])
        assert status == EXIT_INCOMPLETE
        assert "INCOMPLETE" in out
        _, plain_out, _ = _run(capsys, GRID)
        resumed_status, resumed_out, _ = _run(capsys, GRID + ck + ["--resume"])
        assert resumed_status == 0
        assert resumed_out == plain_out


class TestFlagValidation:
    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(SWEEP + ["--resume"])
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_plain_run_untouched_by_flag_machinery(self, capsys):
        """No resilience flag given: the pre-existing path, no stderr."""
        status, out, err = _run(capsys, SWEEP)
        assert status == 0
        assert "checkpoint[" not in err

    def test_checkpoint_json_export_still_works(self, capsys, tmp_path):
        out_json = tmp_path / "fig.json"
        status, _, _ = _run(
            capsys,
            SWEEP + ["--checkpoint-dir", str(tmp_path / "ck"),
                     "--json", str(out_json)],
        )
        assert status == 0
        assert json.loads(out_json.read_text())["name"] == "figure7"


class TestObservabilityIntegration:
    def test_checkpoint_counters_exported(self, capsys, tmp_path):
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        metrics_path = tmp_path / "m1.json"
        _run(capsys, SWEEP + ck + ["--metrics", str(metrics_path)])
        counters = json.loads(metrics_path.read_text())["counters"]
        assert counters["checkpoint.writes"] > 0
        assert counters["resilient.chunks_computed"] > 0
        metrics_path2 = tmp_path / "m2.json"
        _run(
            capsys, SWEEP + ck + ["--resume", "--metrics", str(metrics_path2)]
        )
        counters2 = json.loads(metrics_path2.read_text())["counters"]
        assert counters2["checkpoint.hits"] > 0
        assert counters2["resilient.chunks_reused"] > 0
