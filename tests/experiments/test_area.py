"""Tests for the area-overhead accounting."""

import pytest

from repro.experiments.area import (
    area_rows,
    area_table_text,
    headline_overhead,
)


class TestAreaOverhead:
    def test_headline_is_order_nine(self):
        overhead = headline_overhead()
        assert overhead == pytest.approx(5040 / 512)
        assert 9.0 <= overhead < 10.0

    def test_baseline_normalised(self):
        rows = {name: ratio for name, _, ratio, _ in area_rows()}
        assert rows["alunn"] == 1.0

    def test_monotone_with_redundancy(self):
        rows = {name: ratio for name, _, ratio, _ in area_rows()}
        assert rows["aluns"] == pytest.approx(3.0)
        assert rows["aluss"] > rows["alusn"] > rows["alunn"]
        assert rows["aluts"] > rows["aluss"]  # +27 storage sites

    def test_render(self):
        text = area_table_text()
        assert "9.84x" in text
        assert "alunn" in text
