"""Tests for the everything-regenerator."""

import pytest

from repro.experiments.run_all import build_report, main


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(quick=True, seed=7)

    def test_all_sections_present(self, report):
        for section in (
            "== Table 1 ==",
            "== Table 2 ==",
            "== Figure 7 ==",
            "== Figure 8 ==",
            "== Figure 9 ==",
            "== FIT translation ==",
            "== Headline claims ==",
            "== Area overhead ==",
            "== Ablation: Hamming decoder semantics ==",
            "== Extension: manufacturing yield ==",
            "== Extension: system-check scaling ==",
            "== Analysis: fault budgets at 98% ==",
        ):
            assert section in report, section

    def test_table2_verified(self, report):
        assert "MISMATCH" not in report

    def test_headline_claims_hold(self, report):
        headline = report.split("== Headline claims ==")[1].split("==")[0]
        assert "FAIL" not in headline

    def test_stddev_note_present(self, report):
        assert "24.51" in report  # the paper's worst-case spread, cited


class TestMain:
    def test_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "r.txt"
        assert main(["--quick", "--seed", "7", "--out", str(out)]) == 0
        assert "== Table 2 ==" in out.read_text()
        capsys.readouterr()  # drain stdout
