"""Tests regenerating Figures 7-9 (reduced sweeps; full runs live in the
benchmarks and EXPERIMENTS.md)."""

import pytest

from repro.experiments.figures import (
    FIGURE_VARIANTS,
    PAPER_FAULT_PERCENTAGES,
    figure7,
    figure8,
    figure9,
    run_figure,
    sweep_variant,
)

#: A cheap subset of the paper's 18 percentages for CI-speed sweeps.
QUICK = (0, 1, 3, 9)


@pytest.fixture(scope="module")
def fig7():
    return figure7(fault_percents=QUICK, trials_per_workload=3, seed=99)


class TestSweepMechanics:
    def test_paper_has_18_percentages(self):
        assert len(PAPER_FAULT_PERCENTAGES) == 18
        assert PAPER_FAULT_PERCENTAGES[0] == 0
        assert PAPER_FAULT_PERCENTAGES[-1] == 75

    def test_each_figure_has_four_variants(self):
        for variants in FIGURE_VARIANTS.values():
            assert len(variants) == 4

    def test_sweep_points_complete(self):
        points = sweep_variant("alunn", fault_percents=QUICK,
                               trials_per_workload=2)
        assert len(points) == len(QUICK)
        assert all(p.samples == 4 for p in points)  # 2 trials x 2 workloads

    def test_zero_percent_always_perfect(self):
        points = sweep_variant("aluncmos", fault_percents=(0,),
                               trials_per_workload=2)
        assert points[0].percent_correct == 100.0
        assert points[0].stddev == 0.0
        assert points[0].fit_rate == 0.0

    def test_fit_rates_attached(self):
        points = sweep_variant("aluss", fault_percents=(1,),
                               trials_per_workload=1)
        assert points[0].fit_rate == pytest.approx(3.6e23, rel=0.02)

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            run_figure("figure10")

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            sweep_variant("alunn", trials_per_workload=0)


class TestFigure7Shape(object):
    """The qualitative claims of paper Section 5 about Figure 7."""

    def test_series_structure(self, fig7):
        series = fig7.series()
        assert set(series) == set(FIGURE_VARIANTS["figure7"])
        assert all(len(s) == len(QUICK) for s in series.values())

    def test_tmr_dominates(self, fig7):
        series = fig7.series()
        for i in range(1, len(QUICK)):
            assert series["aluns"][i] >= series["alunn"][i]
            assert series["aluns"][i] >= series["alunh"][i]
            assert series["aluns"][i] >= series["aluncmos"][i]

    def test_nocode_beats_hamming_everywhere(self, fig7):
        """alunn was better than alunh across all fault percentages."""
        series = fig7.series()
        for i in range(1, len(QUICK)):
            assert series["alunn"][i] > series["alunh"][i]

    def test_cmos_collapses_fastest(self, fig7):
        series = fig7.series()
        # ~39% at 1% injected errors in the paper; allow generous margin.
        assert series["aluncmos"][QUICK.index(1)] < 55
        assert series["aluncmos"][QUICK.index(3)] < 20

    def test_tmr_holds_98_at_low_density(self, fig7):
        series = fig7.series()
        assert series["aluns"][QUICK.index(1)] >= 98.0

    def test_point_lookup(self, fig7):
        point = fig7.point("aluns", 1)
        assert point.variant == "aluns"
        with pytest.raises(KeyError):
            fig7.point("aluns", 42)

    def test_text_rendering(self, fig7):
        text = fig7.to_text()
        assert "No Module-Level Fault Tolerance" in text
        assert "aluns" in text


class TestFigures8And9Similarity:
    """Section 5: module-level redundancy adds almost nothing at these
    densities -- Figures 7, 8, 9 look nearly identical per bit technique."""

    def test_module_redundancy_changes_little_for_tmr_bits(self):
        f7 = sweep_variant("aluns", fault_percents=(2,), trials_per_workload=5)
        f8 = sweep_variant("aluts", fault_percents=(2,), trials_per_workload=5)
        f9 = sweep_variant("aluss", fault_percents=(2,), trials_per_workload=5)
        values = [f7[0].percent_correct, f8[0].percent_correct,
                  f9[0].percent_correct]
        assert max(values) - min(values) < 6.0

    def test_time_and_space_nearly_identical(self):
        fig8 = figure8(fault_percents=(3,), trials_per_workload=5, seed=1)
        fig9 = figure9(fault_percents=(3,), trials_per_workload=5, seed=1)
        t = fig8.point("aluts", 3).percent_correct
        s = fig9.point("aluss", 3).percent_correct
        assert abs(t - s) < 6.0


class TestSpreadDiscipline:
    def test_stddev_mostly_small(self, fig7):
        """Paper: stddev < 10 points for nearly every plotted point."""
        small = sum(1 for p in fig7.points if p.stddev < 10.0)
        assert small >= len(fig7.points) * 0.7
        assert fig7.max_stddev() < 30.0
