"""Tests for the system-scaling studies."""

import pytest

from repro.experiments.scaling import (
    ExternalSurveyChecker,
    detection_latency,
    detection_table_text,
    pipeline_scaling,
    pipeline_table_text,
)
from repro.grid.grid import NanoBoxGrid


class TestExternalSurveyChecker:
    def test_polls_round_robin(self):
        grid = NanoBoxGrid(2, 2)
        checker = ExternalSurveyChecker(grid)
        assert checker.cells_per_survey == 4
        for _ in range(8):
            assert checker.poll_one() == []
        assert checker.cycles_polled == 8

    def test_detects_dead_cell_within_one_survey(self):
        grid = NanoBoxGrid(3, 3)
        checker = ExternalSurveyChecker(grid)
        grid.kill_cell(1, 1)
        detected = []
        for _ in range(checker.cells_per_survey):
            detected.extend(checker.poll_one())
        assert detected == [(1, 1)]


class TestDetectionLatency:
    @pytest.fixture(scope="class")
    def points(self):
        return detection_latency(
            sizes=((2, 2), (4, 4), (6, 6)), trials=40, seed=1
        )

    def test_watchdog_constant(self, points):
        assert all(p.watchdog_latency == 1.0 for p in points)

    def test_external_grows_with_cell_count(self, points):
        latencies = [p.external_latency for p in points]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_external_mean_near_half_survey(self, points):
        """Uniform kill phase -> mean latency ~ cells/2."""
        for p in points:
            assert p.external_latency == pytest.approx(p.cells / 2, rel=0.5)

    def test_slowdown_ratio_superlinear_in_grid_side(self, points):
        # 36 cells vs 4 cells: ratio of ratios should track cell count.
        assert points[-1].ratio / points[0].ratio > 4

    def test_render(self, points):
        text = detection_table_text(points)
        assert "watchdog" in text
        assert "slowdown" in text


class TestPipelineScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return pipeline_scaling(sizes=((2, 2), (2, 4), (2, 8)), seed=0)

    def test_more_columns_speed_shift_in(self, points):
        """Each column adds an independent 8-bit edge bus."""
        shift_ins = [p.shift_in for p in points]
        assert shift_ins[0] > shift_ins[1] > shift_ins[2]

    def test_shift_in_dominates(self, points):
        for p in points:
            assert p.shift_in >= p.shift_out

    def test_render(self, points):
        text = pipeline_table_text(points)
        assert "shift-in" in text
        assert "2x8" in text
