"""Tests for result export/import."""

import csv
import io
import json

import pytest

from repro.experiments.export import (
    figure_from_json,
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    records_to_csv,
    records_to_json,
)
from repro.experiments.figures import figure7


@pytest.fixture(scope="module")
def small_figure():
    return figure7(fault_percents=(0, 3), trials_per_workload=2, seed=5)


class TestFigureExport:
    def test_dict_structure(self, small_figure):
        data = figure_to_dict(small_figure)
        assert data["name"] == "figure7"
        assert data["fault_percents"] == [0, 3]
        assert len(data["points"]) == 8  # 4 variants x 2 percents

    def test_json_roundtrip(self, small_figure):
        text = figure_to_json(small_figure)
        restored = figure_from_json(text)
        assert restored == small_figure

    def test_json_is_valid(self, small_figure):
        json.loads(figure_to_json(small_figure))

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a figure export"):
            figure_from_json('{"bogus": 1}')

    def test_csv_shape(self, small_figure):
        text = figure_to_csv(small_figure)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 8
        assert rows[0]["figure"] == "figure7"
        assert float(rows[0]["percent_correct"]) == 100.0


class TestManifest:
    def test_manifest_contents(self):
        from repro.experiments.export import run_manifest

        manifest = run_manifest(seed=2004, trials=5)
        assert manifest["library"] == "repro"
        assert manifest["parameters"] == {"seed": 2004, "trials": 5}
        assert manifest["version"]

    def test_manifest_embedded_in_figure_export(self, small_figure):
        from repro.experiments.export import run_manifest

        data = figure_to_dict(small_figure, manifest=run_manifest(seed=5))
        assert data["manifest"]["parameters"]["seed"] == 5
        # Roundtrip still works without the manifest key interfering.
        import json as _json

        restored = figure_from_json(_json.dumps(
            {k: v for k, v in data.items() if k != "manifest"}
        ))
        assert restored == small_figure


class TestRecordExport:
    def test_records_json(self):
        from repro.experiments.scaling import DetectionPoint

        points = [
            DetectionPoint(2, 2, 4, 2.0, 1.0),
            DetectionPoint(4, 4, 16, 8.0, 1.0),
        ]
        data = json.loads(records_to_json(points))
        assert data[1]["cells"] == 16

    def test_records_csv(self):
        from repro.experiments.scaling import DetectionPoint

        points = [DetectionPoint(2, 2, 4, 2.0, 1.0)]
        text = records_to_csv(points)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["external_latency"] == "2.0"

    def test_empty_records(self):
        assert records_to_csv([]) == ""
        assert json.loads(records_to_json([])) == []

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            records_to_json([{"not": "a dataclass"}])
        with pytest.raises(TypeError):
            records_to_csv([42])
