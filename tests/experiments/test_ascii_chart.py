"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_chart import MARKERS, ascii_chart, figure_chart


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            ["0", "1"], {"a": [100.0, 50.0], "b": [100.0, 0.0]}
        )
        assert "legend: o=a  x=b" not in text  # markers are positional
        assert "o=a" in text
        assert "*=b" in text
        lines = text.splitlines()
        assert any(line.startswith(" 100.0 |") for line in lines)
        assert any(line.startswith("   0.0 |") for line in lines)

    def test_overlap_marker(self):
        text = ascii_chart(["0"], {"a": [100.0], "b": [100.0]})
        assert "=" in text.splitlines()[0]

    def test_values_clamped(self):
        text = ascii_chart(["0"], {"a": [150.0]})
        assert "o" in text.splitlines()[0]

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart(["0", "1"], {"a": [1.0]})

    def test_too_many_series(self):
        series = {f"s{i}": [0.0] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError, match="at most"):
            ascii_chart(["0"], series)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            ascii_chart(["0"], {"a": [0.0]}, height=1)
        with pytest.raises(ValueError):
            ascii_chart(["0"], {"a": [0.0]}, y_min=10, y_max=10)

    def test_x_labels_present(self):
        text = ascii_chart(["0.05", "75"], {"a": [1.0, 2.0]})
        assert "0.05" in text
        assert "75" in text

    def test_marker_row_tracks_value(self):
        # 100 -> top row, 0 -> bottom (pre-axis) row.
        text = ascii_chart(["x"], {"hi": [100.0]}, height=10)
        assert "o" in text.splitlines()[0]
        text = ascii_chart(["x"], {"lo": [0.0]}, height=10)
        assert "o" in text.splitlines()[10]


class TestFigureChart:
    def test_renders_figure_result(self):
        from repro.experiments.figures import figure7

        result = figure7(fault_percents=(0, 9), trials_per_workload=1, seed=3)
        text = figure_chart(result)
        assert "No Module-Level Fault Tolerance" in text
        assert "aluns" in text
