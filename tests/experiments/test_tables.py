"""Tests regenerating Tables 1 and 2."""

from repro.experiments.tables import (
    isa_spot_checks,
    table1_rows,
    table1_text,
    table2_rows,
    table2_text,
)


class TestTable1:
    def test_four_instructions(self):
        rows = table1_rows()
        assert len(rows) == 4

    def test_paper_encodings(self):
        rows = {mnemonic: bits for bits, mnemonic, _ in table1_rows()}
        assert rows == {"AND": "000", "OR": "001", "XOR": "010", "ADD": "111"}

    def test_render_contains_actions(self):
        text = table1_text()
        assert "Operand1 AND Operand2" in text
        assert "Operand1 + Operand2" in text

    def test_spot_checks_consistent(self):
        for name, a, b, result in isa_spot_checks():
            if name == "AND":
                assert result == a & b
            elif name == "ADD":
                assert result == (a + b) & 0xFF


class TestTable2:
    def test_all_twelve_match_paper(self):
        rows = table2_rows()
        assert len(rows) == 12
        for name, paper, constructed, _desc in rows:
            assert paper == constructed, name

    def test_render_shows_ok(self):
        text = table2_text()
        assert "MISMATCH" not in text
        assert text.count("OK") == 12

    def test_descriptions_meaningful(self):
        descriptions = {name: desc for name, _, _, desc in table2_rows()}
        assert "triplicated" in descriptions["aluss"]
        assert "space redundancy" in descriptions["aluss"]
        assert "CMOS" in descriptions["aluncmos"]
