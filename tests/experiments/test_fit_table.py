"""Tests for the FIT translations and headline-claim checks."""

import pytest

from repro.experiments.fit_table import (
    fit_rows,
    fit_table_text,
    headline_claims,
    headline_claims_text,
)


class TestFitRows:
    def test_aluss_worked_example(self):
        rows = {pct: (faults, fit) for pct, faults, fit in fit_rows("aluss")}
        faults, fit = rows[1]
        assert faults == pytest.approx(50.4)
        assert fit == pytest.approx(3.6e23, rel=0.01)

    def test_three_percent_exceeds_1e24(self):
        rows = {pct: fit for pct, _, fit in fit_rows("aluss")}
        assert rows[3] > 1e24

    def test_render(self):
        text = fit_table_text("aluss")
        assert "5040 sites" in text
        assert "e+23" in text or "e23" in text


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def claims(self):
        return headline_claims(trials_per_workload=5, seed=7)

    def test_four_claims(self, claims):
        assert len(claims) == 4

    def test_all_hold(self, claims):
        for claim in claims:
            assert claim.holds, claim.claim

    def test_hundred_percent_at_1e23(self, claims):
        c = claims[0]
        assert float(c.measured_value) >= 99.0

    def test_98_percent_at_1e24(self, claims):
        c = claims[1]
        assert float(c.measured_value) >= 94.0

    def test_twenty_orders_of_magnitude(self, claims):
        c = claims[3]
        assert float(c.measured_value) >= 19.0

    def test_render(self):
        text = headline_claims_text(trials_per_workload=2, seed=7)
        assert "paper" in text and "measured" in text
