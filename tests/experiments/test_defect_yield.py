"""Tests for the manufacturing-yield experiment."""

import pytest

from repro.experiments.defect_yield import (
    functional_test,
    manufacture,
    yield_at,
    yield_sweep,
    yield_table_text,
)
from repro.alu.variants import build_alu
from repro.faults.defects import DefectMap, DefectiveUnit


class TestFunctionalTest:
    def test_pristine_part_passes(self):
        for name in ("alunn", "aluns", "aluncmos"):
            alu = build_alu(name)
            part = DefectiveUnit(alu, DefectMap.pristine(alu.site_count))
            assert functional_test(part)

    def test_observable_defect_fails(self):
        alu = build_alu("alunn")
        # Stick the XOR(0,0) entry wrong: the (0,0) test vector catches it.
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=0, stuck1=1 << 16)
        )
        assert not functional_test(part)


class TestManufacture:
    def test_part_count(self):
        parts = manufacture("alunn", 0.001, 5, seed=0)
        assert len(parts) == 5

    def test_parts_have_distinct_defects(self):
        parts = manufacture("alunn", 0.01, 6, seed=0)
        maps = {(p.defects.stuck0, p.defects.stuck1) for p in parts}
        assert len(maps) > 1

    def test_deterministic(self):
        a = manufacture("alunn", 0.01, 3, seed=5)
        b = manufacture("alunn", 0.01, 3, seed=5)
        assert [(p.defects.stuck0, p.defects.stuck1) for p in a] == [
            (p.defects.stuck0, p.defects.stuck1) for p in b
        ]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            manufacture("alunn", 0.01, 0)


class TestYield:
    def test_zero_density_perfect(self):
        point = yield_at("alunn", 0.0, n_parts=3, seed=0)
        assert point.perfect_yield == 1.0
        assert point.mean_accuracy == 100.0

    def test_tmr_outyields_uncoded(self):
        """The recursive-masking claim, in yield terms: at the same
        defect density, triplicated-string parts pass functional test
        far more often."""
        density = 2e-3
        uncoded = yield_at("alunn", density, n_parts=12, seed=3)
        tmr = yield_at("aluns", density, n_parts=12, seed=3)
        assert tmr.perfect_yield >= uncoded.perfect_yield

    def test_degradation_graceful_for_tmr(self):
        point = yield_at("aluns", 5e-3, n_parts=8, seed=4)
        assert point.mean_accuracy >= 99.0

    def test_sweep_and_render(self):
        points = yield_sweep(
            variants=("alunn",), densities=(1e-3,), n_parts=3, seed=0
        )
        text = yield_table_text(points)
        assert "alunn" in text
        assert "perfect yield" in text

    def test_any_defect_probability(self):
        point = yield_at("alunn", 1e-3, n_parts=2, seed=0)
        # 512 sites at 1e-3: P(any defect) ~ 40%.
        assert 0.3 < point.any_defect_probability < 0.5
