"""Tests for the fault-attribution study."""

import pytest

from repro.experiments.attribution import (
    attribution_study,
    attribution_table_text,
)


@pytest.fixture(scope="module")
def report():
    return attribution_study(
        "aluss", fault_fraction=0.03, observations=400, seed=1
    )


class TestAttributionStudy:
    def test_observation_accounting(self, report):
        assert report.observations == 400
        assert report.masked + report.unmasked <= 400
        assert report.masked > 0 and report.unmasked > 0

    def test_coverage_high_at_paper_knee(self, report):
        # aluss holds ~98% at 3% injected faults.
        assert report.coverage >= 0.9

    def test_segment_shares_sum_to_one(self, report):
        shares = report.segment_shares()
        assert sum(s for _, s, _ in shares) == pytest.approx(1.0)
        assert sum(s for _, _, s in shares) == pytest.approx(1.0)

    def test_fault_distribution_tracks_segment_sizes(self, report):
        """Uniform injection: each copy (1536 of 5040 sites) should draw
        ~30.5% of all faults."""
        shares = dict(
            (name, share) for name, share, _ in report.segment_shares()
        )
        for copy in ("copy0", "copy1", "copy2"):
            assert shares[copy] == pytest.approx(1536 / 5040, abs=0.03)
        assert shares["voter"] == pytest.approx(432 / 5040, abs=0.03)

    def test_coverage_decreases_with_fault_count(self, report):
        counts = sorted(report.coverage_by_count)
        low = [report.coverage_by_count[c] for c in counts[:3]]
        high = [report.coverage_by_count[c] for c in counts[-3:]]
        assert sum(low) / 3 >= sum(high) / 3

    def test_render(self, report):
        text = attribution_table_text(report)
        assert "voter" in text
        assert "exposure ratio" in text

    def test_invalid_observations(self):
        with pytest.raises(ValueError):
            attribution_study(observations=0)


class TestWeakPointDetection:
    def test_simplex_core_is_the_only_segment(self):
        report = attribution_study(
            "alunn", fault_fraction=0.02, observations=200, seed=2
        )
        assert list(report.segment_faults) == ["core"]
        assert report.coverage < 0.95  # uncoded: most faults unmasked? not
        # necessarily most, but clearly imperfect.
