"""Tests for the self-healing lifecycle experiment."""

from repro.experiments.lifecycle import (
    LifecyclePoint,
    default_processes,
    lifecycle_sweep,
    lifecycle_table_text,
    lifecycle_workload,
    permanent_policy,
    run_lifecycle_point,
    self_healing_policy,
)
from repro.faults.temporal import FaultKind, TemporalFaultProcess


class TestPolicies:
    def test_permanent_is_legacy_configuration(self):
        config = permanent_policy()
        assert config.heartbeat_decay == 0.0
        assert not config.policy.probing
        assert config.policy.suspect_polls == 0

    def test_self_healing_enables_probing(self):
        config = self_healing_policy()
        assert config.heartbeat_decay > 0
        assert config.policy.probing

    def test_default_processes_cover_taxonomy(self):
        kinds = {p.kind for p in default_processes()}
        assert kinds == {
            FaultKind.TRANSIENT,
            FaultKind.INTERMITTENT,
            FaultKind.PERMANENT,
        }


class TestWorkload:
    def test_deterministic_and_offsettable(self):
        first = lifecycle_workload(8)
        again = lifecycle_workload(8)
        assert first == again
        shifted = lifecycle_workload(8, start_iid=8)
        assert [iid for iid, *_ in shifted] == list(range(8, 16))

    def test_all_opcodes_exercised(self):
        opcodes = {op for _, op, _, _ in lifecycle_workload(8)}
        assert opcodes == {0b000, 0b001, 0b010, 0b111}


class TestRunPoint:
    def test_point_shape_and_determinism(self):
        process = TemporalFaultProcess.intermittent(
            rate=0.002, burst_length=4, errors_per_cycle=3
        )
        kwargs = dict(jobs=2, n_instructions=32, seed=7)
        point = run_lifecycle_point(process, self_healing_policy(), **kwargs)
        assert isinstance(point, LifecyclePoint)
        assert point.submitted > 0
        assert 0.0 <= point.availability <= 1.0
        assert point.goodput >= 0.0
        again = run_lifecycle_point(process, self_healing_policy(), **kwargs)
        assert point == again

    def test_fault_free_process_is_fully_correct(self):
        quiet = TemporalFaultProcess.transient(rate=0.0)
        point = run_lifecycle_point(
            quiet, permanent_policy(), jobs=2, n_instructions=32, seed=7
        )
        assert point.correct_fraction == 1.0
        assert point.availability == 1.0
        assert point.quarantines == 0


class TestSweep:
    def test_sweep_covers_grid_of_configs(self):
        points = lifecycle_sweep(jobs=1, n_instructions=16, seed=7)
        assert len(points) == 6  # 3 processes x 2 policies
        assert {p.policy for p in points} == {"permanent", "self-healing"}

    def test_table_renders_all_points(self):
        points = lifecycle_sweep(jobs=1, n_instructions=16, seed=7)
        text = lifecycle_table_text(points)
        assert "goodput/kcyc" in text
        for point in points:
            assert point.policy in text
