"""Tests for the ablation studies (reduced sweeps)."""

import pytest

from repro.experiments.ablations import (
    hamming_block_size_ablation,
    hamming_semantics_ablation,
    mask_policy_ablation,
    redundancy_order_ablation,
    voter_coding_ablation,
)

QUICK = (0, 2, 9)
TRIALS = 3


class TestHammingSemantics:
    @pytest.fixture(scope="class")
    def series(self):
        return hamming_semantics_ablation(percents=QUICK,
                                          trials_per_workload=TRIALS)

    def test_all_semantics_present(self, series):
        assert set(series) == {
            "none", "hamming", "hamming-sec", "hamming-fp", "hsiao",
        }

    def test_hsiao_beats_paper_hamming(self, series):
        """SEC-DED refuses to correct on even syndromes, so the
        double-error false positives disappear."""
        assert series["hsiao"][1] > series["hamming"][1]

    def test_textbook_sec_beats_none_at_low_density(self, series):
        """A clean SEC decoder absorbs single hits the uncoded table
        cannot -- the paper's architecture, not the code, loses."""
        assert series["hamming-sec"][1] >= series["none"][1]

    def test_paper_decoder_loses_to_none(self, series):
        assert series["hamming"][1] < series["none"][1]

    def test_pessimistic_decoder_worst(self, series):
        assert series["hamming-fp"][1] <= series["hamming"][1]


class TestRedundancyOrder:
    @pytest.fixture(scope="class")
    def series(self):
        return redundancy_order_ablation(percents=QUICK,
                                         trials_per_workload=TRIALS)

    def test_more_copies_better_at_moderate_density(self, series):
        assert series["7x"][1] >= series["5x"][1] >= series["3x"][1] \
            > series["1x"][1]

    def test_everything_perfect_at_zero(self, series):
        for label in series:
            assert series[label][0] == 100.0


class TestVoterCoding:
    def test_tmr_voter_best_protected(self):
        series = voter_coding_ablation(percents=(3,), trials_per_workload=4)
        assert series["voter:tmr"][0] >= series["voter:hamming"][0] - 3.0
        assert series["voter:tmr"][0] >= series["voter:none"][0] - 3.0


class TestMaskPolicy:
    def test_exact_and_bernoulli_agree(self):
        series = mask_policy_ablation(percents=(0, 3), trials_per_workload=5)
        assert series["exact"][0] == series["bernoulli"][0] == 100.0
        assert abs(series["exact"][1] - series["bernoulli"][1]) < 8.0


class TestHammingBlockSize:
    def test_smaller_blocks_fewer_false_positives(self):
        series = hamming_block_size_ablation(percents=(1,),
                                             trials_per_workload=4)
        # Fewer non-addressed check bits per syndrome -> higher accuracy.
        assert series["block8"][0] >= series["block32"][0]
