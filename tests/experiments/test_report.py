"""Unit tests for text report rendering."""

import pytest

from repro.experiments.report import format_percent, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(("name", "n"), [("a", 1), ("long-name", 20)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_no_trailing_whitespace(self):
        text = format_table(("x", "y"), [("a", "b")])
        assert all(line == line.rstrip() for line in text.splitlines())


class TestFormatSeries:
    def test_layout(self):
        text = format_series(
            "fault%", [0, 1], {"aluns": [100.0, 99.5], "alunn": [100.0, 89.4]}
        )
        lines = text.splitlines()
        assert "aluns" in lines[0] and "alunn" in lines[0]
        assert lines[2].startswith("0")
        assert "99.5" in text and "89.4" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [0, 1], {"s": [1.0]})


class TestFormatPercent:
    def test_one_decimal(self):
        assert format_percent(98.345) == "98.3"
