"""Tests for memory scrubbing."""

import pytest

from repro.cell.memory import CellMemory
from repro.cell.memword import (
    DATA_VALID_OFFSET,
    MemoryWord,
    TO_BE_COMPUTED_OFFSET,
)


def valid_word(iid=1):
    return MemoryWord(
        instruction_id=iid, opcode=0b010, operand1=0x0F, operand2=0xF0,
        result=0xFF, data_valid=True, to_be_computed=False,
    )


class TestScrub:
    def test_clean_memory_noop(self):
        memory = CellMemory(4)
        memory.write(0, valid_word())
        assert memory.scrub() == 0
        assert memory.read(0) == valid_word()

    def test_single_flag_upset_repaired(self):
        memory = CellMemory(2)
        memory.write(0, valid_word())
        memory.apply_faults(1 << DATA_VALID_OFFSET)  # one dv copy flips
        assert memory.scrub() == 1
        # All three copies agree again.
        raw = memory.read_raw(0)
        copies = [(raw >> (DATA_VALID_OFFSET + c)) & 1 for c in range(3)]
        assert copies == [1, 1, 1]

    def test_result_copy_upset_repaired(self):
        memory = CellMemory(1)
        memory.write(0, valid_word())
        raw = memory.read_raw(0)
        raw = MemoryWord.store_results(raw, (0xFF, 0xF0, 0xFF))
        memory.write_raw(0, raw)
        corrected = memory.scrub()
        assert corrected == 4  # the four flipped bits of copy 1
        assert MemoryWord.result_copies(memory.read_raw(0)) == (0xFF,) * 3

    def test_two_copy_upset_locks_in_wrong_value(self):
        """Scrubbing can only restore the majority; if two copies flipped
        first, the wrong value becomes canonical -- the inherent TMR
        limit."""
        memory = CellMemory(1)
        memory.write(0, valid_word())
        memory.apply_faults(0b11 << TO_BE_COMPUTED_OFFSET)
        memory.scrub()
        assert memory.read(0).to_be_computed  # wrong, and now unanimous

    def test_invalid_word_with_stray_bits_cleared(self):
        memory = CellMemory(1)
        # A freed word picks up a stray upset: scrub must zero it before
        # further upsets can drift it toward a phantom-valid word.
        memory.apply_faults(1 << DATA_VALID_OFFSET)
        assert memory.scrub() == 1
        assert memory.read_raw(0) == 0

    def test_nontriplicated_fields_untouched(self):
        memory = CellMemory(1)
        memory.write(0, valid_word())
        memory.apply_faults(1 << 0)  # instruction-ID bit: unprotected
        memory.scrub()
        assert memory.read(0).instruction_id == valid_word().instruction_id ^ 1


class TestSimulatorScrubbing:
    def test_scrub_counter_and_benefit(self):
        from repro.grid.simulator import GridSimulator
        from repro.workloads.bitmap import gradient
        from repro.workloads.imaging import reverse_video

        upset_rate = 3e-4
        plain = GridSimulator(rows=2, cols=2, seed=5,
                              memory_upset_rate=upset_rate)
        scrubbed = GridSimulator(rows=2, cols=2, seed=5,
                                 memory_upset_rate=upset_rate,
                                 scrub_interval=8)
        acc_plain = plain.run_image_job(
            gradient(8, 8), reverse_video()
        ).pixel_accuracy
        acc_scrubbed = scrubbed.run_image_job(
            gradient(8, 8), reverse_video()
        ).pixel_accuracy
        assert scrubbed.scrub_corrections > 0
        assert acc_scrubbed >= acc_plain

    def test_invalid_interval(self):
        from repro.grid.simulator import GridSimulator

        with pytest.raises(ValueError):
            GridSimulator(scrub_interval=-1)
