"""Unit tests for the processor-cell memory."""

import pytest

from repro.cell.memory import CELL_MEMORY_WORDS, CellMemory
from repro.cell.memword import MEMORY_WORD_BITS, MemoryWord


def word(iid=1, tbc=True):
    return MemoryWord(
        instruction_id=iid,
        opcode=0b010,
        operand1=0x10,
        operand2=0xFF,
        data_valid=True,
        to_be_computed=tbc,
    )


class TestGeometry:
    def test_paper_default(self):
        memory = CellMemory()
        assert memory.n_words == CELL_MEMORY_WORDS == 32
        assert memory.site_count == 32 * MEMORY_WORD_BITS

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CellMemory(0)


class TestReadWrite:
    def test_roundtrip(self):
        memory = CellMemory(4)
        memory.write(2, word(7))
        assert memory.read(2).instruction_id == 7

    def test_index_bounds(self):
        memory = CellMemory(4)
        with pytest.raises(IndexError):
            memory.read(4)
        with pytest.raises(IndexError):
            memory.write_raw(-1, 0)

    def test_raw_width_enforced(self):
        memory = CellMemory(1)
        with pytest.raises(ValueError):
            memory.write_raw(0, 1 << MEMORY_WORD_BITS)

    def test_erase_and_clear(self):
        memory = CellMemory(4)
        memory.write(0, word(1))
        memory.write(1, word(2))
        memory.erase(0)
        assert not memory.read(0).data_valid
        memory.clear()
        assert memory.occupancy() == 0


class TestQueries:
    def test_free_slot_order(self):
        memory = CellMemory(4)
        assert memory.free_slot() == 0
        memory.write(0, word(1))
        assert memory.free_slot() == 1

    def test_free_slot_none_when_full(self):
        memory = CellMemory(2)
        memory.write(0, word(1))
        memory.write(1, word(2))
        assert memory.free_slot() is None

    def test_pending_and_completed(self):
        memory = CellMemory(4)
        memory.write(0, word(1, tbc=True))
        memory.write(1, word(2, tbc=False))
        assert list(memory.pending_words()) == [0]
        assert list(memory.completed_words()) == [1]

    def test_occupancy(self):
        memory = CellMemory(8)
        for i in range(3):
            memory.write(i, word(i))
        assert memory.occupancy() == 3


class TestFaultOverlay:
    def test_faults_persist(self):
        memory = CellMemory(2)
        memory.write(0, word(1))
        before = memory.read_raw(0)
        memory.apply_faults(1 << 0)  # flip instruction-ID bit 0 of word 0
        assert memory.read_raw(0) == before ^ 1
        # Persist across reads (unlike transient ALU masks).
        assert memory.read_raw(0) == before ^ 1

    def test_fault_targets_correct_word(self):
        memory = CellMemory(3)
        for i in range(3):
            memory.write(i, word(i + 1))
        raw1_before = memory.read_raw(1)
        memory.apply_faults(1 << MEMORY_WORD_BITS)  # first bit of word 1
        assert memory.read_raw(0) == word(1).pack()
        assert memory.read_raw(1) == raw1_before ^ 1
        assert memory.read_raw(2) == word(3).pack()

    def test_triplicated_flags_survive_single_upset(self):
        from repro.cell.memword import TO_BE_COMPUTED_OFFSET

        memory = CellMemory(1)
        memory.write(0, word(9))
        memory.apply_faults(1 << TO_BE_COMPUTED_OFFSET)
        assert memory.read(0).to_be_computed  # majority still true

    def test_oversized_mask_rejected(self):
        memory = CellMemory(1)
        with pytest.raises(ValueError):
            memory.apply_faults(1 << memory.site_count)

    def test_zero_mask_noop(self):
        memory = CellMemory(2)
        memory.write(0, word(1))
        memory.apply_faults(0)
        assert memory.read_raw(0) == word(1).pack()
