"""Unit tests for the five-case routing rule (paper Section 3.3)."""

import pytest

from repro.cell.router import Direction, hop_count, route_packet


class TestFiveCases:
    def test_send_left_when_dest_col_greater(self):
        # Column addresses decrease moving right, so a higher destination
        # column lies to the LEFT.
        assert route_packet(2, 5, 2, 3).direction is Direction.LEFT

    def test_send_right_when_dest_col_smaller(self):
        assert route_packet(2, 1, 2, 3).direction is Direction.RIGHT

    def test_send_up_when_dest_row_greater(self):
        # Row addresses decrease moving down, so a higher destination row
        # lies UP (toward the control processor).
        assert route_packet(5, 3, 2, 3).direction is Direction.UP

    def test_send_down_when_dest_row_smaller(self):
        assert route_packet(0, 3, 2, 3).direction is Direction.DOWN

    def test_keep_here(self):
        decision = route_packet(2, 3, 2, 3)
        assert decision.direction is Direction.HERE
        assert decision.keep

    def test_column_takes_priority_over_row(self):
        # Dimension order: resolve column first, then row.
        assert route_packet(9, 9, 0, 0).direction is Direction.LEFT
        assert route_packet(9, 0, 0, 0).direction is Direction.UP


class TestDirectionGeometry:
    def test_opposites(self):
        assert Direction.UP.opposite() is Direction.DOWN
        assert Direction.LEFT.opposite() is Direction.RIGHT
        assert Direction.HERE.opposite() is Direction.HERE

    def test_step_axes(self):
        assert Direction.UP.step(1, 1) == (2, 1)
        assert Direction.DOWN.step(1, 1) == (0, 1)
        assert Direction.LEFT.step(1, 1) == (1, 2)
        assert Direction.RIGHT.step(1, 1) == (1, 0)
        assert Direction.HERE.step(1, 1) == (1, 1)

    def test_step_matches_routing_semantics(self):
        """Following the routing decision one hop must strictly reduce
        the Manhattan distance to the destination."""
        dest = (3, 4)
        for row in range(6):
            for col in range(6):
                if (row, col) == dest:
                    continue
                decision = route_packet(dest[0], dest[1], row, col)
                nr, nc = decision.direction.step(row, col)
                assert hop_count(dest[0], dest[1], nr, nc) == hop_count(
                    dest[0], dest[1], row, col
                ) - 1


class TestHopCount:
    def test_zero_at_destination(self):
        assert hop_count(2, 2, 2, 2) == 0

    def test_manhattan(self):
        assert hop_count(0, 0, 3, 4) == 7


class TestRoutingConvergence:
    @pytest.mark.parametrize("dest", [(0, 0), (7, 7), (3, 5), (5, 0)])
    def test_every_start_reaches_destination(self, dest):
        for start_row in range(8):
            for start_col in range(8):
                row, col = start_row, start_col
                for _ in range(20):
                    decision = route_packet(dest[0], dest[1], row, col)
                    if decision.keep:
                        break
                    row, col = decision.direction.step(row, col)
                assert (row, col) == dest
