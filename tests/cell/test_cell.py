"""Unit tests for the assembled processor cell."""

import pytest

from repro.alu.nanobox import NanoBoxALU
from repro.cell.cell import CellFullError, CellMode, ProcessorCell
from repro.cell.memword import MemoryWord


def make_cell(n_words=8, threshold=8):
    return ProcessorCell(
        row=2, col=3, alu=NanoBoxALU(scheme="tmr"),
        n_words=n_words, error_threshold=threshold,
    )


class TestIdentity:
    def test_cell_id(self):
        cell = make_cell()
        assert cell.cell_id == (2, 3)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            ProcessorCell(-1, 0, NanoBoxALU())


class TestModes:
    def test_starts_in_shift_in(self):
        assert make_cell().mode is CellMode.SHIFT_IN

    def test_mode_switch_resets_pointers(self):
        cell = make_cell()
        cell.store_instruction(1, 0b010, 0x01, 0xFF)
        cell.set_mode(CellMode.COMPUTE)
        cell.compute_step()
        cell.set_mode(CellMode.SHIFT_OUT)
        assert cell.pop_result() == (1, 0x01 ^ 0xFF)


class TestShiftIn:
    def test_store_fills_slots_in_order(self):
        cell = make_cell(n_words=2)
        assert cell.store_instruction(1, 0, 1, 2) == 0
        assert cell.store_instruction(2, 0, 1, 2) == 1

    def test_full_memory_raises_and_counts(self):
        cell = make_cell(n_words=1)
        cell.store_instruction(1, 0, 1, 2)
        with pytest.raises(CellFullError):
            cell.store_instruction(2, 0, 1, 2)
        assert cell.rejected_packets == 1

    def test_stored_word_pending(self):
        cell = make_cell()
        cell.store_instruction(7, 0b111, 10, 20)
        word = cell.memory.read(0)
        assert word.data_valid and word.to_be_computed
        assert word.instruction_id == 7


class TestCompute:
    def test_compute_step_executes(self):
        cell = make_cell()
        cell.store_instruction(1, 0b111, 200, 100)
        cell.set_mode(CellMode.COMPUTE)
        computed = any(cell.compute_step() for _ in range(8))
        assert computed
        assert cell.memory.read(0).result == (200 + 100) & 0xFF

    def test_dead_cell_does_not_compute(self):
        cell = make_cell(threshold=0)
        cell.store_instruction(1, 0b010, 1, 2)
        cell.heartbeat.silence()
        cell.set_mode(CellMode.COMPUTE)
        assert not cell.compute_step()
        assert cell.memory.read(0).to_be_computed

    def test_corrupt_opcode_counts_error(self):
        cell = make_cell()
        bad = MemoryWord(
            instruction_id=1, opcode=0b100, operand1=0, operand2=0,
            data_valid=True, to_be_computed=True,
        )
        cell.memory.write(0, bad)
        cell.set_mode(CellMode.COMPUTE)
        cell.compute_step()
        assert cell.heartbeat.error_count == 1


class TestShiftOut:
    def test_pop_results_in_word_order(self):
        cell = make_cell()
        for iid, (a, b) in enumerate([(1, 2), (3, 4), (5, 6)]):
            cell.store_instruction(iid + 10, 0b111, a, b)
        cell.set_mode(CellMode.COMPUTE)
        for _ in range(10):
            cell.compute_step()
        cell.set_mode(CellMode.SHIFT_OUT)
        assert cell.pop_result() == (10, 3)
        assert cell.pop_result() == (11, 7)
        assert cell.pop_result() == (12, 11)
        assert cell.pop_result() is None

    def test_pop_skips_pending_words(self):
        cell = make_cell()
        cell.store_instruction(1, 0b010, 0, 0)  # never computed
        cell.set_mode(CellMode.SHIFT_OUT)
        assert cell.pop_result() is None

    def test_popped_words_erased(self):
        cell = make_cell()
        cell.store_instruction(1, 0b010, 0xF0, 0x0F)
        cell.set_mode(CellMode.COMPUTE)
        for _ in range(4):
            cell.compute_step()
        cell.set_mode(CellMode.SHIFT_OUT)
        cell.pop_result()
        assert cell.memory.occupancy() == 0


class TestSalvage:
    def test_extract_pending_removes_words(self):
        cell = make_cell()
        cell.store_instruction(1, 0b010, 1, 2)
        cell.store_instruction(2, 0b010, 3, 4)
        words = cell.extract_pending()
        assert [w.instruction_id for w in words] == [1, 2]
        assert cell.memory.occupancy() == 0

    def test_adopt_word_runs_on_next_pass(self):
        donor = make_cell()
        donor.store_instruction(9, 0b111, 2, 3)
        salvaged = donor.extract_pending()[0]

        adopter = make_cell()
        adopter.set_mode(CellMode.COMPUTE)
        adopter.adopt_word(salvaged)
        for _ in range(4):
            adopter.compute_step()
        assert adopter.memory.read(0).result == 5

    def test_adopt_full_cell_raises(self):
        cell = make_cell(n_words=1)
        cell.store_instruction(1, 0, 1, 2)
        with pytest.raises(CellFullError):
            cell.adopt_word(
                MemoryWord(
                    instruction_id=2, opcode=0, operand1=0, operand2=0,
                    data_valid=True, to_be_computed=True,
                )
            )
