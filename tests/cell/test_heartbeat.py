"""Unit tests for the heartbeat generator."""

import pytest

from repro.cell.heartbeat import Heartbeat


class TestHeartbeat:
    def test_beats_while_healthy(self):
        hb = Heartbeat(error_threshold=2)
        assert hb.beat()
        assert hb.beat()
        assert hb.beats_emitted == 2

    def test_errors_within_threshold_keep_beating(self):
        hb = Heartbeat(error_threshold=3)
        hb.record_error(3)
        assert hb.healthy
        assert hb.beat()

    def test_exceeding_threshold_silences(self):
        hb = Heartbeat(error_threshold=3)
        hb.record_error(4)
        assert not hb.healthy
        assert not hb.beat()

    def test_incremental_errors(self):
        hb = Heartbeat(error_threshold=2)
        for _ in range(2):
            hb.record_error()
            assert hb.beat()
        hb.record_error()
        assert not hb.beat()

    def test_zero_threshold(self):
        hb = Heartbeat(error_threshold=0)
        assert hb.beat()
        hb.record_error()
        assert not hb.beat()

    def test_boundary_at_exact_threshold_still_healthy(self):
        """The threshold is inclusive: errors == threshold still beats."""
        hb = Heartbeat(error_threshold=8)
        hb.record_error(8)
        assert hb.error_count == hb.error_threshold
        assert hb.healthy
        assert hb.beat()

    def test_boundary_one_past_threshold_goes_silent(self):
        """Exactly threshold + 1 errors is the first silent state."""
        hb = Heartbeat(error_threshold=8)
        hb.record_error(8)
        assert hb.healthy
        hb.record_error()
        assert hb.error_count == hb.error_threshold + 1
        assert not hb.healthy
        assert not hb.beat()

    def test_forced_silence(self):
        hb = Heartbeat(error_threshold=100)
        hb.silence()
        assert not hb.healthy
        assert not hb.beat()

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(error_threshold=-1)

    def test_negative_error_count_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat().record_error(-1)

    def test_silence_does_not_count_beats(self):
        hb = Heartbeat()
        hb.beat()
        hb.silence()
        hb.beat()
        assert hb.beats_emitted == 1
