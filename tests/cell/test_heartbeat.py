"""Unit tests for the heartbeat generator."""

import pytest

from repro.cell.heartbeat import Heartbeat


class TestHeartbeat:
    def test_beats_while_healthy(self):
        hb = Heartbeat(error_threshold=2)
        assert hb.beat()
        assert hb.beat()
        assert hb.beats_emitted == 2

    def test_errors_within_threshold_keep_beating(self):
        hb = Heartbeat(error_threshold=3)
        hb.record_error(3)
        assert hb.healthy
        assert hb.beat()

    def test_exceeding_threshold_silences(self):
        hb = Heartbeat(error_threshold=3)
        hb.record_error(4)
        assert not hb.healthy
        assert not hb.beat()

    def test_incremental_errors(self):
        hb = Heartbeat(error_threshold=2)
        for _ in range(2):
            hb.record_error()
            assert hb.beat()
        hb.record_error()
        assert not hb.beat()

    def test_zero_threshold(self):
        hb = Heartbeat(error_threshold=0)
        assert hb.beat()
        hb.record_error()
        assert not hb.beat()

    def test_boundary_at_exact_threshold_still_healthy(self):
        """The threshold is inclusive: errors == threshold still beats."""
        hb = Heartbeat(error_threshold=8)
        hb.record_error(8)
        assert hb.error_count == hb.error_threshold
        assert hb.healthy
        assert hb.beat()

    def test_boundary_one_past_threshold_goes_silent(self):
        """Exactly threshold + 1 errors is the first silent state."""
        hb = Heartbeat(error_threshold=8)
        hb.record_error(8)
        assert hb.healthy
        hb.record_error()
        assert hb.error_count == hb.error_threshold + 1
        assert not hb.healthy
        assert not hb.beat()

    def test_forced_silence(self):
        hb = Heartbeat(error_threshold=100)
        hb.silence()
        assert not hb.healthy
        assert not hb.beat()

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(error_threshold=-1)

    def test_negative_error_count_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat().record_error(-1)

    def test_silence_does_not_count_beats(self):
        hb = Heartbeat()
        hb.beat()
        hb.silence()
        hb.beat()
        assert hb.beats_emitted == 1


class TestLeakyBucket:
    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(decay=-0.1)

    def test_score_tracks_count_at_zero_decay(self):
        hb = Heartbeat(error_threshold=5, decay=0.0)
        hb.record_error(3)
        for _ in range(10):
            hb.beat()
        assert hb.error_score == hb.error_count == 3

    def test_decay_leaks_score_each_beat(self):
        hb = Heartbeat(error_threshold=5, decay=1.0)
        hb.record_error(3)
        hb.beat()
        assert hb.error_score == 2.0
        hb.beat()
        hb.beat()
        hb.beat()
        assert hb.error_score == 0.0
        # The lifetime tally is untouched by the leak.
        assert hb.error_count == 3

    def test_silent_cell_recovers_through_decay(self):
        hb = Heartbeat(error_threshold=2, decay=1.0)
        hb.record_error(5)
        assert not hb.beat()  # score 4 > 2
        assert not hb.beat()  # score 3 > 2
        assert hb.beat()      # score 2 <= 2: beating again
        assert hb.healthy

    def test_errors_faster_than_leak_still_silence(self):
        hb = Heartbeat(error_threshold=2, decay=0.5)
        for _ in range(4):
            hb.record_error(2)
            hb.beat()
        assert not hb.healthy

    def test_revive_clears_forced_silence_and_score(self):
        hb = Heartbeat(error_threshold=2)
        hb.record_error(5)
        hb.silence()
        assert not hb.healthy
        hb.revive()
        assert not hb.forced_silent
        assert hb.error_score == 0.0
        assert hb.error_count == 5  # lifetime tally preserved
        assert hb.healthy
        assert hb.beat()

    def test_decay_never_goes_negative(self):
        hb = Heartbeat(error_threshold=2, decay=3.0)
        hb.record_error(1)
        hb.beat()
        assert hb.error_score == 0.0

    def test_forced_silence_immune_to_decay(self):
        hb = Heartbeat(error_threshold=2, decay=5.0)
        hb.silence()
        for _ in range(10):
            assert not hb.beat()
        assert not hb.healthy
