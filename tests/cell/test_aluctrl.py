"""Unit tests for the ALU control loop."""

import numpy as np
import pytest

from repro.alu.nanobox import NanoBoxALU
from repro.cell.aluctrl import ALUControl, StepOutcome
from repro.cell.memory import CellMemory
from repro.cell.memword import MemoryWord
from repro.faults.mask import ExactFractionMask


def pending_word(iid, op=0b010, a=0x0F, b=0xFF):
    return MemoryWord(
        instruction_id=iid,
        opcode=op,
        operand1=a,
        operand2=b,
        data_valid=True,
        to_be_computed=True,
    )


def make_ctrl(n_words=8, mask_source=None):
    memory = CellMemory(n_words)
    alu = NanoBoxALU(scheme="tmr")
    if mask_source is None:
        ctrl = ALUControl(memory, alu)
    else:
        ctrl = ALUControl(memory, alu, mask_source)
    return memory, ctrl


class TestStep:
    def test_skips_empty_words(self):
        _, ctrl = make_ctrl()
        report = ctrl.step()
        assert report.outcome is StepOutcome.SKIPPED
        assert ctrl.computed_total == 0

    def test_computes_pending_word(self):
        memory, ctrl = make_ctrl()
        memory.write(0, pending_word(5))
        report = ctrl.step()
        assert report.outcome is StepOutcome.COMPUTED
        assert report.result_copies == (0x0F ^ 0xFF,) * 3
        stored = memory.read(0)
        assert stored.result == 0x0F ^ 0xFF
        assert not stored.to_be_computed
        assert stored.data_valid  # stays valid for shift-out

    def test_does_not_recompute(self):
        memory, ctrl = make_ctrl(n_words=1)
        memory.write(0, pending_word(5))
        ctrl.step()
        assert ctrl.step().outcome is StepOutcome.SKIPPED
        assert ctrl.computed_total == 1

    def test_pointer_wraps(self):
        memory, ctrl = make_ctrl(n_words=2)
        assert ctrl.pointer == 0
        ctrl.step()
        ctrl.step()
        assert ctrl.pointer == 0

    def test_rejects_corrupt_opcode(self):
        memory, ctrl = make_ctrl()
        bad = MemoryWord(
            instruction_id=1,
            opcode=0b011,  # not in the ISA
            operand1=1,
            operand2=2,
            data_valid=True,
            to_be_computed=True,
        )
        memory.write(0, bad)
        report = ctrl.step()
        assert report.outcome is StepOutcome.REJECTED
        assert not memory.read(0).to_be_computed  # dropped, loop not wedged

    def test_invalid_copy_count(self):
        memory = CellMemory(1)
        with pytest.raises(ValueError):
            ALUControl(memory, NanoBoxALU(), copies=2)


class TestSweepAndDrain:
    def test_sweep_computes_all(self):
        memory, ctrl = make_ctrl(n_words=8)
        for i in range(5):
            memory.write(i, pending_word(i))
        assert ctrl.sweep() == 5
        assert list(memory.pending_words()) == []

    def test_drain_picks_up_late_arrivals(self):
        memory, ctrl = make_ctrl(n_words=4)
        memory.write(0, pending_word(0))
        ctrl.sweep()
        # Salvaged work arrives mid-compute with the flag set.
        memory.write(3, pending_word(99, op=0b111, a=1, b=2))
        total = ctrl.drain()
        assert total >= 1
        assert memory.read(3).result == 3

    def test_drain_raises_when_stuck(self):
        memory, ctrl = make_ctrl(n_words=2)

        class StubbornMemory:
            pass

        # A word that is re-marked pending every sweep would wedge drain;
        # simulate by re-setting the flag from a hostile mask each sweep.
        memory.write(0, pending_word(0))
        original_sweep = ctrl.sweep

        def sabotaging_sweep():
            count = original_sweep()
            memory.write(0, pending_word(0))  # undo completion
            return count

        ctrl.sweep = sabotaging_sweep
        with pytest.raises(RuntimeError, match="pending work remains"):
            ctrl.drain(max_sweeps=3)


class TestLUTControlIntegration:
    """ALU control driven through the fault-prone LUT field voter
    (paper §7's control-logic-in-LUTs, wired end to end)."""

    def test_fault_free_voter_transparent(self):
        from repro.cell.lutctrl import LUTFieldVoter

        memory = CellMemory(4)
        ctrl = ALUControl(
            memory, NanoBoxALU(scheme="tmr"), field_voter=LUTFieldVoter("tmr")
        )
        memory.write(0, pending_word(1))
        assert ctrl.step().outcome is StepOutcome.COMPUTED
        assert ctrl.control_misreads == 0

    def test_control_fault_skips_real_work(self):
        from repro.cell.lutctrl import LUTFieldVoter

        voter = LUTFieldVoter("none")
        # Corrupt the to_be_computed voter's (1,1,1) entry every step:
        # pending words read as already-computed and are skipped.
        seg = voter.site_space.segment("to_be_computed_voter")
        mask = seg.inject(1 << 7)
        memory = CellMemory(2)
        ctrl = ALUControl(
            memory,
            NanoBoxALU(scheme="tmr"),
            field_voter=voter,
            control_mask_source=lambda: mask,
        )
        memory.write(0, pending_word(1))
        report = ctrl.step()
        assert report.outcome is StepOutcome.SKIPPED
        assert ctrl.control_misreads == 1
        assert memory.read(0).to_be_computed  # work silently stranded

    def test_tmr_control_tables_mask_single_fault(self):
        from repro.cell.lutctrl import LUTFieldVoter

        voter = LUTFieldVoter("tmr")
        seg = voter.site_space.segment("to_be_computed_voter")
        mask = seg.inject(1 << 7)  # only copy 0 of the entry
        memory = CellMemory(2)
        ctrl = ALUControl(
            memory,
            NanoBoxALU(scheme="tmr"),
            field_voter=voter,
            control_mask_source=lambda: mask,
        )
        memory.write(0, pending_word(1))
        assert ctrl.step().outcome is StepOutcome.COMPUTED
        assert ctrl.control_misreads == 0


class TestRedundantCopies:
    def test_disagreement_detected_under_faults(self):
        rng = np.random.default_rng(0)
        alu = NanoBoxALU(scheme="none")
        policy = ExactFractionMask(0.10)
        memory = CellMemory(32)
        ctrl = ALUControl(
            memory, alu, mask_source=lambda: policy.generate(alu.site_count, rng)
        )
        for i in range(32):
            memory.write(i, pending_word(i, op=0b111, a=i * 7 & 0xFF, b=0x33))
        ctrl.sweep()
        assert ctrl.disagreements > 0

    def test_memory_vote_masks_single_bad_copy(self):
        """Even if one of the three stored copies is wrong, the voted
        result read at shift-out is right."""
        memory, _ = make_ctrl()
        memory.write(0, pending_word(1))
        raw = memory.read_raw(0)
        raw = MemoryWord.store_results(raw, (0xF0, 0x0F ^ 0xFF, 0xF0))
        memory.write_raw(0, raw)
        assert MemoryWord.voted_result(memory.read_raw(0)) == 0xF0 | (
            (0x0F ^ 0xFF) & 0xF0
        ) | ((0x0F ^ 0xFF) & 0xF0)
        # Clearer: two copies say 0xF0 -> vote is 0xF0.
        raw = MemoryWord.store_results(raw, (0xF0, 0x00, 0xF0))
        assert MemoryWord.voted_result(raw) == 0xF0
