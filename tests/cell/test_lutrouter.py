"""Tests for the LUT-implemented router."""

import numpy as np
import pytest

from repro.cell.lutrouter import DIRECTION_CODES, LUTRouter, NIBBLE_BITS
from repro.cell.router import Direction, route_packet
from repro.faults.mask import ExactFractionMask


class TestGeometry:
    def test_site_counts(self):
        # 4 comparators x 256 + 3 decision x 16 = 1072 uncoded.
        assert LUTRouter("none").site_count == 1072
        assert LUTRouter("tmr").site_count == 3 * 1072

    def test_direction_codes_distinct(self):
        assert len(set(DIRECTION_CODES.values())) == len(DIRECTION_CODES)


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("scheme", ["none", "tmr", "hamming"])
    def test_matches_reference_rule_exhaustively(self, scheme):
        """Every (dest, cell) pair in a 4x4 ID space must route exactly
        like the architectural five-case rule."""
        router = LUTRouter(scheme)
        for dr in range(4):
            for dc in range(4):
                for cr in range(4):
                    for cc in range(4):
                        expected = route_packet(dr, dc, cr, cc).direction
                        got, valid = router.route(dr, dc, cr, cc)
                        assert valid
                        assert got is expected, (dr, dc, cr, cc)

    def test_id_range_enforced(self):
        with pytest.raises(ValueError):
            LUTRouter().route(16, 0, 0, 0)


class TestFaultBehaviour:
    def test_comparator_fault_misroutes(self):
        router = LUTRouter("none")
        # dest_col=2, cell_col=2 -> col comparators say equal; flip the
        # col_gt entry for that address and the packet heads LEFT.
        addr = 2 | (2 << NIBBLE_BITS)
        mask = router.site_space.segment("col_gt").inject(1 << addr)
        direction, valid = router.route(1, 2, 3, 2, fault_mask=mask)
        assert valid
        assert direction is Direction.LEFT  # should have been DOWN

    def test_decision_fault_can_invalidate(self):
        router = LUTRouter("none")
        # HERE encodes as 000; flipping decision bit 2's entry for the
        # all-equal comparator address yields code 100 = DOWN: a wrong
        # but valid route.  Flip bit 1 instead: code 010 = RIGHT.
        mask = router.site_space.segment("dec1").inject(1 << 0)
        direction, valid = router.route(1, 1, 1, 1, fault_mask=mask)
        assert valid
        assert direction is Direction.RIGHT

    def test_tmr_router_masks_single_fault(self):
        router = LUTRouter("tmr")
        addr = 2 | (2 << NIBBLE_BITS)
        mask = router.site_space.segment("col_gt").inject(1 << addr)
        direction, valid = router.route(1, 2, 3, 2, fault_mask=mask)
        assert valid
        assert direction is Direction.DOWN

    def test_misroute_rate_ordering(self):
        """Uncoded router tables must misroute more often than TMR ones
        at the same injected fraction."""
        rng_n = np.random.default_rng(1)
        rng_t = np.random.default_rng(1)
        rates = {}
        for scheme, rng in (("none", rng_n), ("tmr", rng_t)):
            router = LUTRouter(scheme)
            policy = ExactFractionMask(0.02)
            wrong = 0
            trials = 400
            for i in range(trials):
                dr, dc, cr, cc = (int(x) for x in rng.integers(0, 4, size=4))
                mask = policy.generate(router.site_count, rng)
                got, valid = router.route(dr, dc, cr, cc, fault_mask=mask)
                expected = route_packet(dr, dc, cr, cc).direction
                if not valid or got is not expected:
                    wrong += 1
            rates[scheme] = wrong / trials
        assert rates["tmr"] < rates["none"]
        assert rates["none"] > 0
