"""Unit tests for the LUT-implemented control logic extension."""

import itertools

import numpy as np
import pytest

from repro.cell.lutctrl import LUTFieldVoter, flag_voter_truth_table
from repro.cell.memword import MemoryWord


class TestFlagVoterTable:
    def test_majority_semantics(self):
        table = flag_voter_truth_table()
        for bits in itertools.product((0, 1), repeat=3):
            addr = bits[0] | (bits[1] << 1) | (bits[2] << 2)
            assert table.lookup(addr) == (1 if sum(bits) >= 2 else 0)


class TestGeometry:
    def test_tmr_sites(self):
        # Two triplicated 8-bit strings: 2 x 24.
        assert LUTFieldVoter("tmr").site_count == 48

    def test_uncoded_sites(self):
        assert LUTFieldVoter("none").site_count == 16


class TestVoting:
    def test_fault_free_votes(self):
        voter = LUTFieldVoter("tmr")
        assert voter.vote_data_valid((1, 1, 0)) == 1
        assert voter.vote_data_valid((0, 0, 1)) == 0
        assert voter.vote_to_be_computed((1, 0, 1)) == 1

    def test_classify_word(self):
        voter = LUTFieldVoter("tmr")
        word = MemoryWord(
            instruction_id=3, opcode=0b010, operand1=1, operand2=2,
            data_valid=True, to_be_computed=True,
        )
        assert voter.classify_word(word.pack()) == (True, True)
        done = word.completed(3)
        assert voter.classify_word(done.pack()) == (True, False)

    def test_classify_word_range(self):
        with pytest.raises(ValueError):
            LUTFieldVoter().classify_word(1 << 70)


class TestControlFaults:
    def test_uncoded_voter_fault_flips_verdict(self):
        voter = LUTFieldVoter("none")
        # data_valid LUT, address (1,1,1) = 7: flip that entry.
        seg = voter.site_space.segment("data_valid_voter")
        mask = seg.inject(1 << 7)
        assert voter.vote_data_valid((1, 1, 1), fault_mask=mask) == 0

    def test_tmr_voter_masks_single_fault(self):
        voter = LUTFieldVoter("tmr")
        seg = voter.site_space.segment("data_valid_voter")
        mask = seg.inject(1 << 7)  # only copy 0 of entry 7
        assert voter.vote_data_valid((1, 1, 1), fault_mask=mask) == 1

    def test_faulty_control_misclassifies_words(self):
        """The future-work effect: under heavy control-path faults, some
        pending words are misread and would be skipped or recomputed."""
        rng = np.random.default_rng(0)
        voter = LUTFieldVoter("none")
        word = MemoryWord(
            instruction_id=1, opcode=0b010, operand1=1, operand2=2,
            data_valid=True, to_be_computed=True,
        ).pack()
        wrong = 0
        trials = 200
        for _ in range(trials):
            mask = 0
            for site in rng.choice(voter.site_count, size=4, replace=False):
                mask |= 1 << int(site)
            if voter.classify_word(word, fault_mask=mask) != (True, True):
                wrong += 1
        assert wrong > 0
