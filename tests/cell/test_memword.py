"""Unit tests for the memory word codec (paper Figure 4)."""

import pytest

from repro.cell.memword import (
    DATA_VALID_OFFSET,
    MEMORY_WORD_BITS,
    MemoryWord,
    TO_BE_COMPUTED_OFFSET,
    majority_bit,
)


def sample_word(**overrides):
    fields = dict(
        instruction_id=0x1234,
        opcode=0b111,
        operand1=0xAB,
        operand2=0x0C,
        result=0xB7,
        data_valid=True,
        to_be_computed=True,
    )
    fields.update(overrides)
    return MemoryWord(**fields)


class TestLayout:
    def test_total_width(self):
        # 16 + 3 + 8 + 8 + 24 + 3 + 3 = 65 bits.
        assert MEMORY_WORD_BITS == 65

    def test_flag_offsets_distinct(self):
        assert DATA_VALID_OFFSET != TO_BE_COMPUTED_OFFSET
        assert TO_BE_COMPUTED_OFFSET == DATA_VALID_OFFSET + 3


class TestMajorityBit:
    @pytest.mark.parametrize(
        "bits,expected",
        [((0, 0, 0), 0), ((1, 0, 0), 0), ((1, 1, 0), 1), ((1, 1, 1), 1)],
    )
    def test_values(self, bits, expected):
        assert majority_bit(bits) == expected


class TestPackUnpack:
    def test_roundtrip(self):
        word = sample_word()
        assert MemoryWord.unpack(word.pack()) == word

    def test_roundtrip_all_flags(self):
        for dv in (False, True):
            for tbc in (False, True):
                word = sample_word(data_valid=dv, to_be_computed=tbc)
                assert MemoryWord.unpack(word.pack()) == word

    def test_field_validation(self):
        with pytest.raises(ValueError):
            sample_word(instruction_id=1 << 16)
        with pytest.raises(ValueError):
            sample_word(opcode=8)
        with pytest.raises(ValueError):
            sample_word(operand1=256)
        with pytest.raises(ValueError):
            sample_word(result=-1)

    def test_unpack_range(self):
        with pytest.raises(ValueError):
            MemoryWord.unpack(1 << MEMORY_WORD_BITS)

    def test_empty_word_is_invalid(self):
        word = MemoryWord.unpack(0)
        assert not word.data_valid
        assert not word.to_be_computed


class TestTriplicatedFlags:
    def test_single_flag_copy_flip_masked(self):
        raw = sample_word().pack()
        for offset in (DATA_VALID_OFFSET, TO_BE_COMPUTED_OFFSET):
            for copy in range(3):
                corrupted = raw ^ (1 << (offset + copy))
                word = MemoryWord.unpack(corrupted)
                assert word.data_valid
                assert word.to_be_computed

    def test_two_flag_copies_flip_changes_verdict(self):
        raw = sample_word().pack()
        corrupted = raw ^ (0b11 << DATA_VALID_OFFSET)
        assert not MemoryWord.unpack(corrupted).data_valid


class TestResultCopies:
    def test_three_copies_written(self):
        raw = sample_word(result=0x5C).pack()
        assert MemoryWord.result_copies(raw) == (0x5C, 0x5C, 0x5C)

    def test_voted_result_masks_one_bad_copy(self):
        raw = sample_word(result=0x5C).pack()
        raw = MemoryWord.store_results(raw, (0x5C, 0xFF, 0x5C))
        assert MemoryWord.voted_result(raw) == 0x5C

    def test_voted_result_is_bitwise(self):
        raw = sample_word().pack()
        raw = MemoryWord.store_results(raw, (0b1100, 0b1010, 0b1001))
        assert MemoryWord.voted_result(raw) == 0b1000

    def test_store_results_validation(self):
        raw = sample_word().pack()
        with pytest.raises(ValueError):
            MemoryWord.store_results(raw, (0, 0, 256))

    def test_store_results_preserves_other_fields(self):
        raw = sample_word().pack()
        raw = MemoryWord.store_results(raw, (1, 2, 3))
        word = MemoryWord.unpack(raw)
        assert word.instruction_id == 0x1234
        assert word.operand1 == 0xAB


class TestFlagHelpers:
    def test_clear_to_be_computed(self):
        raw = sample_word().pack()
        cleared = MemoryWord.clear_to_be_computed(raw)
        assert not MemoryWord.unpack(cleared).to_be_computed
        # All three copies must be cleared, not just the majority.
        for copy in range(3):
            assert (cleared >> (TO_BE_COMPUTED_OFFSET + copy)) & 1 == 0

    def test_set_to_be_computed(self):
        raw = sample_word(to_be_computed=False).pack()
        raw = MemoryWord.set_to_be_computed(raw)
        assert MemoryWord.unpack(raw).to_be_computed

    def test_completed(self):
        word = sample_word()
        done = word.completed(0x42)
        assert done.result == 0x42
        assert not done.to_be_computed
        assert done.instruction_id == word.instruction_id
