"""Tests for the fully-triplicated memory word codec."""

import numpy as np
import pytest

from repro.cell.memword import MemoryWord
from repro.cell.memword_full import (
    FULL_WORD_BITS,
    FullyTriplicatedWord,
    storage_overhead,
)


def sample(**overrides):
    fields = dict(
        instruction_id=0x4321, opcode=0b111, operand1=0x9C,
        operand2=0x0C, result=0xA8, data_valid=True, to_be_computed=True,
    )
    fields.update(overrides)
    return FullyTriplicatedWord(**fields)


class TestLayout:
    def test_width(self):
        assert FULL_WORD_BITS == 3 * 45 == 135

    def test_overhead(self):
        assert storage_overhead() == pytest.approx(135 / 65)


class TestPackUnpack:
    def test_roundtrip(self):
        word = sample()
        assert FullyTriplicatedWord.unpack(word.pack()) == word

    def test_field_validation(self):
        with pytest.raises(ValueError):
            sample(operand1=256)
        with pytest.raises(ValueError):
            sample(opcode=8)

    def test_unpack_range(self):
        with pytest.raises(ValueError):
            FullyTriplicatedWord.unpack(1 << FULL_WORD_BITS)

    def test_every_single_upset_masked(self):
        """The whole point: ANY single stored-bit flip anywhere in the
        word leaves every field intact -- including the operands the
        paper layout exposes."""
        word = sample()
        raw = word.pack()
        for bit in range(FULL_WORD_BITS):
            assert FullyTriplicatedWord.unpack(raw ^ (1 << bit)) == word

    def test_paper_layout_exposes_operands(self):
        """Contrast case: the paper layout has single bits that corrupt
        an operand."""
        paper = sample().to_paper_word()
        raw = paper.pack()
        exposed = sum(
            1
            for bit in range(65)
            if MemoryWord.unpack(raw ^ (1 << bit)).operand1 != paper.operand1
        )
        assert exposed == 8  # each operand1 bit is a single point of failure

    def test_double_upset_same_field_bit_defeats_vote(self):
        word = sample()
        width = FullyTriplicatedWord.copy_width()
        # Flip instruction_id bit 0 in copies 0 and 1.
        raw = word.pack() ^ 1 ^ (1 << width)
        decoded = FullyTriplicatedWord.unpack(raw)
        assert decoded.instruction_id == word.instruction_id ^ 1


class TestConversions:
    def test_paper_roundtrip(self):
        word = sample()
        assert FullyTriplicatedWord.from_paper_word(
            word.to_paper_word()
        ) == word


class TestUpsetResilienceComparison:
    def test_full_tmr_beats_paper_layout_per_bit(self):
        """At equal per-bit upset probability, the fully triplicated
        word corrupts its operand/ID fields far less often."""
        rng = np.random.default_rng(0)
        word = sample()
        paper_raw = word.to_paper_word().pack()
        full_raw = word.pack()
        p = 0.02
        trials = 1500
        paper_bad = full_bad = 0
        for _ in range(trials):
            paper_noise = 0
            for i in range(65):
                if rng.random() < p:
                    paper_noise |= 1 << i
            full_noise = 0
            for i in range(FULL_WORD_BITS):
                if rng.random() < p:
                    full_noise |= 1 << i
            decoded_paper = MemoryWord.unpack(paper_raw ^ paper_noise)
            decoded_full = FullyTriplicatedWord.unpack(full_raw ^ full_noise)
            if (decoded_paper.operand1, decoded_paper.instruction_id) != (
                word.operand1, word.instruction_id
            ):
                paper_bad += 1
            if (decoded_full.operand1, decoded_full.instruction_id) != (
                word.operand1, word.instruction_id
            ):
                full_bad += 1
        assert full_bad < paper_bad / 3
