"""Property-based tests for the cell layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.memword import (
    DATA_VALID_OFFSET,
    MEMORY_WORD_BITS,
    MemoryWord,
    TO_BE_COMPUTED_OFFSET,
)
from repro.cell.router import Direction, hop_count, route_packet
from repro.coding.bits import popcount

words = st.builds(
    MemoryWord,
    instruction_id=st.integers(min_value=0, max_value=0xFFFF),
    opcode=st.integers(min_value=0, max_value=7),
    operand1=st.integers(min_value=0, max_value=255),
    operand2=st.integers(min_value=0, max_value=255),
    result=st.integers(min_value=0, max_value=255),
    data_valid=st.booleans(),
    to_be_computed=st.booleans(),
)

coords = st.tuples(st.integers(min_value=0, max_value=15),
                   st.integers(min_value=0, max_value=15))


class TestMemoryWordProperties:
    @given(words)
    def test_pack_unpack_roundtrip(self, word):
        assert MemoryWord.unpack(word.pack()) == word

    @given(words)
    def test_packed_width(self, word):
        assert word.pack() >> MEMORY_WORD_BITS == 0

    @given(words, st.integers(min_value=0, max_value=MEMORY_WORD_BITS - 1))
    def test_single_upset_never_corrupts_protected_fields(self, word, bit):
        """Any single stored-bit flip leaves the triplicated flags and
        the voted result intact."""
        corrupted = word.pack() ^ (1 << bit)
        read = MemoryWord.unpack(corrupted)
        assert read.data_valid == word.data_valid
        assert read.to_be_computed == word.to_be_computed
        assert read.result == word.result

    @given(words, st.integers(min_value=0,
                              max_value=(1 << MEMORY_WORD_BITS) - 1))
    def test_unpack_total_on_any_corruption(self, word, noise):
        """unpack never raises, whatever the corruption pattern."""
        read = MemoryWord.unpack(word.pack() ^ noise)
        assert 0 <= read.result <= 255
        assert 0 <= read.opcode <= 7

    @given(words, st.tuples(st.integers(min_value=0, max_value=255),
                            st.integers(min_value=0, max_value=255),
                            st.integers(min_value=0, max_value=255)))
    def test_voted_result_is_bitwise_majority(self, word, results):
        raw = MemoryWord.store_results(word.pack(), results)
        a, b, c = results
        assert MemoryWord.voted_result(raw) == (a & b) | (b & c) | (a & c)

    @given(words)
    def test_clear_then_set_flag_roundtrip(self, word):
        raw = word.pack()
        cleared = MemoryWord.clear_to_be_computed(raw)
        assert not MemoryWord.unpack(cleared).to_be_computed
        restored = MemoryWord.set_to_be_computed(cleared)
        assert MemoryWord.unpack(restored).to_be_computed


class TestRoutingProperties:
    @given(coords, coords)
    def test_route_always_converges(self, dest, start):
        row, col = start
        for _ in range(64):
            decision = route_packet(dest[0], dest[1], row, col)
            if decision.keep:
                break
            row, col = decision.direction.step(row, col)
        assert (row, col) == dest

    @given(coords, coords)
    def test_each_hop_reduces_distance(self, dest, start):
        if dest == start:
            return
        decision = route_packet(dest[0], dest[1], start[0], start[1])
        nxt = decision.direction.step(*start)
        assert hop_count(dest[0], dest[1], *nxt) == hop_count(
            dest[0], dest[1], *start
        ) - 1

    @given(coords, coords)
    def test_keep_iff_at_destination(self, dest, cell):
        decision = route_packet(dest[0], dest[1], cell[0], cell[1])
        assert decision.keep == (dest == cell)

    @given(st.sampled_from(list(Direction)))
    def test_opposite_is_involution(self, direction):
        assert direction.opposite().opposite() is direction
