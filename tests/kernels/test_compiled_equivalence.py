"""Scalar = batched = compiled: the compiled tier's defining contract.

Mirrors ``tests/faults/test_batched_equivalence.py`` (the PR 2 pattern)
one tier down: for every Table 2 variant -- including the faulty-voter
and faulty-decoder ablation units -- and every mask policy, the three
backends must produce field-identical ``TrialResult`` streams from the
same ``(seed, workload, trial)``.  A skipping fallback would make these
tests vacuous, so the compiled runs also assert that a native provider
is actually live (the CI image always has at least a C compiler).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alu.variants import build_alu, variant_names
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import (
    BernoulliMask,
    BurstMask,
    ExactFractionMask,
    FixedCountMask,
)
from repro.faults.packing import pack_flags
from repro.kernels import build_compiled_unit, get_provider
from repro.perf.spec import ALUSpec
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads


@pytest.fixture(scope="module")
def workloads():
    return paper_workloads(gradient(4, 4))


@pytest.fixture(scope="module", autouse=True)
def require_provider():
    """These tests are meaningless if the compiled tier silently fell
    back; the environment guarantees at least a C compiler."""
    assert get_provider() is not None


def _assert_three_tier_identity(unit, policy, workloads, seed=2004):
    campaign = FaultCampaign(unit, policy, seed=seed)
    scalar = campaign.run_workload_suite(workloads, 1, backend="scalar")
    batched = campaign.run_workload_suite(workloads, 1, backend="batched")
    compiled = campaign.run_workload_suite(workloads, 1, backend="compiled")
    assert scalar.trials == batched.trials == compiled.trials


class TestTable2Variants:
    """All twelve plotted variants, every mask policy kind."""

    @pytest.mark.parametrize("variant", variant_names())
    @pytest.mark.parametrize(
        "policy",
        [
            ExactFractionMask(0.0),
            ExactFractionMask(0.03),
            ExactFractionMask(0.3),
            BernoulliMask(0.02),
            BurstMask(0.05, burst_length=3),
            FixedCountMask(5),
        ],
        ids=[
            "exact0", "exact3pct", "exact30pct", "bernoulli",
            "burst", "fixedcount",
        ],
    )
    def test_three_tier_identity(self, workloads, variant, policy):
        _assert_three_tier_identity(build_alu(variant), policy, workloads)


class TestAblationUnits:
    """The ablation grids ride the same seam; identity must hold there."""

    @pytest.mark.parametrize("voter", ["tmr", "none", "hamming", "cmos"])
    def test_faulty_voter_ablation(self, workloads, voter):
        unit = ALUSpec.space("tmr", voter).build()
        _assert_three_tier_identity(unit, ExactFractionMask(0.05), workloads)

    @pytest.mark.parametrize(
        "scheme", ["hamming", "hamming-fp", "hamming-sec", "hsiao"]
    )
    def test_faulty_decoder_ablation(self, workloads, scheme):
        """Decoder-semantics units: lowered where batched lowers,
        degraded (to identical results) where it does not."""
        unit = ALUSpec.simplex(scheme).build()
        _assert_three_tier_identity(unit, ExactFractionMask(0.05), workloads)

    @pytest.mark.parametrize("order", ["5mr", "7mr"])
    def test_redundancy_order_ablation(self, workloads, order):
        unit = ALUSpec.simplex(order).build()
        _assert_three_tier_identity(unit, ExactFractionMask(0.05), workloads)


class TestEngineProperties:
    """Hypothesis sweep at the engine layer: arbitrary batches and masks."""

    @given(
        variant=st.sampled_from(variant_names()),
        data=st.data(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_matches_scalar_compute(self, variant, data, seed):
        unit = build_alu(variant)
        engine = build_compiled_unit(unit)
        assert engine is not None
        n = data.draw(st.integers(min_value=1, max_value=8))
        rng = np.random.default_rng(seed)
        ops = rng.choice([0b000, 0b001, 0b010, 0b111], size=n)
        a = rng.integers(0, 256, size=n)
        b = rng.integers(0, 256, size=n)
        flags = (rng.random((n, unit.site_count)) < 0.02).astype(np.uint8)
        words = pack_flags(flags)
        got = engine.bundles_words(ops, a, b, words)
        for row in range(n):
            mask = int(
                sum(
                    int(bit) << i
                    for i, bit in enumerate(flags[row])
                )
            )
            ref = unit.compute(
                int(ops[row]), int(a[row]), int(b[row]), fault_mask=mask
            )
            assert int(got[row]) == ref.bundle

    def test_batch_validation_matches_batched_tier(self):
        """The compiled engine rejects what the batched engine rejects."""
        engine = build_compiled_unit(build_alu("alunn"))
        ok = np.zeros(2, dtype=np.int64)
        words = np.zeros((2, engine.n_words), dtype=np.uint64)
        with pytest.raises(ValueError, match="opcode out of 3-bit range"):
            engine.values_words(np.array([0, 8]), ok, ok, words)
        with pytest.raises(ValueError, match="invalid opcode"):
            engine.values_words(np.array([0, 0b011]), ok, ok, words)
        with pytest.raises(ValueError, match="operand a out of 8-bit"):
            engine.values_words(ok, np.array([0, 256]), ok, words)
        with pytest.raises(ValueError, match="operand b out of 8-bit"):
            engine.values_words(ok, ok, np.array([-1, 0]), words)
        with pytest.raises(ValueError, match="words shape"):
            engine.values_words(ok, ok, ok, words[:1])


class TestSuiteFusion:
    """The fused suite path must equal the per-trial paths exactly."""

    def test_fused_suite_equals_per_trial_runs(self, workloads):
        campaign = FaultCampaign(
            build_alu("aluncmos"), ExactFractionMask(0.04), seed=77
        )
        fused = campaign.run_workload_suite(workloads, 3, backend="compiled")
        reference = campaign.run_workload_suite(workloads, 3, backend="batched")
        assert fused.trials == reference.trials

    def test_fused_suite_is_rerun_stable(self, workloads):
        campaign = FaultCampaign(
            build_alu("alunn"), BernoulliMask(0.03), seed=5
        )
        first = campaign.run_workload_suite(workloads, 2, backend="compiled")
        second = campaign.run_workload_suite(workloads, 2, backend="compiled")
        assert first.trials == second.trials
