"""Provider probing and graceful degradation of the compiled tier.

The chain is numba -> generated C -> none; any failure is captured, not
raised.  ``auto`` degrades silently; an explicit ``compiled`` request
warns exactly once on stderr.  The probe verdict is cached per process,
so each test resets the cache around its monkeypatching (and the module
restores the real verdict afterwards for the rest of the suite).
"""

import numpy as np
import pytest

from repro.faults.campaign import FaultCampaign
from repro.faults.mask import ExactFractionMask
from repro.kernels import get_provider, provider_failures, reset_provider_cache
from repro.kernels import providers as providers_mod
from repro.kernels.cbuild import KernelBuildError
from repro.perf.spec import ALUSpec
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads


@pytest.fixture(autouse=True)
def fresh_probe():
    """Each test probes from scratch; the real verdict returns afterwards."""
    reset_provider_cache()
    yield
    reset_provider_cache()
    get_provider()  # re-warm for subsequent test modules


def _no_numba():
    raise ModuleNotFoundError("No module named 'numba'")


def _no_cc():
    raise KernelBuildError("no C compiler on PATH")


class TestProviderChain:
    def test_numba_absent_falls_through_to_cc(self, monkeypatch):
        monkeypatch.setattr(providers_mod, "_import_numba", _no_numba)
        provider = get_provider()
        assert provider is not None
        assert provider.name == "cc"
        assert any("numba" in f for f in provider_failures())

    def test_no_provider_at_all(self, monkeypatch):
        monkeypatch.setattr(providers_mod, "_import_numba", _no_numba)
        monkeypatch.setattr(providers_mod, "_build_cc", _no_cc)
        assert get_provider() is None
        failures = provider_failures()
        assert len(failures) == 2

    def test_probe_verdict_is_cached(self, monkeypatch):
        calls = []

        def counting_cc():
            calls.append(1)
            _no_cc()

        monkeypatch.setattr(providers_mod, "_import_numba", _no_numba)
        monkeypatch.setattr(providers_mod, "_build_cc", counting_cc)
        assert get_provider() is None
        assert get_provider() is None
        assert len(calls) == 1

    def test_broken_jit_is_captured_not_raised(self, monkeypatch):
        """A Numba import that *succeeds* but fails to compile still
        degrades cleanly to the next provider."""

        class BrokenNumba:
            @staticmethod
            def njit(fn):
                raise RuntimeError("LLVM exploded")

        monkeypatch.setattr(
            providers_mod, "_import_numba", lambda: BrokenNumba
        )
        provider = get_provider()
        assert provider is not None
        assert provider.name == "cc"
        assert any("LLVM exploded" in f for f in provider_failures())


class TestDegradedCampaigns:
    @pytest.fixture
    def dead_tier(self, monkeypatch):
        monkeypatch.setattr(providers_mod, "_import_numba", _no_numba)
        monkeypatch.setattr(providers_mod, "_build_cc", _no_cc)

    @pytest.fixture
    def campaign(self):
        return FaultCampaign(
            ALUSpec.variant("alunn").build(), ExactFractionMask(0.05), seed=3
        )

    def test_auto_degrades_silently(self, dead_tier, campaign, capsys):
        assert campaign.resolve_backend("auto") == "batched"
        assert capsys.readouterr().err == ""

    def test_explicit_compiled_warns_once(self, dead_tier, campaign, capsys):
        assert campaign.resolve_backend("compiled") == "batched"
        first = capsys.readouterr().err
        assert "compiled backend unavailable" in first
        assert campaign.resolve_backend("compiled") == "batched"
        assert capsys.readouterr().err == ""

    def test_degraded_results_identical(self, dead_tier, campaign):
        workloads = paper_workloads(gradient(4, 4))
        degraded = campaign.run_workload_suite(workloads, 1, backend="compiled")
        batched = campaign.run_workload_suite(workloads, 1, backend="batched")
        assert degraded.trials == batched.trials

    def test_unsupported_unit_with_live_provider_is_silent(self, capsys):
        """Provider is live but the unit has no lowered form: mirrors the
        batched tier's silent scalar fallback, no warning."""
        assert get_provider() is not None
        campaign = FaultCampaign(
            ALUSpec.simplex("hamming-sec").build(),
            ExactFractionMask(0.05),
            seed=3,
        )
        assert campaign.resolve_backend("compiled") == "batched"
        assert capsys.readouterr().err == ""


class TestWarmupAccounting:
    def test_compile_time_lands_on_jit_timer(self):
        """First-call JIT/compile cost is excluded from trial timers by
        recording it under kernel.jit_compile / kernel.warmup instead."""
        from repro.kernels import build_compiled_unit
        from repro.obs import Observer, observing

        obs = Observer()
        with observing(obs):
            reset_provider_cache()
            assert get_provider() is not None
            engine = build_compiled_unit(ALUSpec.variant("alunn").build())
            assert engine is not None
            snapshot = obs.metrics.snapshot()
        timers = set(snapshot["histograms"])
        assert "kernel.jit_compile" in timers
        assert "kernel.warmup" in timers
        # No campaign trial timer fired during compile/warmup.
        assert not any(n.startswith("campaign.trial") for n in timers)
        assert snapshot["counters"]["kernel.provider.cc"] >= 1
        assert snapshot["counters"]["kernel.engines_built"] >= 1
