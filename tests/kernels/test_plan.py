"""Plan lowering: which units compile, and what the flat form asserts.

A :class:`~repro.kernels.plan.KernelPlan` must exist for exactly the
units the batched tier vectorizes -- the compiled tier sits *below*
batched in the fallback chain, so its support set can never exceed it --
and the lowered arrays must describe the same site layout the scalar
unit exposes.
"""

import numpy as np
import pytest

from repro.alu.batched import build_batched_unit
from repro.alu.variants import build_alu, variant_names
from repro.kernels.plan import HEADER_LEN, H_SITES, build_plan
from repro.perf.spec import ALUSpec


class TestLowering:
    @pytest.mark.parametrize("variant", variant_names())
    def test_every_table2_variant_lowers(self, variant):
        unit = build_alu(variant)
        plan = build_plan(unit)
        assert plan is not None
        assert plan.site_count == unit.site_count
        assert plan.header.shape == (HEADER_LEN,)
        assert plan.header[H_SITES] == unit.site_count

    @pytest.mark.parametrize("scheme", ["hamming-sec", "hsiao"])
    def test_unsupported_decoder_semantics_return_none(self, scheme):
        """Units the batched tier rejects lower to None, never raise."""
        unit = ALUSpec.simplex(scheme).build()
        assert build_batched_unit(unit) is None
        assert build_plan(unit) is None

    def test_support_set_matches_batched_tier(self):
        """compiled support is exactly batched support on the spec grid."""
        specs = [ALUSpec.variant(v) for v in variant_names()]
        specs += [
            ALUSpec.simplex(s)
            for s in ("none", "tmr", "5mr", "7mr", "hamming",
                      "hamming-sec", "hamming-fp", "hsiao")
        ]
        specs += [
            ALUSpec.space("tmr", voter)
            for voter in ("tmr", "none", "hamming", "cmos")
        ]
        for spec in specs:
            unit = spec.build()
            batched = build_batched_unit(unit) is not None
            compiled = build_plan(unit) is not None
            assert compiled == batched, spec

    def test_plan_arrays_are_flat_and_typed(self):
        plan = build_plan(build_alu("alunn"))
        assert plan.header.dtype == np.int64
        assert plan.ipool.dtype == np.int64
        assert plan.bpool.dtype == np.uint8
        assert plan.header.ndim == plan.ipool.ndim == plan.bpool.ndim == 1
        assert plan.scratch_size >= 64  # netlist input window

    def test_plan_is_deterministic(self):
        a = build_plan(build_alu("aluss"))
        b = build_plan(build_alu("aluss"))
        np.testing.assert_array_equal(a.header, b.header)
        np.testing.assert_array_equal(a.ipool, b.ipool)
        np.testing.assert_array_equal(a.bpool, b.bpool)
