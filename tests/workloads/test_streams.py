"""Unit tests for the non-image streaming workloads."""

import pytest

from repro.alu.base import Opcode
from repro.alu.reference import reference_compute
from repro.workloads.streams import (
    checksum_stream,
    random_alu_stream,
    sliding_xor_stream,
)


class TestRandomStream:
    def test_length(self):
        assert len(random_alu_stream(40)) == 40

    def test_only_isa_opcodes(self):
        stream = random_alu_stream(100, seed=1)
        valid = {int(op) for op in Opcode}
        assert all(op in valid for op, *_ in stream.instructions)

    def test_expected_values_correct(self):
        for op, a, b, expected in random_alu_stream(50, seed=2).instructions:
            assert reference_compute(op, a, b).value == expected

    def test_deterministic(self):
        assert random_alu_stream(10, seed=5).instructions == \
            random_alu_stream(10, seed=5).instructions

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            random_alu_stream(0)


class TestChecksumStream:
    def test_running_accumulator(self):
        data = bytes([10, 20, 30])
        stream = checksum_stream(data)
        assert stream.instructions[0][:3] == (int(Opcode.ADD), 0, 10)
        assert stream.instructions[1][:3] == (int(Opcode.ADD), 10, 20)
        assert stream.instructions[2][:3] == (int(Opcode.ADD), 30, 30)

    def test_final_expected_is_checksum(self):
        data = bytes([100, 200, 56])
        stream = checksum_stream(data)
        assert stream.instructions[-1][3] == sum(data) & 0xFF

    def test_default_length(self):
        assert len(checksum_stream()) == 64


class TestSlidingXorStream:
    def test_pairs_neighbours(self):
        data = bytes([1, 2, 4])
        stream = sliding_xor_stream(data)
        assert [i[:3] for i in stream.instructions] == [
            (int(Opcode.XOR), 1, 2),
            (int(Opcode.XOR), 2, 4),
        ]

    def test_default_length(self):
        assert len(sliding_xor_stream(length=64)) == 64
