"""Unit tests for the image-workload compilers."""

import pytest

from repro.alu.base import Opcode
from repro.workloads.bitmap import Bitmap, gradient
from repro.workloads.imaging import (
    HUE_SHIFT_CONSTANT,
    REVERSE_VIDEO_MASK,
    ImageWorkload,
    brightness_boost,
    highlight_overlay,
    hue_shift,
    paper_workloads,
    reverse_video,
    threshold_mask,
)


class TestPaperConstants:
    def test_reverse_video_mask(self):
        assert REVERSE_VIDEO_MASK == 0b11111111

    def test_hue_shift_constant(self):
        assert HUE_SHIFT_CONSTANT == 0b00001100


class TestCompile:
    def test_one_instruction_per_pixel(self, paper_bitmap):
        instructions = reverse_video().compile(paper_bitmap)
        assert len(instructions) == 64

    def test_reverse_video_semantics(self, paper_bitmap):
        for op, a, b, expected in reverse_video().compile(paper_bitmap):
            assert op == int(Opcode.XOR)
            assert b == 0xFF
            assert expected == a ^ 0xFF

    def test_hue_shift_semantics(self, paper_bitmap):
        for op, a, b, expected in hue_shift().compile(paper_bitmap):
            assert op == int(Opcode.ADD)
            assert b == 0x0C
            assert expected == (a + 0x0C) & 0xFF

    def test_hue_shift_wraps(self):
        bmp = Bitmap(1, 1, [250])
        (_, _, _, expected), = hue_shift().compile(bmp)
        assert expected == (250 + 12) & 0xFF

    def test_instruction_order_is_pixel_order(self, paper_bitmap):
        instructions = reverse_video().compile(paper_bitmap)
        assert [a for _, a, _, _ in instructions] == paper_bitmap.pixels


class TestApply:
    def test_reverse_twice_is_identity(self, paper_bitmap):
        wl = reverse_video()
        assert wl.apply(wl.apply(paper_bitmap)) == paper_bitmap

    def test_apply_matches_compile_expectations(self, paper_bitmap):
        wl = hue_shift()
        out = wl.apply(paper_bitmap)
        expected = [e for _, _, _, e in wl.compile(paper_bitmap)]
        assert out.pixels == expected


class TestExtensionWorkloads:
    def test_brightness(self):
        bmp = Bitmap(1, 1, [0x10])
        assert brightness_boost(0x20).apply(bmp).pixels == [0x30]

    def test_threshold(self):
        bmp = Bitmap(1, 2, [0x81, 0x7F])
        assert threshold_mask(0x80).apply(bmp).pixels == [0x80, 0x00]

    def test_highlight(self):
        bmp = Bitmap(1, 1, [0x40])
        assert highlight_overlay(0x0F).apply(bmp).pixels == [0x4F]

    def test_operand_validation(self):
        with pytest.raises(ValueError):
            ImageWorkload("bad", Opcode.ADD, 256)


class TestPaperWorkloads:
    def test_both_streams_present(self, paper_bitmap):
        streams = paper_workloads(paper_bitmap)
        assert set(streams) == {"reverse_video", "hue_shift"}
        assert all(len(s) == 64 for s in streams.values())

    def test_expected_values_are_reference_results(self, paper_bitmap):
        from repro.alu.reference import reference_compute

        for stream in paper_workloads(paper_bitmap).values():
            for op, a, b, expected in stream:
                assert reference_compute(op, a, b).value == expected
