"""Tests for non-streaming (dataflow) workloads."""

import pytest

from repro.alu.base import Opcode
from repro.grid.simulator import GridSimulator
from repro.workloads.dataflow import (
    DataflowProgram,
    GridDataflowExecutor,
    Ref,
    checksum_tree_program,
    fir_filter_program,
)


class TestProgramBuilding:
    def test_add_returns_refs_in_order(self):
        program = DataflowProgram()
        r0 = program.add(Opcode.ADD, 1, 2)
        r1 = program.add(Opcode.XOR, r0, 4)
        assert (r0.node, r1.node) == (0, 1)
        assert len(program) == 2

    def test_forward_reference_rejected(self):
        program = DataflowProgram()
        with pytest.raises(ValueError, match="undefined node"):
            program.add(Opcode.ADD, Ref(3), 1)

    def test_literal_range_checked(self):
        program = DataflowProgram()
        with pytest.raises(ValueError):
            program.add(Opcode.ADD, 256, 0)


class TestWaves:
    def test_independent_nodes_share_wave(self):
        program = DataflowProgram()
        program.add(Opcode.ADD, 1, 2)
        program.add(Opcode.ADD, 3, 4)
        assert program.waves() == [[0, 1]]
        assert program.depth == 1

    def test_chain_depth(self):
        program = DataflowProgram()
        r = program.add(Opcode.ADD, 1, 1)
        for _ in range(4):
            r = program.add(Opcode.ADD, r, 1)
        assert program.depth == 5

    def test_diamond(self):
        program = DataflowProgram()
        top = program.add(Opcode.ADD, 1, 2)
        left = program.add(Opcode.XOR, top, 0x0F)
        right = program.add(Opcode.AND, top, 0xF0)
        program.add(Opcode.OR, left, right)
        assert program.waves() == [[0], [1, 2], [3]]


class TestReferenceResults:
    def test_chain_semantics(self):
        program = DataflowProgram()
        r0 = program.add(Opcode.ADD, 10, 20)       # 30
        r1 = program.add(Opcode.XOR, r0, 0xFF)     # 225
        program.add(Opcode.AND, r1, 0x0F)          # 1
        assert program.reference_results() == {0: 30, 1: 225, 2: 1}

    def test_wraparound(self):
        program = DataflowProgram()
        program.add(Opcode.ADD, 200, 100)
        assert program.reference_results()[0] == (300) & 0xFF


class TestBuiltPrograms:
    def test_checksum_tree_matches_xor_fold(self):
        data = [0x12, 0x34, 0x56, 0x78, 0x9A]
        program = checksum_tree_program(data)
        expected = 0
        for byte in data:
            expected ^= byte
        results = program.reference_results()
        final = results[len(program) - 1]
        assert final == expected

    def test_checksum_tree_log_depth(self):
        program = checksum_tree_program(list(range(16)))
        assert program.depth == 4

    def test_checksum_tree_single_byte(self):
        program = checksum_tree_program([0x5A])
        assert program.reference_results()[0] == 0x5A

    def test_checksum_tree_empty_rejected(self):
        with pytest.raises(ValueError):
            checksum_tree_program([])

    def test_fir_depth_equals_taps(self):
        program = fir_filter_program([1, 2, 3, 4, 5], taps=(1, 2, 3))
        # Chain: AND, (ADD, AND), (ADD, AND): depth 3 per output window.
        assert program.depth == 3
        assert len(program) == 3 * 5  # 3 windows x (3 AND + 2 ADD)


class TestGridExecution:
    def test_chain_executes_correctly(self):
        sim = GridSimulator(rows=2, cols=2, seed=0)
        executor = GridDataflowExecutor(sim)
        program = DataflowProgram()
        r0 = program.add(Opcode.ADD, 100, 50)
        r1 = program.add(Opcode.ADD, r0, 10)
        program.add(Opcode.XOR, r1, 0xFF)
        outcome = executor.run(program)
        assert outcome.complete
        assert outcome.results == program.reference_results()
        assert outcome.waves_executed == 3

    def test_checksum_tree_on_grid(self):
        sim = GridSimulator(rows=2, cols=2, seed=1)
        executor = GridDataflowExecutor(sim)
        data = [(i * 41 + 3) & 0xFF for i in range(12)]
        program = checksum_tree_program(data)
        outcome = executor.run(program)
        assert outcome.complete
        assert outcome.accuracy_against(program.reference_results()) == 1.0

    def test_execution_survives_cell_failure(self):
        sim = GridSimulator(
            rows=3, cols=3, seed=2, kill_schedule={60: [(1, 1)]}
        )
        executor = GridDataflowExecutor(sim)
        program = fir_filter_program([5, 9, 13, 17, 21, 25])
        outcome = executor.run(program, max_rounds=3)
        assert outcome.complete
        assert outcome.accuracy_against(program.reference_results()) == 1.0

    def test_missing_dependency_propagates(self):
        """If a wave's result is unrecoverable, dependents are skipped
        and reported rather than computed with garbage."""

        class LossySimulator:
            def run_instructions(self, instructions, max_rounds=3):
                from repro.grid.control import JobResult, PhaseStats

                results = {
                    iid: ((a + b) & 0xFF)
                    for iid, op, a, b in instructions
                    if iid != 0  # node 0 never returns
                }
                return JobResult(
                    results=results,
                    submitted=len(instructions),
                    rounds=1,
                    cycles=PhaseStats(),
                )

        executor = GridDataflowExecutor(LossySimulator())
        program = DataflowProgram()
        r0 = program.add(Opcode.ADD, 1, 1)       # lost
        r1 = program.add(Opcode.ADD, 2, 2)       # fine
        program.add(Opcode.ADD, r0, 1)           # depends on the lost node
        program.add(Opcode.ADD, r1, 1)           # unaffected
        outcome = executor.run(program)
        assert not outcome.complete
        assert set(outcome.missing) == {0, 2}
        assert outcome.results[3] == 5
