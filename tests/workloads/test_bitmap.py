"""Unit tests for the bitmap container and generators."""

import pytest

from repro.workloads.bitmap import Bitmap, checkerboard, gradient, random_bitmap


class TestConstruction:
    def test_shape_and_pixels(self):
        bmp = Bitmap(2, 3, [1, 2, 3, 4, 5, 6])
        assert (bmp.width, bmp.height, bmp.pixel_count) == (2, 3, 6)
        assert bmp.pixels == [1, 2, 3, 4, 5, 6]
        assert len(bmp) == 6

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="expected 6 pixels"):
            Bitmap(2, 3, [1, 2, 3])

    def test_pixel_range(self):
        with pytest.raises(ValueError):
            Bitmap(1, 1, [256])
        with pytest.raises(ValueError):
            Bitmap(1, 1, [-1])

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Bitmap(0, 3, [])

    def test_get_row_major(self):
        bmp = Bitmap(3, 2, [0, 1, 2, 3, 4, 5])
        assert bmp.get(0, 0) == 0
        assert bmp.get(2, 0) == 2
        assert bmp.get(0, 1) == 3

    def test_get_bounds(self):
        bmp = Bitmap(2, 2, [0] * 4)
        with pytest.raises(IndexError):
            bmp.get(2, 0)

    def test_pixels_returns_copy(self):
        bmp = Bitmap(2, 1, [1, 2])
        bmp.pixels.append(99)
        assert bmp.pixels == [1, 2]


class TestTransforms:
    def test_map_pixels(self):
        bmp = Bitmap(2, 1, [1, 2])
        assert bmp.map_pixels(lambda p: p + 1).pixels == [2, 3]

    def test_map_pixels_wraps(self):
        bmp = Bitmap(1, 1, [255])
        assert bmp.map_pixels(lambda p: p + 1).pixels == [0]

    def test_with_pixels(self):
        bmp = Bitmap(2, 1, [1, 2])
        assert bmp.with_pixels([9, 8]).pixels == [9, 8]

    def test_difference_count(self):
        a = Bitmap(2, 2, [1, 2, 3, 4])
        b = Bitmap(2, 2, [1, 9, 3, 9])
        assert a.difference_count(b) == 2
        assert a.difference_count(a) == 0

    def test_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            Bitmap(1, 1, [0]).difference_count(Bitmap(1, 2, [0, 0]))


class TestPGM:
    def test_roundtrip(self):
        bmp = gradient(4, 3)
        assert Bitmap.from_pgm(bmp.to_pgm()) == bmp

    def test_comments_ignored(self):
        text = "P2\n# a comment\n2 1\n255\n10 20\n"
        assert Bitmap.from_pgm(text).pixels == [10, 20]

    def test_maxval_rescaled(self):
        text = "P2\n2 1\n15\n15 0\n"
        assert Bitmap.from_pgm(text).pixels == [255, 0]

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="P2"):
            Bitmap.from_pgm("P5\n1 1\n255\n0\n")

    def test_truncated(self):
        with pytest.raises(ValueError):
            Bitmap.from_pgm("P2\n2 1\n")


class TestGenerators:
    def test_gradient_default_is_paper_size(self):
        bmp = gradient()
        assert bmp.pixel_count == 64

    def test_gradient_monotone_on_diagonal(self):
        bmp = gradient(8, 8)
        diag = [bmp.get(i, i) for i in range(8)]
        assert diag == sorted(diag)

    def test_checkerboard_alternates(self):
        bmp = checkerboard(4, 4, low=0, high=255)
        assert bmp.get(0, 0) == 0
        assert bmp.get(1, 0) == 255
        assert bmp.get(0, 1) == 255

    def test_checkerboard_range_check(self):
        with pytest.raises(ValueError):
            checkerboard(2, 2, low=-1)

    def test_random_deterministic(self):
        assert random_bitmap(seed=3) == random_bitmap(seed=3)
        assert random_bitmap(seed=3) != random_bitmap(seed=4)

    def test_equality_and_hash(self):
        a = gradient(4, 4)
        b = gradient(4, 4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != checkerboard(4, 4)
