"""Tests for the benchmark harness and its artifact schema.

The golden-file test pins the exact ``BENCH_*.json`` shape: if an edit
changes the schema, the golden diff forces a deliberate
``BENCH_SCHEMA_VERSION`` bump instead of a silent drift that would break
committed baselines.
"""

import json
from pathlib import Path

import pytest

from repro.obs.bench import (
    ARTIFACT_REQUIRED_KEYS,
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchRun,
    artifact_name,
    build_artifact,
    discover_benchmarks,
    load_artifact,
    repo_root,
    write_artifact,
)

GOLDEN = Path(__file__).parent / "golden" / "BENCH_golden.json"

#: A canned pytest-benchmark report: two timers forming a recognised
#: scalar/batched speedup twin, with raw per-round data.
CANNED_REPORT = {
    "version": "5.2.3",
    "benchmarks": [
        {
            "name": "test_bench_suite_scalar",
            "stats": {"data": [0.4, 0.6]},
        },
        {
            "name": "test_bench_suite_batched",
            "stats": {"data": [0.1, 0.1]},
        },
    ],
}

#: Fixed provenance so the golden artifact is byte-stable everywhere.
CANNED_PROVENANCE = {
    "git_sha": "0" * 40,
    "git_dirty": False,
    "python": "3.x",
    "platform": "test",
    "packages": {"repro": "0.0", "numpy": "0.0"},
    "machine": {"fingerprint": "f" * 12, "machine": "test", "cpu_count": 1},
    "seed": 2004,
    "config": {"script": "bench_perf_campaign.py", "smoke": True},
    "config_hash": "c" * 16,
}


def canned_artifact():
    """A fully deterministic artifact (injected report + provenance)."""
    return build_artifact(
        Path("benchmarks/bench_perf_campaign.py"),
        exit_code=0,
        wall_clock=2.0,
        bench_report=CANNED_REPORT,
        smoke=True,
        seed=2004,
        provenance=CANNED_PROVENANCE,
    )


class TestDiscovery:
    def test_discovers_every_script(self):
        scripts = discover_benchmarks()
        assert len(scripts) >= 30
        assert all(s.name.startswith("bench_") for s in scripts)

    def test_filter_matches_bare_name_stem_and_filename(self):
        for glob in ("perf_campaign", "bench_perf_campaign",
                     "bench_perf_campaign.py", "perf_*"):
            matched = discover_benchmarks(filter_glob=glob)
            assert any(s.stem == "bench_perf_campaign" for s in matched), glob

    def test_filter_can_match_nothing(self):
        assert discover_benchmarks(filter_glob="no_such_bench") == []

    def test_artifact_name(self):
        assert (
            artifact_name(Path("benchmarks/bench_perf_campaign.py"))
            == "BENCH_perf_campaign.json"
        )


class TestBuildArtifact:
    def test_required_keys_and_schema_stamp(self):
        artifact = canned_artifact()
        for key in ARTIFACT_REQUIRED_KEYS:
            assert key in artifact, key
        assert artifact["schema"] == BENCH_SCHEMA
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["status"] == "passed"

    def test_timers_carry_quantiles_and_throughput(self):
        timers = canned_artifact()["timers"]
        scalar = timers["bench.test_bench_suite_scalar"]
        assert scalar["count"] == 2
        assert scalar["mean"] == pytest.approx(0.5)
        assert scalar["min"] == 0.4 and scalar["max"] == 0.6
        assert scalar["p50"] <= scalar["p95"]
        assert scalar["ops"] == pytest.approx(2 / 1.0)

    def test_speedup_twins_are_detected(self):
        speedups = canned_artifact()["speedups"]
        label = "bench.test_bench_suite_scalar vs bench.test_bench_suite_batched"
        assert speedups[label] == pytest.approx(5.0)

    def test_phases_account_for_harness_overhead(self):
        phases = canned_artifact()["phases"]
        assert phases["run_s"] == 2.0
        assert phases["measured_s"] == pytest.approx(1.2)
        assert phases["harness_overhead_s"] == pytest.approx(0.8)

    def test_failed_run_without_report(self):
        artifact = build_artifact(
            Path("benchmarks/bench_perf_campaign.py"),
            exit_code=1,
            wall_clock=0.5,
            bench_report=None,
            provenance=CANNED_PROVENANCE,
        )
        assert artifact["status"] == "failed"
        assert artifact["tests"]["benchmarks"] == 0
        assert artifact["speedups"] == {}

    def test_artifact_is_json_safe(self):
        json.dumps(canned_artifact())


class TestGoldenSchema:
    def test_artifact_matches_golden_file(self):
        """Byte-level schema pin: regenerate deliberately via

        ``python -c "from tests.obs.test_bench_harness import *; \\
        GOLDEN.write_text(json.dumps(canned_artifact(), indent=2, \\
        sort_keys=True) + '\\n')"``

        and bump ``BENCH_SCHEMA_VERSION`` if the shape changed.
        """
        golden = json.loads(GOLDEN.read_text())
        assert canned_artifact() == golden

    def test_golden_carries_a_full_provenance_block(self):
        golden = json.loads(GOLDEN.read_text())
        from repro.obs.provenance import PROVENANCE_KEYS

        for key in PROVENANCE_KEYS:
            assert key in golden["provenance"], key


class TestWriteAndLoad:
    def roundtrip(self, tmp_path):
        run = BenchRun(
            script=Path("benchmarks/bench_perf_campaign.py"),
            artifact=canned_artifact(),
        )
        return write_artifact(run, tmp_path)

    def test_write_then_load(self, tmp_path):
        path = self.roundtrip(tmp_path)
        assert path.name == "BENCH_perf_campaign.json"
        assert load_artifact(path) == canned_artifact()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="not a repro.bench"):
            load_artifact(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        artifact = canned_artifact()
        artifact["schema_version"] = 999
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact))
        with pytest.raises(ValueError, match="schema_version"):
            load_artifact(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        artifact = canned_artifact()
        del artifact["provenance"]
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(artifact))
        with pytest.raises(ValueError, match="missing required keys"):
            load_artifact(path)


class TestRepoRoot:
    def test_repo_root_contains_benchmarks(self):
        assert (repo_root() / "benchmarks").is_dir()
