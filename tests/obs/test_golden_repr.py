"""Golden reprs for the result/stats dataclasses, and their docs.

The per-layer counter dataclasses (``TrialResult``, ``DeliveryStats``,
``JobResult``, ``ExecutorStats``) are part of the observable API: their
reprs land in logs and their fields are documented in
``docs/ARCHITECTURE.md``'s Observability section.  Pinning the exact
repr makes field additions deliberate -- adding one must update this
golden, and the docs-coverage check below forces the new field to be
documented in the same commit.
"""

import dataclasses
import os

from repro.faults.campaign import TrialResult
from repro.grid.control import DeliveryStats, JobResult, PhaseStats
from repro.perf.executor import ExecutorStats

DOCS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "ARCHITECTURE.md"
)


class TestGoldenReprs:
    def test_trial_result(self):
        assert repr(TrialResult(total=64, correct=60, injected_faults=7)) == (
            "TrialResult(total=64, correct=60, injected_faults=7)"
        )

    def test_phase_stats(self):
        assert repr(PhaseStats()) == (
            "PhaseStats(shift_in=0, compute=0, shift_out=0)"
        )

    def test_delivery_stats(self):
        assert repr(DeliveryStats()) == (
            "DeliveryStats(enqueued=0, undeliverable=0, retransmissions=0, "
            "duplicates=0, spurious_results=0, timed_out=0, "
            "corrupt_rejected=0, link_dropped=0, aborted_phases=0, shed=0)"
        )

    def test_executor_stats(self):
        assert repr(ExecutorStats()) == (
            "ExecutorStats(chunks=0, retries=0, pool_rebuilds=0)"
        )

    def test_job_result(self):
        result = JobResult(
            results={}, submitted=0, rounds=0, cycles=PhaseStats()
        )
        assert repr(result) == (
            "JobResult(results={}, submitted=0, rounds=0, "
            "cycles=PhaseStats(shift_in=0, compute=0, shift_out=0), "
            "unassigned=[], missing=[], "
            "delivery=DeliveryStats(enqueued=0, undeliverable=0, "
            "retransmissions=0, duplicates=0, spurious_results=0, "
            "timed_out=0, corrupt_rejected=0, link_dropped=0, "
            "aborted_phases=0, shed=0))"
        )


class TestFieldsAreDocumented:
    """Every counter field must appear in the Observability docs section."""

    def _observability_section(self):
        with open(DOCS_PATH) as handle:
            text = handle.read()
        assert "## Observability" in text, (
            "docs/ARCHITECTURE.md must keep its Observability section"
        )
        section = text.split("## Observability", 1)[1]
        # Stop at the next same-level heading, if any.
        return section.split("\n## ", 1)[0]

    def test_every_field_documented(self):
        section = self._observability_section()
        for cls in (TrialResult, PhaseStats, DeliveryStats, JobResult,
                    ExecutorStats):
            for field in dataclasses.fields(cls):
                assert f"`{field.name}`" in section, (
                    f"{cls.__name__}.{field.name} is undocumented in "
                    "docs/ARCHITECTURE.md's Observability section"
                )
