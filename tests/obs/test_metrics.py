"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry, NullMetricsRegistry


class FakeClock:
    """Deterministic monotonic clock for timer tests."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step
        self.calls = 0

    def __call__(self):
        value = self.now
        self.now += self.step
        self.calls += 1
        return value


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a").value == 5

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert not gauge.assigned
        gauge.set(2.0)
        gauge.set(7.5)
        assert gauge.value == 7.5
        assert gauge.assigned


class TestHistogram:
    def test_accounting(self):
        histogram = MetricsRegistry().histogram("h")
        for v in (3.0, 1.0, 2.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0
        assert histogram.samples == (1.0, 2.0, 3.0)

    def test_quantile_bounds_and_errors(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(0.5)  # empty
        histogram.observe(1.0)
        histogram.observe(9.0)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 9.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_thinning_keeps_exact_totals(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", max_samples=8)
        for v in range(100):
            histogram.observe(float(v))
        assert histogram.count == 100
        assert histogram.total == sum(range(100))
        assert histogram.min == 0.0
        assert histogram.max == 99.0
        assert len(histogram.samples) <= 8


class TestTimers:
    def test_timer_uses_injected_clock(self):
        clock = FakeClock(step=2.5)
        registry = MetricsRegistry(clock=clock)
        with registry.time("t"):
            pass
        assert registry.histogram("t").samples == (2.5,)
        assert clock.calls == 2

    def test_timer_records_on_exception(self):
        registry = MetricsRegistry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with registry.time("t"):
                raise RuntimeError("boom")
        assert registry.histogram("t").count == 1


class TestSnapshotMerge:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        with registry.time("t"):
            pass
        parsed = json.loads(registry.to_json())
        assert parsed["counters"] == {"c": 3}
        assert parsed["gauges"] == {"g": 1.5}
        assert parsed["histograms"]["t"]["count"] == 1

    def test_merge_adds_counters_and_concats_histograms(self):
        a = MetricsRegistry(clock=FakeClock())
        b = MetricsRegistry(clock=FakeClock(step=3.0))
        a.counter("c").inc(2)
        b.counter("c").inc(5)
        b.counter("only_b").inc(1)
        with a.time("t"):
            pass
        with b.time("t"):
            pass
        a.merge(b)
        assert a.counter("c").value == 7
        assert a.counter("only_b").value == 1
        assert a.histogram("t").count == 2
        assert a.histogram("t").samples == (1.0, 3.0)
        assert a.histogram("t").min == 1.0
        assert a.histogram("t").max == 3.0

    def test_merge_gauge_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b)
        assert a.gauge("g").value == 9.0

    def test_unassigned_gauges_not_exported(self):
        registry = MetricsRegistry()
        registry.gauge("g")  # never set
        assert registry.snapshot()["gauges"] == {}


class TestNullRegistry:
    def test_everything_is_a_shared_noop(self):
        null = NullMetricsRegistry()
        assert not null.enabled
        null.counter("a").inc(10)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(2.0)
        with null.time("t"):
            pass
        assert len(null) == 0
        assert null.counter("a") is null.counter("b")
        assert null.time("x") is null.time("y")

    def test_clock_never_called(self):
        null = NullMetricsRegistry()
        # The null timer must not read the (booby-trapped) clock.
        with null.time("t"):
            pass
        with pytest.raises(AssertionError):
            null.clock()
