"""Tests for the ASCII observability report and observer context."""

from repro.obs import (
    NULL_OBSERVER,
    Observer,
    get_observer,
    lifecycle_timeline,
    observing,
    report_metrics,
)
from repro.obs.report import checkpoint_quarantine_summary


class SteppingClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestObserverContext:
    def test_default_is_null(self):
        assert get_observer() is NULL_OBSERVER
        assert not NULL_OBSERVER.enabled

    def test_observing_installs_and_restores(self):
        obs = Observer()
        assert obs.enabled
        with observing(obs):
            assert get_observer() is obs
        assert get_observer() is NULL_OBSERVER

    def test_observing_restores_on_exception(self):
        obs = Observer()
        try:
            with observing(obs):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_observer() is NULL_OBSERVER

    def test_nested_observers(self):
        outer, inner = Observer(), Observer()
        with observing(outer):
            with observing(inner):
                assert get_observer() is inner
            assert get_observer() is outer

    def test_shared_clock_constructor(self):
        clock = SteppingClock()
        obs = Observer(clock=clock)
        with obs.metrics.time("t"):
            pass
        obs.trace.emit("e")
        assert obs.metrics.histogram("t").count == 1
        assert obs.trace.events[0].t == 3.0  # two timer reads, then emit


class TestReportMetrics:
    def _observer_with_data(self):
        obs = Observer(clock=SteppingClock())
        obs.metrics.counter("control.jobs").inc(3)
        obs.metrics.gauge("grid.availability").set(0.75)
        with obs.metrics.time("campaign.trial"):
            pass
        obs.trace.emit(
            "cell_quarantined", source="watchdog", cell=(1, 2), cycle=40
        )
        obs.trace.emit(
            "probe_result",
            source="watchdog",
            cell=(1, 2),
            cycle=55,
            passed=True,
            outcome="active",
        )
        obs.trace.emit(
            "cell_readmitted", source="watchdog", cell=(1, 2), cycle=55
        )
        return obs

    def test_report_sections(self):
        text = report_metrics(self._observer_with_data())
        assert "Top timers" in text
        assert "campaign.trial" in text
        assert "control.jobs" in text
        assert "grid.availability" in text
        assert "Cell lifecycle timeline" in text
        assert "3 event(s) retained" in text

    def test_timeline_orders_cell_events(self):
        timeline = lifecycle_timeline(self._observer_with_data().trace)
        assert timeline == (
            "cell (1, 2): quarantined@40 -> probe pass->active@55 "
            "-> readmitted@55"
        )

    def test_empty_observer_renders_placeholders(self):
        text = report_metrics(Observer())
        assert "(no timers recorded)" in text
        assert "(no counters recorded)" in text
        assert "(no lifecycle events traced)" in text
        assert "Gauges" not in text
        assert "Checkpoint quarantine" not in text


class TestCheckpointQuarantineSection:
    def _observer_with_corrupt_events(self):
        obs = Observer(clock=SteppingClock())
        obs.trace.emit(
            "checkpoint_corrupt", source="checkpoint", chunk=2,
            reason="payload integrity check failed",
            quarantined="chunk_00002.json.corrupt",
        )
        obs.trace.emit(
            "checkpoint_corrupt", source="checkpoint", chunk=5,
            reason="undecodable record", quarantined="chunk_00005.json.corrupt",
        )
        return obs

    def test_clean_trace_has_no_summary(self):
        assert checkpoint_quarantine_summary(Observer().trace) is None

    def test_summary_names_chunk_reason_and_file(self):
        summary = checkpoint_quarantine_summary(
            self._observer_with_corrupt_events().trace
        )
        assert summary.startswith("2 record(s) quarantined (*.corrupt):")
        assert (
            "chunk 2: payload integrity check failed "
            "-> chunk_00002.json.corrupt" in summary
        )
        assert "chunk 5: undecodable record" in summary

    def test_report_gains_section_only_when_quarantined(self):
        text = report_metrics(self._observer_with_corrupt_events())
        assert "Checkpoint quarantine" in text
        assert "2 record(s) quarantined" in text

    def test_real_store_corruption_reaches_the_report(self, tmp_path):
        """End to end: a bit-flipped checkpoint record quarantined by the
        store must show up, with its reason, in ``--obs-report`` text."""
        import json

        from repro.perf.checkpoint import CheckpointStore

        obs = Observer()
        with observing(obs):
            store = CheckpointStore(tmp_path / "ck", "cafe0123")
            store.save(0, {"value": 42})
            path = store.path_for(0)
            record = json.loads(path.read_text())
            record["payload"]["value"] = 43
            path.write_text(json.dumps(record))
            assert store.load(0) == (None, False)
        text = report_metrics(obs)
        assert "Checkpoint quarantine" in text
        assert "chunk 0:" in text
        assert ".corrupt" in text


class TestNestedObservingRouting:
    """Instrumented code must always reach the *innermost* observer,
    and each level's instruments must stay isolated."""

    def test_three_levels_restore_in_lifo_order(self):
        a, b, c = Observer(), Observer(), Observer()
        with observing(a):
            with observing(b):
                with observing(c):
                    assert get_observer() is c
                assert get_observer() is b
            assert get_observer() is a
        assert get_observer() is NULL_OBSERVER

    def test_instrumentation_routes_to_innermost_only(self):
        outer, inner = Observer(), Observer()
        with observing(outer):
            get_observer().metrics.counter("hits").inc()
            with observing(inner):
                get_observer().metrics.counter("hits").inc(10)
                get_observer().trace.emit("inner_event")
            get_observer().metrics.counter("hits").inc()
        assert outer.metrics.counter("hits").value == 2
        assert inner.metrics.counter("hits").value == 10
        assert [e.kind for e in inner.trace.events] == ["inner_event"]
        assert len(outer.trace.events) == 0

    def test_reentering_the_same_observer_accumulates(self):
        obs = Observer()
        with observing(obs):
            get_observer().metrics.counter("n").inc()
            with observing(obs):
                get_observer().metrics.counter("n").inc()
            assert get_observer() is obs
        assert obs.metrics.counter("n").value == 2
        assert get_observer() is NULL_OBSERVER

    def test_inner_exception_still_restores_outer(self):
        outer, inner = Observer(), Observer()
        with observing(outer):
            try:
                with observing(inner):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert get_observer() is outer
        assert get_observer() is NULL_OBSERVER
