"""Tests for the Chrome-trace-event (Perfetto) exporter."""

import json

import pytest

from repro.obs import TraceLog, to_chrome_trace, write_chrome_trace
from repro.obs.chrome import MAIN_PID


class SteppingClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_log():
    return TraceLog(clock=SteppingClock())


VALID_PHASES = {"X", "i", "B", "M"}


class TestDocumentShape:
    def test_document_is_a_trace_event_array(self):
        log = make_log()
        log.emit("trial_start", source="campaign")
        log.emit("trial_end", source="campaign")
        log.emit("cell_disabled", source="watchdog", cell=(1, 2))
        document = to_chrome_trace(log)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in VALID_PHASES
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)

    def test_document_is_json_serialisable(self):
        log = make_log()
        log.emit("x", source="s", cell=(0, 0), payload=[1, 2])
        json.dumps(to_chrome_trace(log))

    def test_empty_log_exports_empty_array(self):
        assert to_chrome_trace(make_log())["traceEvents"] == []


class TestDurationPairing:
    def test_start_end_pair_becomes_complete_event(self):
        log = make_log()
        log.emit("job_start", source="control", job=7)   # t=1
        log.emit("job_end", source="control", rounds=2)  # t=2
        events = to_chrome_trace(log)["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "job"
        assert span["ts"] == pytest.approx(1.0 * 1e6)  # microseconds
        assert span["dur"] == pytest.approx(1.0 * 1e6)
        # Args merge the start and end payloads.
        assert span["args"]["job"] == 7
        assert span["args"]["rounds"] == 2

    def test_nested_spans_pair_lifo(self):
        log = make_log()
        log.emit("phase_start", source="s", which="outer")  # t=1
        log.emit("phase_start", source="s", which="inner")  # t=2
        log.emit("phase_end", source="s")                   # t=3 -> inner
        log.emit("phase_end", source="s")                   # t=4 -> outer
        spans = [
            e for e in to_chrome_trace(log)["traceEvents"] if e["ph"] == "X"
        ]
        assert [(s["args"]["which"], s["dur"]) for s in spans] == [
            ("inner", pytest.approx(1e6)),
            ("outer", pytest.approx(3e6)),
        ]

    def test_unmatched_end_degrades_to_instant(self):
        log = make_log()
        log.emit("trial_end", source="campaign")
        events = to_chrome_trace(log)["traceEvents"]
        assert [e["ph"] for e in events if e["ph"] != "M"] == ["i"]

    def test_unmatched_start_renders_as_begin(self):
        log = make_log()
        log.emit("job_start", source="control")
        events = to_chrome_trace(log)["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"]
        assert len(begins) == 1 and begins[0]["name"] == "job"

    def test_other_kinds_become_thread_instants(self):
        log = make_log()
        log.emit("retry", source="fabric", packet=3)
        instants = [
            e for e in to_chrome_trace(log)["traceEvents"] if e["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert instants[0]["args"]["packet"] == 3


class TestTrackRouting:
    def test_sources_become_named_threads(self):
        log = make_log()
        log.emit("a", source="campaign")
        log.emit("b", source="watchdog")
        events = to_chrome_trace(log)["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"campaign", "watchdog"} <= thread_names
        tids = {e["tid"] for e in events if e["ph"] == "i"}
        assert len(tids) == 2

    def test_cell_events_get_per_cell_tracks(self):
        log = make_log()
        log.emit("cell_quarantined", source="watchdog", cell=(0, 1))
        log.emit("cell_readmitted", source="watchdog", cell=(2, 3))
        log.emit("cell_quarantined", source="watchdog", cell=(0, 1))
        events = to_chrome_trace(log)["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"cell (0, 1)", "cell (2, 3)"} <= thread_names
        # Both (0, 1) events land on the same track.
        cell_tids = [
            e["tid"]
            for e in events
            if e["ph"] == "i" and e["args"].get("cell") == (0, 1)
        ]
        assert len(cell_tids) == 2 and len(set(cell_tids)) == 1

    def test_main_events_use_main_pid(self):
        log = make_log()
        log.emit("a", source="campaign")
        events = to_chrome_trace(log)["traceEvents"]
        assert all(e["pid"] == MAIN_PID for e in events)


class TestWorkerShards:
    def make_merged_log(self):
        """A parent log with two worker shards merged out of order."""
        parent = make_log()
        parent.emit("job_start", source="executor")
        workers = []
        for trial in (0, 1):
            worker = make_log()
            worker.emit("trial_start", source="campaign", trial=trial)
            worker.emit("trial_end", source="campaign", trial=trial)
            workers.append(worker.to_records())
        # Chunks arrive out of submission order (chunk1 first).
        parent.extend(workers[1], source_prefix="chunk1")
        parent.extend(workers[0], source_prefix="chunk0")
        parent.emit("job_end", source="executor")
        return parent

    def test_shards_get_distinct_pids(self):
        events = to_chrome_trace(self.make_merged_log())["traceEvents"]
        process_names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(process_names) == {"main", "chunk0", "chunk1"}
        assert len(set(process_names.values())) == 3
        assert process_names["main"] == MAIN_PID

    def test_shard_events_route_to_their_pid(self):
        events = to_chrome_trace(self.make_merged_log())["traceEvents"]
        process_names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        spans = {
            e["args"]["trial"]: e["pid"] for e in events if e["ph"] == "X"
            if "trial" in e["args"]
        }
        assert spans[0] == process_names["chunk0"]
        assert spans[1] == process_names["chunk1"]
        # The executor's own span stays on the main process.
        executor_spans = [
            e for e in events if e["ph"] == "X" and e["name"] == "job"
        ]
        assert executor_spans and all(
            e["pid"] == MAIN_PID for e in executor_spans
        )

    def test_shard_spans_pair_within_their_shard_only(self):
        """Start/end pairing never crosses process boundaries."""
        events = to_chrome_trace(self.make_merged_log())["traceEvents"]
        trials = [e for e in events if e["ph"] == "X" and e["name"] == "trial"]
        assert len(trials) == 2

    def test_export_is_deterministic(self):
        a = to_chrome_trace(self.make_merged_log())
        b = to_chrome_trace(self.make_merged_log())
        assert a == b


class TestWriteChromeTrace:
    def test_writes_loadable_json_and_returns_count(self, tmp_path):
        log = make_log()
        log.emit("a_start", source="s")
        log.emit("a_end", source="s")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(log, str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert count >= 1

    def test_method_matches_function(self):
        log = make_log()
        log.emit("a", source="s")
        assert log.to_chrome_trace() == to_chrome_trace(log)
