"""The never-perturb guarantee, pinned.

Observability must be a pure read-out: installing an observer must not
change any experiment result -- not one RNG draw, not one packet.  These
differential tests run the same experiment bare and observed and assert
the outputs are *equal* (the result objects are frozen value types over
ints, so dataclass equality is byte-level identity of the outcome).
CI runs this module explicitly as the observability determinism gate.
"""

from repro.alu.variants import build_alu
from repro.experiments.lifecycle import (
    lifecycle_table_text,
    run_lifecycle_point,
    self_healing_policy,
)
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import ExactFractionMask
from repro.faults.temporal import TemporalFaultProcess
from repro.obs import Observer, observing
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads


def _observed(fn):
    """Run ``fn`` under a fresh observer; return (result, observer)."""
    obs = Observer()
    with observing(obs):
        result = fn()
    return result, obs


class TestCampaignUnperturbed:
    def _suite(self, batched):
        campaign = FaultCampaign(
            build_alu("alunn"), ExactFractionMask(0.03), seed=11
        )
        return campaign.run_workload_suite(
            paper_workloads(gradient(8, 8)), 2, batched=batched
        )

    def test_scalar_suite_identical(self):
        bare = self._suite(batched=False)
        observed, obs = _observed(lambda: self._suite(batched=False))
        assert observed == bare
        assert obs.metrics.counter("campaign.trials").value == 4

    def test_batched_suite_identical(self):
        bare = self._suite(batched=True)
        observed, obs = _observed(lambda: self._suite(batched=True))
        assert observed == bare
        # Scalar and batched also agree with each other, observed or not.
        assert observed == self._suite(batched=False)
        assert obs.trace.events_of("trial_end")


class TestExecutorUnperturbed:
    def _items(self):
        from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec

        return [
            CampaignWorkItem(
                alu=ALUSpec.variant("alunn"),
                policy=PolicySpec.exact(0.03),
                trials_per_workload=1,
                seed=3,
            )
            for _ in range(4)
        ]

    def test_parallel_run_identical_and_metrics_merged(self):
        from repro.perf import CampaignExecutor

        bare = CampaignExecutor(jobs=2, chunk_size=1).run(self._items())
        observed, obs = _observed(
            lambda: CampaignExecutor(jobs=2, chunk_size=1).run(self._items())
        )
        assert observed == bare
        # Worker-side campaign counters came home through the fold.
        assert obs.metrics.counter("campaign.trials").value == 8
        assert obs.metrics.counter("executor.chunks").value == 4
        # Worker trace shards were merged under per-chunk sources.
        sources = {e.source for e in obs.trace.events}
        assert any(s.startswith("chunk") for s in sources)


class TestLifecycleUnperturbed:
    def _point(self):
        return run_lifecycle_point(
            TemporalFaultProcess.intermittent(
                rate=0.0015, burst_length=5, errors_per_cycle=3
            ),
            self_healing_policy(),
            jobs=2,
            n_instructions=24,
            seed=2004,
        )

    def test_lifecycle_point_identical(self):
        bare = self._point()
        observed, obs = _observed(self._point)
        assert observed == bare
        assert lifecycle_table_text([observed]) == lifecycle_table_text([bare])
        # The watchdog and control layers reported through the observer.
        assert obs.metrics.counter("control.jobs").value == 2
        assert obs.trace.events_of("job_start")
