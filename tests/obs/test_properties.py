"""Property tests for the observability layer.

Three contracts the instrumentation relies on:

* histogram quantiles behave like order statistics (monotone in ``q``,
  pinned to min/max at the ends, always inside [min, max]);
* counter merge is associative (and commutative), so the executor may
  fold worker snapshots in any grouping -- chunk arrival order, retry
  order -- and report identical totals;
* trace events are totally ordered per source, and that order survives
  the extend-merge of worker shards into the parent log;
* ``MetricsRegistry.from_snapshot`` is a right inverse of
  ``snapshot()``: rehydrating a snapshot yields a registry whose own
  snapshot is identical, so archived ``BENCH_*.json`` metrics blocks
  load back into live instruments without loss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, TraceLog
from repro.obs.metrics import Histogram

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

counter_snapshots = st.dictionaries(
    st.sampled_from(
        ["campaign.trials", "campaign.faults_injected", "control.jobs",
         "watchdog.probes", "executor.retries"]
    ),
    st.integers(min_value=0, max_value=10**9),
    max_size=5,
)


class TestHistogramQuantileInvariants:
    @given(samples=st.lists(finite_floats, min_size=1, max_size=64))
    def test_endpoints_and_bounds(self, samples):
        histogram = Histogram("h")
        for s in samples:
            histogram.observe(s)
        assert histogram.quantile(0.0) == min(samples)
        assert histogram.quantile(1.0) == max(samples)
        for q in (0.1, 0.25, 0.5, 0.9):
            assert min(samples) <= histogram.quantile(q) <= max(samples)

    @given(
        samples=st.lists(finite_floats, min_size=1, max_size=64),
        qs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=8
        ),
    )
    def test_quantile_monotone_in_q(self, samples, qs):
        histogram = Histogram("h")
        for s in samples:
            histogram.observe(s)
        values = [histogram.quantile(q) for q in sorted(qs)]
        assert values == sorted(values)

    @given(samples=st.lists(finite_floats, min_size=1, max_size=200))
    def test_exact_accounting_survives_thinning(self, samples):
        histogram = Histogram("h", max_samples=16)
        for s in samples:
            histogram.observe(s)
        assert histogram.count == len(samples)
        assert abs(histogram.total - sum(samples)) <= 1e-6 * max(
            1.0, abs(sum(samples))
        )
        assert histogram.min == min(samples)
        assert histogram.max == max(samples)


def _fold(snapshots):
    """Fold snapshots left-to-right into a fresh registry."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot({"counters": snapshot})
    return {c.name: c.value for c in registry.counters()}


class TestCounterMergeAssociativity:
    @given(snaps=st.lists(counter_snapshots, min_size=3, max_size=3))
    def test_grouping_does_not_matter(self, snaps):
        a, b, c = snaps
        # (a + b) + c
        left = MetricsRegistry()
        left.merge_snapshot({"counters": a})
        left.merge_snapshot({"counters": b})
        left_then_c = MetricsRegistry()
        left_then_c.merge_snapshot(left.snapshot())
        left_then_c.merge_snapshot({"counters": c})
        # a + (b + c)
        right = MetricsRegistry()
        right.merge_snapshot({"counters": b})
        right.merge_snapshot({"counters": c})
        a_then_right = MetricsRegistry()
        a_then_right.merge_snapshot({"counters": a})
        a_then_right.merge_snapshot(right.snapshot())
        assert (
            left_then_c.snapshot()["counters"]
            == a_then_right.snapshot()["counters"]
        )

    @given(snaps=st.lists(counter_snapshots, min_size=1, max_size=6))
    def test_any_permutation_matches(self, snaps):
        expected = _fold(snaps)
        assert _fold(list(reversed(snaps))) == expected


class TestExecutorWorkerMerge:
    """Counter merge across real CampaignExecutor worker snapshots."""

    @settings(deadline=None)
    @given(chunk_sizes=st.lists(
        st.integers(min_value=1, max_value=4), min_size=2, max_size=4
    ))
    def test_chunked_fold_equals_serial_tally(self, chunk_sizes):
        # Simulate each worker's registry, then fold in arbitrary chunk
        # groupings -- the totals must match a single serial registry.
        serial = MetricsRegistry()
        shards = []
        trial = 0
        for size in chunk_sizes:
            shard = MetricsRegistry()
            for _ in range(size):
                for registry in (serial, shard):
                    registry.counter("campaign.trials").inc()
                    registry.counter("campaign.instructions").inc(64)
                trial += 1
            shards.append(shard.snapshot())
        merged = MetricsRegistry()
        for snapshot in shards:
            merged.merge_snapshot(snapshot)
        assert (
            merged.snapshot()["counters"] == serial.snapshot()["counters"]
        )


metric_names = st.sampled_from(
    ["campaign.trials", "bench.run", "grid.alive", "executor.chunk"]
)

registry_contents = st.tuples(
    st.dictionaries(  # counters
        metric_names, st.integers(min_value=0, max_value=10**9), max_size=4
    ),
    st.dictionaries(  # gauges
        metric_names, finite_floats, max_size=4
    ),
    st.dictionaries(  # histogram samples
        metric_names,
        st.lists(finite_floats, min_size=1, max_size=32),
        max_size=3,
    ),
)


class TestFromSnapshotRoundTrip:
    @staticmethod
    def build(contents):
        counters, gauges, samples = contents
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        for name, value in gauges.items():
            registry.gauge(name).set(value)
        for name, values in samples.items():
            histogram = registry.histogram(name)
            for value in values:
                histogram.observe(value)
        return registry

    @given(contents=registry_contents)
    def test_from_snapshot_of_snapshot_is_identity(self, contents):
        registry = self.build(contents)
        rehydrated = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rehydrated.snapshot() == registry.snapshot()

    @given(contents=registry_contents)
    def test_from_json_round_trips_the_serialised_form(self, contents):
        registry = self.build(contents)
        rehydrated = MetricsRegistry.from_json(registry.to_json())
        assert rehydrated.to_json() == registry.to_json()

    @given(contents=registry_contents)
    def test_rehydrated_instruments_are_live(self, contents):
        registry = self.build(contents)
        rehydrated = MetricsRegistry.from_snapshot(registry.snapshot())
        rehydrated.counter("campaign.trials").inc(3)
        baseline = registry.counter("campaign.trials").value
        assert rehydrated.counter("campaign.trials").value == baseline + 3


class TestTracePerSourceTotalOrder:
    emissions = st.lists(
        st.tuples(
            st.sampled_from(["campaign", "control", "watchdog"]),
            st.sampled_from(["trial_start", "trial_end", "probe_result"]),
        ),
        max_size=60,
    )

    @given(emissions=emissions)
    def test_seq_totally_orders_each_source(self, emissions):
        log = TraceLog(clock=lambda: 0.0)
        for index, (source, kind) in enumerate(emissions):
            log.emit(kind, source=source, index=index)
        for source in ("campaign", "control", "watchdog"):
            events = log.events_from(source)
            seqs = [e.seq for e in events]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            # Emission order is recoverable from seq alone.
            indices = [e.fields["index"] for e in events]
            assert indices == sorted(indices)

    @given(
        shard_a=emissions,
        shard_b=emissions,
    )
    def test_order_survives_extend_merge(self, shard_a, shard_b):
        logs = []
        for shard in (shard_a, shard_b):
            log = TraceLog(clock=lambda: 0.0)
            for index, (source, kind) in enumerate(shard):
                log.emit(kind, source=source, index=index)
            logs.append(log)
        parent = TraceLog(clock=lambda: 0.0)
        parent.extend(logs[0].to_records(), source_prefix="chunk0")
        parent.extend(logs[1].to_records(), source_prefix="chunk1")
        seqs = [e.seq for e in parent.events]
        assert seqs == sorted(seqs)
        for prefix, shard in (("chunk0", shard_a), ("chunk1", shard_b)):
            for source in ("campaign", "control", "watchdog"):
                merged = parent.events_from(f"{prefix}/{source}")
                indices = [e.fields["index"] for e in merged]
                assert indices == sorted(indices)
