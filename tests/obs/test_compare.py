"""Tests for the benchmark regression-comparison engine."""

import copy
import json

import pytest

from repro.obs.compare import (
    DEFAULT_THRESHOLD,
    compare_artifacts,
    compare_paths,
)
from tests.obs.test_bench_harness import canned_artifact


def slowed(artifact, factor, names=None):
    """A deep copy with selected timer means multiplied by ``factor``."""
    current = copy.deepcopy(artifact)
    for name, stats in current["timers"].items():
        if names is None or name in names:
            stats["mean"] *= factor
    return current


class TestCompareArtifacts:
    def test_identical_artifacts_pass(self):
        artifact = canned_artifact()
        comparison = compare_artifacts(artifact, artifact)
        assert comparison.ok
        assert not comparison.regressions
        assert {d.verdict for d in comparison.deltas} <= {"ok", "noise"}

    def test_injected_2x_slowdown_is_detected(self):
        baseline = canned_artifact()
        comparison = compare_artifacts(baseline, slowed(baseline, 2.0))
        assert not comparison.ok
        regressed = {d.name for d in comparison.regressions}
        # Every judged (non-noise) timer slowed by 2x > the 1.5x default.
        assert "bench.run" in regressed
        for delta in comparison.regressions:
            assert delta.ratio == pytest.approx(2.0)
            assert delta.threshold == DEFAULT_THRESHOLD

    def test_speedup_is_reported_as_improvement(self):
        baseline = canned_artifact()
        comparison = compare_artifacts(baseline, slowed(baseline, 0.4))
        assert comparison.ok  # improvements never fail a comparison
        assert comparison.improvements

    def test_within_threshold_is_ok(self):
        baseline = canned_artifact()
        comparison = compare_artifacts(baseline, slowed(baseline, 1.2))
        assert comparison.ok
        assert not comparison.improvements

    def test_sub_millisecond_timers_are_noise(self):
        baseline = canned_artifact()
        for artifact in (baseline,):
            artifact["timers"]["bench.tiny"] = {"mean": 1e-5, "count": 1}
        current = slowed(baseline, 50.0, names=("bench.tiny",))
        current["timers"]["bench.tiny"]["mean"] = 5e-4  # still < 1ms
        comparison = compare_artifacts(baseline, current)
        tiny = next(d for d in comparison.deltas if d.name == "bench.tiny")
        assert tiny.verdict == "noise"
        assert comparison.ok

    def test_new_and_missing_timers_are_advisory(self):
        baseline = canned_artifact()
        current = copy.deepcopy(baseline)
        current["timers"]["bench.added"] = {"mean": 1.0}
        del current["timers"]["bench.test_bench_suite_scalar"]
        comparison = compare_artifacts(baseline, current)
        verdicts = {d.name: d.verdict for d in comparison.deltas}
        assert verdicts["bench.added"] == "new"
        assert verdicts["bench.test_bench_suite_scalar"] == "missing"
        assert comparison.ok

    def test_per_metric_threshold_globs(self):
        baseline = canned_artifact()
        current = slowed(baseline, 1.8)
        comparison = compare_artifacts(
            baseline,
            current,
            thresholds={"bench.run": 2.5},  # this one is allowed 1.8x
        )
        verdicts = {d.name: d.verdict for d in comparison.deltas}
        assert verdicts["bench.run"] == "ok"
        assert (
            verdicts["bench.test_bench_suite_scalar"] == "regression"
        )  # default 1.5x still applies

    def test_smoke_mismatch_is_noted(self):
        baseline = canned_artifact()
        current = copy.deepcopy(baseline)
        current["smoke"] = not baseline["smoke"]
        comparison = compare_artifacts(baseline, current)
        assert any("smoke" in note for note in comparison.notes)

    def test_table_text_renders_every_delta(self):
        baseline = canned_artifact()
        comparison = compare_artifacts(baseline, slowed(baseline, 2.0))
        text = comparison.table_text()
        assert "REGRESSION" in text
        assert "bench.run" in text
        assert "2.00x" in text


class TestComparePaths:
    def write(self, directory, artifact):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{artifact['name']}.json"
        path.write_text(json.dumps(artifact))
        return path

    def test_directory_pair(self, tmp_path):
        artifact = canned_artifact()
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", slowed(artifact, 2.0))
        comparisons, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr"
        )
        assert len(comparisons) == 1 and not warnings and not errors
        assert not comparisons[0].ok

    def test_single_file_pair(self, tmp_path):
        artifact = canned_artifact()
        base = self.write(tmp_path / "base", artifact)
        curr = self.write(tmp_path / "curr", artifact)
        comparisons, warnings, errors = compare_paths(base, curr)
        assert len(comparisons) == 1 and comparisons[0].ok
        assert not errors

    def test_missing_baseline_warns_instead_of_failing(self, tmp_path):
        artifact = canned_artifact()
        (tmp_path / "base").mkdir()
        self.write(tmp_path / "curr", artifact)
        comparisons, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr"
        )
        assert comparisons == [] and errors == []
        assert any("no committed baseline" in w for w in warnings)

    def test_unreadable_artifact_is_an_error(self, tmp_path):
        artifact = canned_artifact()
        self.write(tmp_path / "base", artifact)
        bad = tmp_path / "curr" / f"BENCH_{artifact['name']}.json"
        bad.parent.mkdir()
        bad.write_text("{not json")
        comparisons, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr"
        )
        assert comparisons == []
        assert errors

    def test_only_glob_filters_pairs(self, tmp_path):
        artifact = canned_artifact()
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", artifact)
        comparisons, _, _ = compare_paths(
            tmp_path / "base", tmp_path / "curr", only="no_match"
        )
        assert comparisons == []

    def test_require_complete_escalates_baseline_only_to_error(
        self, tmp_path
    ):
        artifact = canned_artifact()
        second = copy.deepcopy(artifact)
        second["name"] = artifact["name"] + "_extra"
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "base", second)
        self.write(tmp_path / "curr", artifact)
        # Advisory by default: a skipped benchmark only warns ...
        comparisons, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr"
        )
        assert len(comparisons) == 1 and errors == []
        assert any("not in current run" in w for w in warnings)
        # ... but is an error when completeness is demanded.
        comparisons, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr", require_complete=True
        )
        assert len(comparisons) == 1
        assert any("in baseline but not in current run" in e for e in errors)
        assert not any("not in current run" in w for w in warnings)

    def test_require_complete_keeps_new_benchmarks_advisory(self, tmp_path):
        artifact = canned_artifact()
        fresh = copy.deepcopy(artifact)
        fresh["name"] = artifact["name"] + "_new"
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", artifact)
        self.write(tmp_path / "curr", fresh)
        _, warnings, errors = compare_paths(
            tmp_path / "base", tmp_path / "curr", require_complete=True
        )
        assert errors == []
        assert any("no committed baseline" in w for w in warnings)
