"""Tests for run-provenance collection."""

import json
import platform

from repro.obs.provenance import (
    PROVENANCE_KEYS,
    collect_provenance,
    config_hash,
    git_revision,
    machine_fingerprint,
    package_versions,
)


class TestCollectProvenance:
    def test_block_carries_every_pinned_key(self):
        block = collect_provenance(seed=7, config={"x": 1})
        for key in PROVENANCE_KEYS:
            assert key in block, key
        assert block["seed"] == 7
        assert block["config"] == {"x": 1}

    def test_block_is_json_safe(self):
        json.dumps(collect_provenance(seed=None, config=None))

    def test_python_and_platform_are_real(self):
        block = collect_provenance()
        assert block["python"] == platform.python_version()
        assert isinstance(block["platform"], str)


class TestGitRevision:
    def test_inside_this_checkout(self):
        info = git_revision()
        # The test suite runs from the repository; a checkout yields a
        # 40-hex SHA and a boolean dirty flag.
        if info["git_sha"] is not None:
            assert len(info["git_sha"]) == 40
            assert int(info["git_sha"], 16) >= 0
            assert isinstance(info["git_dirty"], bool)

    def test_outside_a_checkout_degrades_to_none(self, tmp_path):
        info = git_revision(cwd=str(tmp_path))
        assert info == {"git_sha": None, "git_dirty": None}


class TestPackageVersions:
    def test_tracks_the_packages_that_shape_the_numbers(self):
        versions = package_versions()
        assert set(versions) == {
            "repro", "numpy", "pytest", "pytest_benchmark"
        }
        assert versions["numpy"]  # installed in every supported env


class TestMachineFingerprint:
    def test_fingerprint_is_stable_and_anonymised(self):
        first = machine_fingerprint()
        second = machine_fingerprint()
        assert first == second
        assert len(first["fingerprint"]) == 12
        int(first["fingerprint"], 16)
        # The raw hostname never appears in the block.
        node = platform.node()
        if node:
            assert node not in json.dumps(first)


class TestConfigHash:
    def test_key_order_never_changes_the_hash(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_changes_change_the_hash(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_hash_is_short_hex(self):
        digest = config_hash({})
        assert len(digest) == 16
        int(digest, 16)

    def test_embedded_hash_matches_embedded_config(self):
        block = collect_provenance(config={"trials": 5, "seed": 2004})
        assert block["config_hash"] == config_hash(block["config"])
