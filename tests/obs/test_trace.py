"""Unit tests for the trace event log."""

import io
import json

import pytest

from repro.obs import NullTraceLog, TraceLog


def fixed_clock():
    return 42.0


class TestEmission:
    def test_events_carry_seq_time_kind_source_fields(self):
        log = TraceLog(clock=fixed_clock)
        event = log.emit("trial_start", source="campaign", trial=3)
        assert event.seq == 0
        assert event.t == 42.0
        assert event.kind == "trial_start"
        assert event.source == "campaign"
        assert event.fields == {"trial": 3}

    def test_seq_is_monotone(self):
        log = TraceLog(clock=fixed_clock)
        seqs = [log.emit("e").seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert log.next_seq == 5

    def test_filters(self):
        log = TraceLog(clock=fixed_clock)
        log.emit("a", source="x")
        log.emit("b", source="y")
        log.emit("a", source="y")
        assert [e.kind for e in log.events_from("y")] == ["b", "a"]
        assert [e.source for e in log.events_of("a")] == ["x", "y"]


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        log = TraceLog(capacity=3, clock=fixed_clock)
        for i in range(5):
            log.emit("e", index=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["index"] for e in log.events] == [2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)


class TestJsonl:
    def test_export_shape(self):
        log = TraceLog(clock=fixed_clock)
        log.emit("probe_result", source="watchdog", cell=(1, 2), passed=True)
        buffer = io.StringIO()
        assert log.to_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record == {
            "seq": 0,
            "t": 42.0,
            "kind": "probe_result",
            "source": "watchdog",
            "cell": [1, 2],
            "passed": True,
        }

    def test_export_to_path(self, tmp_path):
        log = TraceLog(clock=fixed_clock)
        log.emit("a")
        log.emit("b")
        path = str(tmp_path / "trace.jsonl")
        assert log.to_jsonl(path) == 2
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "b"


class TestExtend:
    def test_extend_restamps_seq_and_prefixes_source(self):
        worker = TraceLog(clock=fixed_clock)
        worker.emit("trial_start", source="campaign", trial=0)
        worker.emit("trial_end", source="campaign", trial=0)
        parent = TraceLog(clock=fixed_clock)
        parent.emit("job_start", source="executor")
        appended = parent.extend(worker.to_records(), source_prefix="chunk3")
        assert appended == 2
        kinds = [(e.seq, e.kind, e.source) for e in parent.events]
        assert kinds == [
            (0, "job_start", "executor"),
            (1, "trial_start", "chunk3/campaign"),
            (2, "trial_end", "chunk3/campaign"),
        ]
        # Payload fields survive the merge.
        assert parent.events[1].fields == {"trial": 0}

    def test_extend_without_prefix(self):
        parent = TraceLog(clock=fixed_clock)
        parent.extend([{"kind": "x", "source": "s", "t": 1.0, "seq": 99}])
        assert parent.events[0].seq == 0
        assert parent.events[0].source == "s"


class TestNullTraceLog:
    def test_emit_is_noop(self):
        log = NullTraceLog()
        assert not log.enabled
        assert log.emit("anything", source="x", heavy="payload") is None
        assert log.extend([{"kind": "x"}]) == 0
        assert len(log) == 0
        buffer = io.StringIO()
        assert log.to_jsonl(buffer) == 0
        assert buffer.getvalue() == ""


class TestOutOfOrderChunkMerge:
    """The executor absorbs worker shards in *completion* order, which
    need not match submission order; the merge must still leave every
    shard internally ordered and the whole log totally ordered by seq."""

    @staticmethod
    def shard_records(chunk, n=3):
        worker = TraceLog(clock=fixed_clock)
        for trial in range(n):
            worker.emit("trial_start", source="campaign", trial=trial,
                        chunk=chunk)
            worker.emit("trial_end", source="campaign", trial=trial,
                        chunk=chunk)
        return worker.to_records()

    def test_reversed_arrival_keeps_per_shard_order(self):
        parent = TraceLog(clock=fixed_clock)
        # Chunk 2 finishes first, then 0, then 1.
        for chunk in (2, 0, 1):
            parent.extend(
                self.shard_records(chunk), source_prefix=f"chunk{chunk}"
            )
        seqs = [e.seq for e in parent.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for chunk in (0, 1, 2):
            events = parent.events_from(f"chunk{chunk}/campaign")
            trials = [e.fields["trial"] for e in events]
            assert trials == [0, 0, 1, 1, 2, 2]
            kinds = [e.kind for e in events]
            assert kinds == ["trial_start", "trial_end"] * 3

    def test_arrival_order_is_recoverable_from_seq(self):
        parent = TraceLog(clock=fixed_clock)
        for chunk in (1, 0):
            parent.extend(
                self.shard_records(chunk, n=1), source_prefix=f"chunk{chunk}"
            )
        # chunk1 arrived first, so all its seqs precede chunk0's.
        seq_by_chunk = {
            chunk: [e.seq for e in parent.events_from(f"chunk{chunk}/campaign")]
            for chunk in (0, 1)
        }
        assert max(seq_by_chunk[1]) < min(seq_by_chunk[0])

    def test_interleaved_extend_and_emit(self):
        parent = TraceLog(clock=fixed_clock)
        parent.emit("job_start", source="executor")
        parent.extend(self.shard_records(1, n=1), source_prefix="chunk1")
        parent.emit("checkpoint", source="executor")
        parent.extend(self.shard_records(0, n=1), source_prefix="chunk0")
        parent.emit("job_end", source="executor")
        seqs = [e.seq for e in parent.events]
        assert seqs == list(range(7))
        assert [e.kind for e in parent.events_from("executor")] == [
            "job_start", "checkpoint", "job_end"
        ]
