"""CLI tests for manifests, replay, chrome traces, and ``bench``.

These run the real subcommands in-process via ``main(argv)`` -- the same
entry point the console script uses -- with the smallest workloads each
command accepts, so the replay contract ("byte-for-byte or exit 1") is
tested end to end on every experiment family that records manifests.
"""

import json

import pytest

from repro.cli import main
from repro.obs.manifest import load_manifest
from tests.obs.test_bench_harness import canned_artifact

#: Smallest-workload argv for every manifest-recording command family.
REPLAYABLE = {
    "sweep": ["sweep", "--quick"],
    "grid": ["grid", "--rows", "2", "--cols", "2", "--image-size", "4"],
    "chaos": [
        "chaos", "--rates", "0.0", "0.003", "--rounds", "1",
        "--instructions", "8",
    ],
    "lifecycle": [
        "lifecycle", "--jobs", "1", "--instructions", "16",
        "--rows", "2", "--cols", "2",
    ],
}


class TestManifestRecording:
    @pytest.mark.parametrize("command", sorted(REPLAYABLE))
    def test_manifest_records_argv_digest_and_provenance(
        self, command, tmp_path, capsys
    ):
        path = tmp_path / "run.json"
        argv = REPLAYABLE[command] + ["--manifest", str(path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        manifest = load_manifest(path)
        assert manifest["command"] == command
        # The recorded argv is the invocation minus the manifest flag.
        assert manifest["argv"] == REPLAYABLE[command]
        assert "--manifest" not in manifest["argv"]
        assert manifest["exit_status"] == 0
        assert manifest["output_bytes"] > 0
        assert len(manifest["output_sha256"]) == 64
        for key in ("git_sha", "seed", "config_hash"):
            assert key in manifest["provenance"]
        assert f"wrote replay manifest to {path}" in out


class TestReplay:
    @pytest.mark.parametrize("command", sorted(REPLAYABLE))
    def test_replay_is_byte_identical(self, command, tmp_path, capsys):
        """The acceptance contract: every deterministic experiment
        command replays byte-for-byte from its manifest."""
        path = tmp_path / "run.json"
        assert main(REPLAYABLE[command] + ["--manifest", str(path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        err = capsys.readouterr().err
        assert "replay OK" in err
        assert "byte-identical" in err

    def test_replay_detects_tampered_digest(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert main(["sweep", "--quick", "--manifest", str(path)]) == 0
        manifest = json.loads(path.read_text())
        manifest["output_sha256"] = "0" * 64
        path.write_text(json.dumps(manifest))
        capsys.readouterr()
        assert main(["replay", str(path)]) == 1
        assert "replay MISMATCH" in capsys.readouterr().err

    def test_replay_rejects_non_manifest_files(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a repro.manifest"):
            main(["replay", str(path)])


class TestChromeTraceFlag:
    def test_lifecycle_chrome_trace_is_valid(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        argv = REPLAYABLE["lifecycle"] + ["--chrome-trace", str(path)]
        assert main(argv) == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in {"X", "i", "B", "M"}
            assert {"ts", "pid", "tid", "name"} <= set(event)

    def test_flags_never_perturb_output(self, tmp_path, capsys):
        argv = REPLAYABLE["chaos"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(
            argv + ["--chrome-trace", str(tmp_path / "t.json"),
                    "--metrics", str(tmp_path / "m.json")]
        ) == 0
        instrumented = capsys.readouterr().out
        # The command's own output is a prefix: identical, with only the
        # export confirmations appended.
        assert instrumented.startswith(bare)


class TestBenchCompareCLI:
    def write(self, directory, artifact):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{artifact['name']}.json").write_text(
            json.dumps(artifact)
        )

    def test_identical_dirs_pass(self, tmp_path, capsys):
        artifact = canned_artifact()
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", artifact)
        assert main(
            ["bench", "compare", str(tmp_path / "base"),
             str(tmp_path / "curr")]
        ) == 0
        assert "timer (mean)" in capsys.readouterr().out

    def test_2x_slowdown_fails_with_regression_lines(self, tmp_path, capsys):
        import copy

        artifact = canned_artifact()
        slowed = copy.deepcopy(artifact)
        for stats in slowed["timers"].values():
            stats["mean"] *= 2.0
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", slowed)
        assert main(
            ["bench", "compare", str(tmp_path / "base"),
             str(tmp_path / "curr")]
        ) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out + captured.err

    def test_threshold_for_overrides_per_glob(self, tmp_path):
        import copy

        artifact = canned_artifact()
        slowed = copy.deepcopy(artifact)
        for stats in slowed["timers"].values():
            stats["mean"] *= 2.0
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "curr", slowed)
        assert main(
            ["bench", "compare", str(tmp_path / "base"),
             str(tmp_path / "curr"), "--threshold-for", "bench.*=3.0"]
        ) == 0

    def test_empty_comparison_fails(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "curr").mkdir()
        assert main(
            ["bench", "compare", str(tmp_path / "base"),
             str(tmp_path / "curr")]
        ) == 1

    def test_require_complete_fails_on_skipped_benchmark(
        self, tmp_path, capsys
    ):
        import copy

        artifact = canned_artifact()
        extra = copy.deepcopy(artifact)
        extra["name"] = artifact["name"] + "_extra"
        self.write(tmp_path / "base", artifact)
        self.write(tmp_path / "base", extra)
        self.write(tmp_path / "curr", artifact)
        argv = ["bench", "compare", str(tmp_path / "base"),
                str(tmp_path / "curr")]
        assert main(argv) == 0  # advisory warning only
        capsys.readouterr()
        assert main(argv + ["--require-complete"]) == 1
        assert "in baseline but not in current run" in capsys.readouterr().err


class TestBenchRunCLI:
    def test_no_matching_benchmark_fails(self, tmp_path):
        assert main(
            ["bench", "run", "--filter", "no_such_bench",
             "--out", str(tmp_path)]
        ) == 1

    def test_smoke_run_emits_a_valid_artifact(self, tmp_path, capsys):
        """End to end through the child pytest process: the cheapest
        benchmark, in smoke mode, must yield a loadable artifact."""
        from repro.obs.bench import load_artifact

        assert main(
            ["bench", "run", "--smoke", "--filter", "text_area_overhead",
             "--out", str(tmp_path)]
        ) == 0
        assert "passed" in capsys.readouterr().out
        artifact = load_artifact(tmp_path / "BENCH_text_area_overhead.json")
        assert artifact["smoke"] is True
        assert artifact["status"] == "passed"
        assert artifact["timers"]["bench.run"]["count"] == 1
        assert artifact["provenance"]["config"]["smoke"] is True
