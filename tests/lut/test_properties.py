"""Property-based tests for coded LUTs (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable

table_bits = st.integers(min_value=0, max_value=(1 << 32) - 1)
addresses = st.integers(min_value=0, max_value=31)


class TestCodedLUTProperties:
    @given(table_bits, addresses,
           st.sampled_from(["none", "hamming", "hamming-sec", "tmr", "parity"]))
    def test_fault_free_reads_always_match(self, bits, address, scheme):
        table = TruthTable(5, bits)
        lut = CodedLUT(table, scheme)
        assert lut.read(address) == table.lookup(address)

    @given(table_bits, addresses,
           st.integers(min_value=0, max_value=(1 << 96) - 1))
    def test_tmr_read_is_majority_of_addressed_copies(self, bits, address, mask):
        table = TruthTable(5, bits)
        lut = CodedLUT(table, "tmr")
        votes = sum(
            ((table.bits ^ mask >> (copy * 32)) >> address) & 1
            for copy in range(3)
        )
        # Recompute carefully: each copy's bit is (bits ^ mask_copy)[address].
        votes = 0
        for copy in range(3):
            copy_bits = table.bits ^ ((mask >> (copy * 32)) & ((1 << 32) - 1))
            votes += (copy_bits >> address) & 1
        expected = 1 if votes >= 2 else 0
        assert lut.read(address, mask) == expected

    @given(table_bits, addresses,
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_none_read_is_raw_bit(self, bits, address, mask):
        table = TruthTable(5, bits)
        lut = CodedLUT(table, "none")
        assert lut.read(address, mask) == ((bits ^ mask) >> address) & 1

    @given(table_bits, addresses,
           st.integers(min_value=0, max_value=(1 << 42) - 1),
           st.sampled_from(["hamming", "hamming-sec", "hamming-fp"]))
    def test_hamming_variants_agree_when_clean_or_single_addressed(
        self, bits, address, mask, scheme
    ):
        """All three Hamming semantics deliver the correct bit when the
        addressed block is clean."""
        block = address // 16
        block_mask = ((1 << 21) - 1) << (21 * block)
        if mask & block_mask:
            return  # only test the clean-addressed-block case
        table = TruthTable(5, bits)
        lut = CodedLUT(table, scheme)
        assert lut.read(address, mask) == table.lookup(address)

    @given(table_bits, addresses)
    def test_traced_matches_plain_read(self, bits, address):
        table = TruthTable(5, bits)
        for scheme in ("none", "hamming", "tmr"):
            lut = CodedLUT(table, scheme)
            assert lut.read_traced(address).value == lut.read(address)

    @given(table_bits, st.sampled_from(["none", "hamming", "tmr", "parity"]))
    def test_storage_fits_declared_sites(self, bits, scheme):
        lut = CodedLUT(TruthTable(5, bits), scheme)
        assert lut.storage >> lut.total_bits == 0
