"""Unit tests for truth-table synthesis and the Figure 1 example."""

import itertools

import pytest

from repro.lut.synth import (
    figure1_carry_table,
    figure1_sum_table,
    synthesize,
    synthesize_word,
)


class TestSynthesize:
    def test_simple_predicate(self):
        table = synthesize(3, lambda a, b, c: a & (b | c))
        for bits in itertools.product((0, 1), repeat=3):
            assert table(*bits) == bits[0] & (bits[1] | bits[2])


class TestSynthesizeWord:
    def test_two_bit_adder(self):
        tables = synthesize_word(2, lambda a, b: a + b, 2)
        assert len(tables) == 2
        for a, b in itertools.product((0, 1), repeat=2):
            value = tables[0](a, b) | (tables[1](a, b) << 1)
            assert value == a + b

    def test_invalid_outputs(self):
        with pytest.raises(ValueError):
            synthesize_word(2, lambda a, b: a, 0)


class TestFigure1:
    def test_sum_is_odd_parity(self):
        table = figure1_sum_table()
        assert table.n_inputs == 4
        for bits in itertools.product((0, 1), repeat=4):
            assert table(*bits) == sum(bits) % 2

    def test_carry_is_second_bit(self):
        table = figure1_carry_table()
        for bits in itertools.product((0, 1), repeat=4):
            assert table(*bits) == (sum(bits) >> 1) & 1

    def test_sum_carry_reconstruct_count_mod4(self):
        s, c = figure1_sum_table(), figure1_carry_table()
        for bits in itertools.product((0, 1), repeat=4):
            assert s(*bits) + 2 * c(*bits) == sum(bits) % 4
