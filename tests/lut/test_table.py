"""Unit tests for truth tables."""

import pytest

from repro.lut.table import TruthTable


class TestConstruction:
    def test_from_bits(self):
        table = TruthTable(2, 0b0110)  # XOR
        assert table.n_inputs == 2
        assert table.size == 4
        assert table.bits == 0b0110

    def test_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(2, 1 << 4)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 0)

    def test_from_function(self):
        table = TruthTable.from_function(2, lambda a, b: a & b)
        assert table.bits == 0b1000

    def test_from_function_bad_output(self):
        with pytest.raises(ValueError):
            TruthTable.from_function(1, lambda a: 2)

    def test_from_outputs(self):
        table = TruthTable.from_outputs([0, 1, 1, 0])
        assert table == TruthTable(2, 0b0110)

    def test_from_outputs_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_outputs([0, 1, 1])

    def test_from_outputs_bad_value(self):
        with pytest.raises(ValueError):
            TruthTable.from_outputs([0, 5, 1, 0])

    def test_zero_input_table(self):
        const1 = TruthTable(0, 1)
        assert const1.size == 1
        assert const1.lookup(0) == 1


class TestLookup:
    def test_lookup_matches_function(self):
        fn = lambda a, b, c: (a | b) & c
        table = TruthTable.from_function(3, fn)
        for address in range(8):
            bits = [(address >> i) & 1 for i in range(3)]
            assert table.lookup(address) == fn(*bits)

    def test_lookup_out_of_range(self):
        table = TruthTable(2, 0)
        with pytest.raises(IndexError):
            table.lookup(4)
        with pytest.raises(IndexError):
            table.lookup(-1)

    def test_call_interface(self):
        xor = TruthTable(2, 0b0110)
        assert xor(0, 1) == 1
        assert xor(1, 1) == 0

    def test_call_arity_check(self):
        xor = TruthTable(2, 0b0110)
        with pytest.raises(ValueError):
            xor(1)

    def test_call_bit_check(self):
        xor = TruthTable(2, 0b0110)
        with pytest.raises(ValueError):
            xor(1, 2)


class TestEquality:
    def test_equal_and_hash(self):
        a = TruthTable(2, 0b0110)
        b = TruthTable.from_outputs([0, 1, 1, 0])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_inputs(self):
        assert TruthTable(2, 0) != TruthTable(3, 0)

    def test_not_equal_other_types(self):
        assert TruthTable(1, 0) != 0
