"""Tests for the gate-level fault-prone Hamming decoder."""

import itertools

import numpy as np
import pytest

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.reference import reference_compute
from repro.coding.hamming import HammingCode
from repro.logic.hamming_checker import build_hamming_checker
from repro.lut.coded import CodedLUT
from repro.lut.gate_decoder import GateDecodedHammingLUT, make_lut
from repro.lut.table import TruthTable


def xor5_table():
    return TruthTable.from_function(5, lambda *bits: sum(bits) % 2)


class TestCheckerNetlist:
    @pytest.fixture(scope="class")
    def checker(self):
        return build_hamming_checker(16)

    def test_syndrome_matches_code(self, checker):
        code = HammingCode(16)
        rng = np.random.default_rng(0)
        for _ in range(40):
            data = int(rng.integers(1 << 16))
            noise = 0
            for __ in range(int(rng.integers(3))):
                noise ^= 1 << int(rng.integers(21))
            block = code.encode(data) ^ noise
            inputs = {f"s{i}": (block >> i) & 1 for i in range(21)}
            inputs.update({f"p{j}": 0 for j in range(5)})
            inputs["raw"] = 0
            out = checker.evaluate(inputs)
            syn = sum(out[f"syn{j}"] << j for j in range(5))
            assert syn == code.syndrome(block)

    def test_flip_semantics_match_coded_lut(self, checker):
        """Exhaustive single-error check: the netlist's flip decision
        matches the paper-calibrated software decoder."""
        code = HammingCode(16)
        data = 0xB3C5
        stored = code.encode(data)
        payload_index = 6
        pos_code = code.data_positions[payload_index] + 1
        for error_site in range(-1, 21):
            block = stored if error_site < 0 else stored ^ (1 << error_site)
            inputs = {f"s{i}": (block >> i) & 1 for i in range(21)}
            inputs.update({f"p{j}": (pos_code >> j) & 1 for j in range(5)})
            raw = (block >> code.data_positions[payload_index]) & 1
            inputs["raw"] = raw
            out = checker.evaluate(inputs)
            syn = code.syndrome(block)
            if syn == 0:
                expected_flip = 0
            elif syn - 1 == code.data_positions[payload_index]:
                expected_flip = 1
            elif syn > 21 or (syn & (syn - 1)) == 0:
                expected_flip = 1
            else:
                expected_flip = 0
            assert out["flip"] == expected_flip, f"error at {error_site}"
            assert out["out"] == raw ^ expected_flip


class TestGateDecodedLUT:
    def test_geometry(self):
        lut = GateDecodedHammingLUT(xor5_table())
        assert lut.storage_bits == 42
        assert lut.decoder_gate_bits > 0
        assert lut.total_bits == 42 + lut.decoder_gate_bits

    def test_fault_free_matches_table(self):
        table = xor5_table()
        lut = GateDecodedHammingLUT(table)
        for address in range(32):
            assert lut.read(address) == table.lookup(address)

    def test_storage_faults_match_coded_lut(self):
        """With faults only on storage bits, the gate-level decoder is
        bit-for-bit equivalent to the idealised CodedLUT."""
        table = xor5_table()
        gate_lut = GateDecodedHammingLUT(table)
        soft_lut = CodedLUT(table, "hamming")
        rng = np.random.default_rng(1)
        for _ in range(200):
            address = int(rng.integers(32))
            mask = 0
            for __ in range(int(rng.integers(4))):
                mask ^= 1 << int(rng.integers(42))
            assert gate_lut.read(address, mask) == soft_lut.read(address, mask)

    def test_gate_fault_can_corrupt_clean_storage(self):
        """A fault on the decoder's own logic corrupts the read even
        when every stored bit is pristine -- the channel the paper's
        idealisation hides."""
        table = xor5_table()
        lut = GateDecodedHammingLUT(table)
        # Flip the final output XOR gate.
        out_gate = next(
            g for g in lut._checker.gates if g.name == "out"
        )
        mask = 1 << (lut.storage_bits + out_gate.index)
        for address in (0, 13, 31):
            assert lut.read(address, mask) == table.lookup(address) ^ 1

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            GateDecodedHammingLUT(TruthTable(3, 0), block_size=16)

    def test_address_bounds(self):
        with pytest.raises(IndexError):
            GateDecodedHammingLUT(xor5_table()).read(32)


class TestMakeLut:
    def test_dispatch(self):
        table = xor5_table()
        assert isinstance(make_lut(table, "hamming-gate"), GateDecodedHammingLUT)
        assert isinstance(make_lut(table, "tmr"), CodedLUT)


class TestGateDecodedALU:
    def test_alu_scheme_integrates(self):
        alu = NanoBoxALU(scheme="hamming-gate")
        # 16 LUTs x (42 storage + gate nodes).
        per_lut = alu.site_count // 16
        assert per_lut > 42
        for op in Opcode:
            for a, b in ((0x00, 0x00), (0xAA, 0x55), (0xC8, 0x64)):
                got = alu.compute(int(op), a, b)
                want = reference_compute(int(op), a, b)
                assert (got.value, got.carry) == (want.value, want.carry)

    def test_static_mask_excludes_gates(self):
        alu = NanoBoxALU(scheme="hamming-gate")
        static = alu.static_site_mask()
        seg = alu.site_space.segment("slice0.result_lut")
        local = seg.extract(static)
        assert local == (1 << 42) - 1  # storage static, gates dynamic
