"""Unit tests for error-coded lookup tables."""

import pytest

from repro.coding.base import DecodeOutcome
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable


def xor5_table():
    """5-input parity: the 32-entry shape of the NanoBox slice LUTs."""
    return TruthTable.from_function(5, lambda *bits: sum(bits) % 2)


class TestGeometry:
    def test_none_sites(self):
        assert CodedLUT(xor5_table(), "none").total_bits == 32

    def test_hamming_sites(self):
        # Two 16-bit blocks with 5 check bits each: 42 total.
        assert CodedLUT(xor5_table(), "hamming").total_bits == 42

    def test_tmr_sites(self):
        assert CodedLUT(xor5_table(), "tmr").total_bits == 96

    def test_parity_sites(self):
        assert CodedLUT(xor5_table(), "parity").total_bits == 34

    def test_5mr_sites(self):
        assert CodedLUT(xor5_table(), "5mr").total_bits == 160

    def test_block_count(self):
        assert CodedLUT(xor5_table(), "hamming").block_count == 2
        assert CodedLUT(xor5_table(), "none").block_count == 1

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown LUT coding scheme"):
            CodedLUT(xor5_table(), "bch")

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            CodedLUT(xor5_table(), "hamming", block_size=0)


@pytest.mark.parametrize(
    "scheme", ["none", "hamming", "hamming-sec", "hamming-fp", "tmr", "parity"]
)
class TestFaultFreeReads:
    def test_matches_truth_table(self, scheme):
        table = xor5_table()
        lut = CodedLUT(table, scheme)
        for address in range(32):
            assert lut.read(address) == table.lookup(address)

    def test_traced_reads_clean(self, scheme):
        lut = CodedLUT(xor5_table(), scheme)
        for address in (0, 13, 31):
            trace = lut.read_traced(address)
            assert not trace.observable_error
            assert trace.value == trace.correct_value


class TestAddressValidation:
    def test_read_out_of_range(self):
        lut = CodedLUT(xor5_table(), "none")
        with pytest.raises(IndexError):
            lut.read(32)
        with pytest.raises(IndexError):
            lut.read_traced(-1)


class TestNoCodeSemantics:
    def test_only_addressed_bit_matters(self):
        table = xor5_table()
        lut = CodedLUT(table, "none")
        for address in (0, 7, 31):
            # Flip every bit EXCEPT the addressed one: read unaffected.
            mask = ((1 << 32) - 1) ^ (1 << address)
            assert lut.read(address, mask) == table.lookup(address)
            # Flip only the addressed bit: read inverted.
            assert lut.read(address, 1 << address) == table.lookup(address) ^ 1


class TestTMRSemantics:
    def test_single_copy_fault_masked(self):
        table = xor5_table()
        lut = CodedLUT(table, "tmr")
        for address in (0, 13, 31):
            for copy in range(3):
                mask = 1 << (copy * 32 + address)
                assert lut.read(address, mask) == table.lookup(address)

    def test_two_copy_fault_not_masked(self):
        table = xor5_table()
        lut = CodedLUT(table, "tmr")
        address = 9
        mask = (1 << address) | (1 << (32 + address))
        assert lut.read(address, mask) == table.lookup(address) ^ 1

    def test_faults_on_other_addresses_invisible(self):
        table = xor5_table()
        lut = CodedLUT(table, "tmr")
        # Corrupt all three copies of every *other* address.
        address = 5
        mask = 0
        for copy in range(3):
            for other in range(32):
                if other != address:
                    mask |= 1 << (copy * 32 + other)
        assert lut.read(address, mask) == table.lookup(address)


class TestPaperHammingSemantics:
    """The paper-calibrated output-corrector decoder (scheme 'hamming')."""

    def test_addressed_bit_fault_corrected(self):
        table = xor5_table()
        lut = CodedLUT(table, "hamming")
        from repro.coding.hamming import HammingCode

        code = HammingCode(16)
        for address in (0, 15, 16, 31):
            block = address // 16
            stored_bit = 42 * 0 + block * 21 + code.data_positions[address % 16]
            # One fault exactly on the addressed stored bit: corrected.
            assert lut.read(address, 1 << stored_bit) == table.lookup(address)

    def test_check_bit_fault_false_positive(self):
        """A single fault on a check bit flips the output: the paper's
        'false positives caused by errors in bits which are not
        addressed'."""
        table = xor5_table()
        lut = CodedLUT(table, "hamming")
        from repro.coding.hamming import HammingCode

        code = HammingCode(16)
        address = 3  # block 0
        check_idx = code.check_positions[0]
        assert (
            lut.read(address, 1 << check_idx)
            == table.lookup(address) ^ 1
        )

    def test_other_data_bit_fault_harmless(self):
        """A single fault on a different data bit of the block is
        corrected in place and leaves the output alone."""
        table = xor5_table()
        lut = CodedLUT(table, "hamming")
        from repro.coding.hamming import HammingCode

        code = HammingCode(16)
        address = 3
        other_idx = code.data_positions[7]  # same block, different payload bit
        assert lut.read(address, 1 << other_idx) == table.lookup(address)

    def test_other_block_fault_invisible(self):
        table = xor5_table()
        lut = CodedLUT(table, "hamming")
        address = 3  # block 0; corrupt bits only in block 1's stored range
        mask = ((1 << 21) - 1) << 21
        assert lut.read(address, mask) == table.lookup(address)


class TestTextbookHammingSemantics:
    """Scheme 'hamming-sec': clean positional correction, no false
    positives."""

    def test_any_single_fault_harmless(self):
        table = xor5_table()
        lut = CodedLUT(table, "hamming-sec")
        for address in (0, 17):
            for site in range(42):
                assert lut.read(address, 1 << site) == table.lookup(address), (
                    f"site {site} corrupted address {address}"
                )


class TestPessimisticHammingSemantics:
    """Scheme 'hamming-fp': any nonzero syndrome flips the output."""

    def test_any_single_block_fault_flips_unless_addressed(self):
        table = xor5_table()
        lut = CodedLUT(table, "hamming-fp")
        from repro.coding.hamming import HammingCode

        code = HammingCode(16)
        address = 3
        addressed_idx = code.data_positions[3]
        for site in range(21):  # block 0 stored bits
            got = lut.read(address, 1 << site)
            if site == addressed_idx:
                assert got == table.lookup(address)  # flip corrects it
            else:
                assert got == table.lookup(address) ^ 1


class TestTracedReads:
    def test_trace_records_correction(self):
        lut = CodedLUT(xor5_table(), "hamming")
        from repro.coding.hamming import HammingCode

        code = HammingCode(16)
        trace = lut.read_traced(3, 1 << code.check_positions[1])
        assert trace.outcome is DecodeOutcome.CORRECTED
        assert trace.observable_error

    def test_trace_tmr(self):
        lut = CodedLUT(xor5_table(), "tmr")
        trace = lut.read_traced(3, 1 << 3)
        assert trace.outcome is DecodeOutcome.CORRECTED
        assert not trace.observable_error
