"""Unit tests for the netlist builders, including Table 2 node counts."""

import itertools

import pytest

from repro.logic.builders import (
    CMOS_ALU_NODE_COUNT,
    CMOS_ALU_NODES_PER_SLICE,
    CMOS_VOTER_NODE_COUNT,
    build_cmos_alu,
    build_cmos_voter,
    build_full_adder,
    build_majority3,
)
from repro.logic.netlist import Netlist


class TestFullAdder:
    def test_exhaustive(self):
        net = Netlist()
        a, b, c = net.input("a"), net.input("b"), net.input("c")
        total, cout, _ = build_full_adder(net, a, b, c, "fa")
        net.set_output("s", total)
        net.set_output("co", cout)
        for bits in itertools.product((0, 1), repeat=3):
            out = net.evaluate(dict(zip("abc", bits)))
            expected = sum(bits)
            assert out["s"] == expected & 1
            assert out["co"] == (expected >> 1) & 1

    def test_node_cost(self):
        net = Netlist()
        a, b, c = net.input("a"), net.input("b"), net.input("c")
        build_full_adder(net, a, b, c, "fa")
        assert net.node_count == 5


class TestMajority3:
    @pytest.mark.parametrize("buffered,expected_nodes", [(True, 9), (False, 5)])
    def test_truth_table_and_cost(self, buffered, expected_nodes):
        net = Netlist()
        x, y, z = net.input("x"), net.input("y"), net.input("z")
        maj = build_majority3(net, x, y, z, "m", buffered=buffered)
        net.set_output("m", maj)
        assert net.node_count == expected_nodes
        for bits in itertools.product((0, 1), repeat=3):
            out = net.evaluate(dict(zip("xyz", bits)))
            assert out["m"] == (1 if sum(bits) >= 2 else 0)


class TestCMOSALU:
    def test_paper_node_count(self):
        net = build_cmos_alu(8)
        assert net.node_count == CMOS_ALU_NODE_COUNT == 192

    def test_per_slice_constant(self):
        assert CMOS_ALU_NODES_PER_SLICE == 24
        for width in (1, 2, 4, 8):
            assert build_cmos_alu(width).node_count == width * 24

    def test_functional_and(self):
        net = build_cmos_alu(8)
        out = _run(net, 0b000, 0xCC, 0xAA)
        assert out["out"] == 0xCC & 0xAA
        assert out["carry"] == 0

    def test_functional_or(self):
        net = build_cmos_alu(8)
        assert _run(net, 0b001, 0xCC, 0xAA)["out"] == 0xCC | 0xAA

    def test_functional_xor(self):
        net = build_cmos_alu(8)
        assert _run(net, 0b010, 0xCC, 0xAA)["out"] == 0xCC ^ 0xAA

    def test_functional_add_with_carry(self):
        net = build_cmos_alu(8)
        out = _run(net, 0b111, 200, 100)
        assert out["out"] == (200 + 100) & 0xFF
        assert out["carry"] == 1

    def test_add_no_carry(self):
        net = build_cmos_alu(8)
        out = _run(net, 0b111, 10, 20)
        assert out["out"] == 30
        assert out["carry"] == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_cmos_alu(0)


class TestCMOSVoter:
    def test_paper_node_count(self):
        net = build_cmos_voter(9)
        assert net.node_count == CMOS_VOTER_NODE_COUNT == 81

    def test_votes_bitwise(self):
        net = build_cmos_voter(4)
        inputs = {}
        x, y, z = 0b1100, 0b1010, 0b1001
        for i in range(4):
            inputs[f"x{i}"] = (x >> i) & 1
            inputs[f"y{i}"] = (y >> i) & 1
            inputs[f"z{i}"] = (z >> i) & 1
        out = net.evaluate_bus(inputs, ("v",))
        assert out["v"] == 0b1000

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_cmos_voter(-1)


def _run(net, op, a, b):
    inputs = {}
    for i in range(8):
        inputs[f"a{i}"] = (a >> i) & 1
        inputs[f"b{i}"] = (b >> i) & 1
    for j in range(3):
        inputs[f"op{j}"] = (op >> j) & 1
    return net.evaluate_bus(inputs, ("out",))
