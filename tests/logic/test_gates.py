"""Unit tests for gate primitives."""

import pytest

from repro.logic.gates import Gate, GateType, Signal, SignalKind, evaluate_gate


def sig(n):
    return Signal(SignalKind.INPUT, n, f"in{n}")


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "gate_type,bits,expected",
        [
            (GateType.AND, (1, 1), 1),
            (GateType.AND, (1, 0), 0),
            (GateType.AND, (1, 1, 1), 1),
            (GateType.AND, (1, 1, 0), 0),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.OR, (0, 0, 0), 0),
            (GateType.XOR, (1, 1), 0),
            (GateType.XOR, (1, 0), 1),
            (GateType.XOR, (1, 1, 1), 1),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.NOT, (0,), 1),
            (GateType.NOT, (1,), 0),
            (GateType.BUF, (1,), 1),
            (GateType.BUF, (0,), 0),
        ],
    )
    def test_truth_tables(self, gate_type, bits, expected):
        assert evaluate_gate(gate_type, bits) == expected


class TestGateValidation:
    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateType.NOT, (sig(0), sig(1)), 0)
        with pytest.raises(ValueError):
            Gate(GateType.BUF, (), 0)

    def test_symmetric_gates_need_two_inputs(self):
        with pytest.raises(ValueError):
            Gate(GateType.AND, (sig(0),), 0)

    def test_valid_construction(self):
        gate = Gate(GateType.AND, (sig(0), sig(1)), 7, "g")
        assert gate.index == 7
        assert gate.name == "g"
