"""Behavioural fault-injection tests on the CMOS circuits (Figure 6b)."""

import numpy as np

from repro.logic.builders import build_cmos_alu
from repro.logic.netlist import Netlist


def _run(net, op, a, b, mask=0):
    inputs = {}
    for i in range(8):
        inputs[f"a{i}"] = (a >> i) & 1
        inputs[f"b{i}"] = (b >> i) & 1
    for j in range(3):
        inputs[f"op{j}"] = (op >> j) & 1
    return net.evaluate_bus(inputs, ("out",), mask)


class TestCMOSFaultBehaviour:
    def test_every_node_is_observable_somewhere(self):
        """Each of the 192 nodes must change at least one output for at
        least one input vector -- no dead fault sites."""
        net = build_cmos_alu(8)
        vectors = [
            (0b000, 0xFF, 0xFF),
            (0b000, 0x00, 0xFF),
            (0b001, 0x00, 0x00),
            (0b001, 0xAA, 0x00),
            (0b010, 0xAA, 0x55),
            (0b010, 0x00, 0x00),
            (0b111, 0x00, 0x00),
            (0b111, 0xFF, 0x01),
            (0b111, 0x5A, 0xA5),
        ]
        clean = {v: _run(net, *v) for v in vectors}
        for node in range(net.node_count):
            mask = 1 << node
            observable = any(
                _run(net, *v, mask=mask) != clean[v] for v in vectors
            )
            assert observable, f"node {node} never observable"

    def test_masked_faults_exist(self):
        """Some injected faults must be logically masked (the paper's
        AND-gate example: a fault on one input of an AND whose other
        input is 0 cannot propagate)."""
        net = build_cmos_alu(8)
        clean = _run(net, 0b000, 0x00, 0x00)
        masked = sum(
            1
            for node in range(net.node_count)
            if _run(net, 0b000, 0x00, 0x00, mask=1 << node) == clean
        )
        assert masked > 0

    def test_fresh_mask_per_computation_model(self, rng):
        """Random masks produce varying-but-deterministic corruption."""
        net = build_cmos_alu(8)
        rng_local = np.random.default_rng(3)
        outcomes = set()
        for _ in range(20):
            nodes = rng_local.choice(net.node_count, size=4, replace=False)
            mask = 0
            for n in nodes:
                mask |= 1 << int(n)
            outcomes.add(_run(net, 0b111, 0x3C, 0xC3, mask=mask)["out"])
        assert len(outcomes) > 1

    def test_high_density_faults_destroy_output(self):
        """At 50% node corruption the ALU should essentially never be
        right -- matches the near-zero tail of Figure 7's aluncmos."""
        net = build_cmos_alu(8)
        rng_local = np.random.default_rng(4)
        correct = 0
        trials = 40
        for _ in range(trials):
            nodes = rng_local.choice(net.node_count, size=96, replace=False)
            mask = 0
            for n in nodes:
                mask |= 1 << int(n)
            if _run(net, 0b010, 0x12, 0x34, mask=mask)["out"] == 0x12 ^ 0x34:
                correct += 1
        assert correct <= 2
