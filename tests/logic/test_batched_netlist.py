"""BatchedNetlist must mirror Netlist.evaluate bit-for-bit under faults."""

import numpy as np
import pytest

from repro.logic.batched import BatchedNetlist
from repro.logic.builders import build_cmos_alu, build_cmos_voter


def _random_batch(netlist, n, rng):
    """Random input bits and per-node fault flags for ``n`` evaluations."""
    inputs = {
        name: rng.integers(0, 2, size=n, dtype=np.uint8)
        for name in netlist.input_names
    }
    fault_bits = (rng.random((n, netlist.node_count)) < 0.05).astype(np.uint8)
    return inputs, fault_bits


@pytest.mark.parametrize("builder", [build_cmos_voter, build_cmos_alu])
def test_matches_scalar_evaluator(builder):
    netlist = builder()
    batched = BatchedNetlist(netlist)
    rng = np.random.default_rng(42)
    inputs, fault_bits = _random_batch(netlist, 64, rng)
    got = batched.evaluate(inputs, fault_bits)
    for row in range(64):
        mask = 0
        for node in range(netlist.node_count):
            mask |= int(fault_bits[row, node]) << node
        scalar = netlist.evaluate(
            {name: int(bits[row]) for name, bits in inputs.items()}, mask
        )
        for name, value in scalar.items():
            assert int(got[name][row]) == value, (builder.__name__, name, row)


def test_evaluate_bus_packs_like_scalar():
    netlist = build_cmos_alu()
    batched = BatchedNetlist(netlist)
    rng = np.random.default_rng(7)
    inputs, fault_bits = _random_batch(netlist, 16, rng)
    got = batched.evaluate_bus(inputs, ("out",), fault_bits)
    for row in range(16):
        mask = 0
        for node in range(netlist.node_count):
            mask |= int(fault_bits[row, node]) << node
        scalar = netlist.evaluate_bus(
            {name: int(bits[row]) for name, bits in inputs.items()},
            ("out",),
            mask,
        )
        assert int(got["out"][row]) == scalar["out"]
        assert int(got["carry"][row]) == scalar["carry"]


def test_evaluate_bus_missing_prefix_raises():
    netlist = build_cmos_voter()
    batched = BatchedNetlist(netlist)
    inputs = {
        name: np.zeros(2, dtype=np.uint8) for name in netlist.input_names
    }
    fault_bits = np.zeros((2, netlist.node_count), dtype=np.uint8)
    with pytest.raises(KeyError):
        batched.evaluate_bus(inputs, ("nope",), fault_bits)
