"""Unit tests for the combinational netlist simulator."""

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


def build_xor_from_nands():
    """Classic 4-NAND XOR used as a known-good circuit."""
    net = Netlist("xor4nand")
    a = net.input("a")
    b = net.input("b")
    n1 = net.add(GateType.NAND, a, b)
    n2 = net.add(GateType.NAND, a, n1)
    n3 = net.add(GateType.NAND, b, n1)
    out = net.add(GateType.NAND, n2, n3)
    net.set_output("y", out)
    return net


class TestBuild:
    def test_duplicate_input_rejected(self):
        net = Netlist()
        net.input("a")
        with pytest.raises(ValueError, match="duplicate input"):
            net.input("a")

    def test_duplicate_output_rejected(self):
        net = Netlist()
        a = net.input("a")
        net.set_output("y", a)
        with pytest.raises(ValueError, match="duplicate output"):
            net.set_output("y", a)

    def test_forward_reference_rejected(self):
        from repro.logic.gates import Signal, SignalKind

        net = Netlist()
        a = net.input("a")
        ghost = Signal(SignalKind.GATE, 5, "ghost")
        with pytest.raises(ValueError, match="not yet defined"):
            net.add(GateType.AND, a, ghost)

    def test_const_validation(self):
        net = Netlist()
        with pytest.raises(ValueError):
            net.const(2)

    def test_node_count(self):
        net = build_xor_from_nands()
        assert net.node_count == 4

    def test_gate_histogram(self):
        net = build_xor_from_nands()
        assert net.gate_histogram() == {"nand": 4}


class TestEvaluate:
    def test_xor_truth_table(self):
        net = build_xor_from_nands()
        for a in (0, 1):
            for b in (0, 1):
                assert net.evaluate({"a": a, "b": b})["y"] == a ^ b

    def test_missing_input(self):
        net = build_xor_from_nands()
        with pytest.raises(KeyError):
            net.evaluate({"a": 1})

    def test_non_binary_input(self):
        net = build_xor_from_nands()
        with pytest.raises(ValueError):
            net.evaluate({"a": 2, "b": 0})

    def test_const_signals(self):
        net = Netlist()
        a = net.input("a")
        out = net.add(GateType.AND, a, net.const(1))
        net.set_output("y", out)
        assert net.evaluate({"a": 1})["y"] == 1
        net2 = Netlist()
        a2 = net2.input("a")
        out2 = net2.add(GateType.OR, a2, net2.const(0))
        net2.set_output("y", out2)
        assert net2.evaluate({"a": 0})["y"] == 0


class TestFaultInjection:
    def test_single_node_flip_propagates(self):
        net = build_xor_from_nands()
        clean = net.evaluate({"a": 1, "b": 0})["y"]
        # Flipping the output NAND (node 3) must invert the result.
        faulty = net.evaluate({"a": 1, "b": 0}, fault_mask=1 << 3)["y"]
        assert faulty == clean ^ 1

    def test_internal_node_flip_changes_output(self):
        net = build_xor_from_nands()
        # With a=1, b=1: n1=0, n2=1, n3=1, y=0.  Flipping n1 makes
        # n2=nand(1,1)=0, n3=0, y=1.
        assert net.evaluate({"a": 1, "b": 1}, fault_mask=1 << 0)["y"] == 1

    def test_mask_beyond_nodes_ignored_gracefully(self):
        net = build_xor_from_nands()
        # Bits above node_count simply have no effect.
        clean = net.evaluate({"a": 0, "b": 1})["y"]
        assert net.evaluate({"a": 0, "b": 1}, fault_mask=1 << 40)["y"] == clean

    def test_double_flip_cancels_on_same_path(self):
        net = Netlist()
        a = net.input("a")
        b1 = net.add(GateType.BUF, a)
        b2 = net.add(GateType.BUF, b1)
        net.set_output("y", b2)
        # Flipping both buffers restores the value.
        assert net.evaluate({"a": 1}, fault_mask=0b11)["y"] == 1
        assert net.evaluate({"a": 1}, fault_mask=0b01)["y"] == 0


class TestEvaluateBus:
    def test_packs_bus_outputs(self):
        net = Netlist()
        a = net.input("a")
        n = net.add(GateType.NOT, a)
        net.set_output("v0", a)
        net.set_output("v1", n)
        net.set_output("flag", n)
        out = net.evaluate_bus({"a": 1}, ("v",))
        assert out["v"] == 0b01
        assert out["flag"] == 0

    def test_unknown_prefix(self):
        net = Netlist()
        a = net.input("a")
        net.set_output("y", a)
        with pytest.raises(KeyError):
            net.evaluate_bus({"a": 0}, ("v",))
