"""Shared fixtures for the NanoBox test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads


@pytest.fixture
def rng():
    """Deterministic NumPy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper_bitmap():
    """The 64-pixel gradient bitmap used as the default workload image."""
    return gradient(8, 8)


@pytest.fixture(scope="session")
def paper_instruction_streams(paper_bitmap):
    """Compiled reverse-video + hue-shift instruction streams."""
    return paper_workloads(paper_bitmap)


#: Representative operand pairs exercising corner values and mixed bits.
OPERAND_CASES = [
    (0x00, 0x00),
    (0xFF, 0xFF),
    (0xAA, 0x55),
    (0x0F, 0xF0),
    (0x01, 0xFF),
    (0x80, 0x80),
    (0xC8, 0x64),
    (0x3C, 0xA7),
]
