"""Meta-test: every benchmark honours ``REPRO_BENCH_SMOKE``.

``nanobox-repro bench run --smoke`` (and the CI smoke jobs) rely on two
levers to finish fast:

* benchmarks that size their own workloads -- anything calling
  ``benchmark.pedantic`` -- must consult the smoke machinery from
  ``benchmarks/conftest.py`` (``SMOKE``, ``scaled``, or the smoke-aware
  ``BENCH_TRIALS`` / ``BENCH_PERCENTS`` constants), or read the
  environment variable directly;
* auto-calibrated benchmarks (plain ``benchmark(...)``) are governed
  globally by the conftest's ``pytest_configure`` hook, which caps
  calibration at one round under smoke.

This test pins both conventions so a new benchmark that ignores the
flag fails CI immediately instead of silently slowing the smoke job.
"""

import re
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"

#: Any of these in a module's source counts as consulting the flag.
SMOKE_TOKENS = re.compile(
    r"\b(SMOKE|scaled|BENCH_TRIALS|BENCH_PERCENTS|REPRO_BENCH_SMOKE)\b"
)

BENCH_SCRIPTS = sorted(BENCH_DIR.glob("bench_*.py"))


def test_benchmark_scripts_were_discovered():
    """Guard against the glob silently matching nothing."""
    assert len(BENCH_SCRIPTS) >= 30


@pytest.mark.parametrize(
    "script", BENCH_SCRIPTS, ids=lambda path: path.stem
)
def test_benchmark_honours_smoke_flag(script):
    source = script.read_text()
    if ".pedantic(" not in source:
        # Auto-calibrated: rounds are capped by the conftest hook.
        return
    assert SMOKE_TOKENS.search(source), (
        f"{script.name} sizes its own workload (benchmark.pedantic) but "
        f"never consults the smoke machinery; import SMOKE/scaled from "
        f"benchmarks.conftest and shrink its workload knobs under smoke"
    )


def test_conftest_defines_the_smoke_lever():
    source = (BENCH_DIR / "conftest.py").read_text()
    assert 'os.environ.get("REPRO_BENCH_SMOKE")' in source
    assert "def scaled(" in source
    # The global cap on auto-calibrated benchmarks must stay in place.
    assert "benchmark_min_rounds" in source
