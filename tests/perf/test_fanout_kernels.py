"""Zero-copy fan-out: items ship as specs, not arrays.

Satellite regression tests for the compiled-tier PR: a sweep work item
must pickle to O(spec) bytes regardless of trial count or unit size;
workers cache built engines per ALU spec; and a parallel compiled run
is byte-identical to a serial scalar one.
"""

import pickle

import pytest

from repro.experiments.figures import _sweep_items, run_figure
from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec
from repro.perf.executor import (
    _WORKER_UNITS,
    CampaignExecutor,
    _execute_item,
)

#: Generous ceiling for one pickled work item.  An item that ships a
#: mask array (site_count x trials bits) or a pixel payload blows well
#: past this; a pure spec is a few hundred bytes.
ITEM_PICKLE_BUDGET = 1024


class TestPickleSize:
    @pytest.mark.parametrize("variant", ["alunn", "aluss"])  # small, largest
    @pytest.mark.parametrize("trials", [1, 500])
    def test_item_pickles_under_budget(self, variant, trials):
        item = CampaignWorkItem(
            alu=ALUSpec.variant(variant),
            policy=PolicySpec.exact(0.03),
            trials_per_workload=trials,
        )
        size = len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        assert size < ITEM_PICKLE_BUDGET, (
            f"work item pickles to {size}B; payload must stay O(spec), "
            f"independent of trials ({trials}) and unit size ({variant})"
        )

    def test_item_size_independent_of_scale(self):
        """Doubling trials or unit size must not grow the payload."""
        def size(variant, trials):
            return len(pickle.dumps(CampaignWorkItem(
                alu=ALUSpec.variant(variant),
                policy=PolicySpec.exact(0.03),
                trials_per_workload=trials,
            )))

        # A bigger trial count may cost a few bytes of varint, never a
        # payload; unit size must not show up at all.
        assert size("aluss", 1000) - size("aluss", 1) <= 8
        assert abs(size("aluss", 5) - size("alunn", 5)) <= 8

    def test_default_sweep_ships_no_bitmap(self):
        """Figure sweeps over the default gradient ship bitmap=None; the
        worker rebuilds the 8x8 gradient locally."""
        items = _sweep_items(
            ("alunn",), (0, 3.0), None, 5, 2004, True, "auto"
        )
        assert all(item.bitmap is None for item in items)
        chunk_size = len(pickle.dumps(items))
        assert chunk_size < ITEM_PICKLE_BUDGET * len(items)


class TestWorkerEngineCache:
    def test_engines_cached_per_spec(self):
        _WORKER_UNITS.clear()
        spec = ALUSpec.variant("alunn")
        item = CampaignWorkItem(
            alu=spec,
            policy=PolicySpec.exact(0.02),
            trials_per_workload=1,
            backend="compiled",
        )
        first = _execute_item(item)
        assert spec in _WORKER_UNITS
        unit, engines = _WORKER_UNITS[spec]
        assert "compiled" in engines and engines["compiled"] is not None
        # A second item over the same spec reuses unit and engines.
        second = _execute_item(item)
        assert _WORKER_UNITS[spec][0] is unit
        assert first.trials == second.trials

    def test_by_seed_vs_with_array_counters(self):
        from repro.obs import Observer, observing
        from repro.workloads.bitmap import gradient

        obs = Observer()
        spec_item = CampaignWorkItem(
            alu=ALUSpec.variant("alunn"),
            policy=PolicySpec.exact(0.0),
            trials_per_workload=1,
        )
        array_item = CampaignWorkItem(
            alu=ALUSpec.variant("alunn"),
            policy=PolicySpec.exact(0.0),
            trials_per_workload=1,
            bitmap=gradient(4, 4),
        )
        with observing(obs):
            _execute_item(spec_item)
            _execute_item(array_item)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["kernel.items_by_seed"] == 1
        assert counters["kernel.items_with_array"] == 1


class TestParallelCompiledIdentity:
    def test_jobs_n_byte_identity_across_backends(self):
        """run_figure(jobs=2, compiled) == run_figure(jobs=1, scalar)."""
        percents = (0, 2.0, 30.0)
        kwargs = dict(
            fault_percents=percents, trials_per_workload=2, seed=11
        )
        serial_scalar = run_figure(
            "figure7", jobs=1, backend="scalar", **kwargs
        )
        parallel_compiled = run_figure(
            "figure7", jobs=2, backend="compiled", **kwargs
        )
        assert serial_scalar.to_text() == parallel_compiled.to_text()
        assert serial_scalar.points == parallel_compiled.points

    def test_executor_order_stable_with_mixed_chunks(self):
        items = [
            CampaignWorkItem(
                alu=ALUSpec.variant("alunn"),
                policy=PolicySpec.exact(p / 100.0),
                trials_per_workload=1,
                backend="compiled",
            )
            for p in (0, 1, 2, 3)
        ]
        serial = CampaignExecutor(jobs=1).run(items)
        parallel = CampaignExecutor(jobs=2, chunk_size=1).run(items)
        assert [r.trials for r in serial] == [r.trials for r in parallel]
