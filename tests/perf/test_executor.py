"""Tests for the parallel campaign executor and its picklable work specs."""

import pytest

from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU
from repro.faults.mask import BernoulliMask, BurstMask, ExactFractionMask
from repro.perf import (
    ALUSpec,
    CampaignExecutor,
    CampaignWorkItem,
    PolicySpec,
    run_campaign_items,
)


class TestALUSpec:
    def test_variant_builds_named_alu(self):
        alu = ALUSpec.variant("alunn").build()
        assert alu.site_count == 512

    def test_variant_requires_name(self):
        with pytest.raises(ValueError):
            ALUSpec(kind="variant")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ALUSpec(kind="quantum", name="x")

    def test_simplex_builds_wrapped_nanobox(self):
        alu = ALUSpec.simplex("hamming", label="lab").build()
        assert isinstance(alu, SimplexALU)
        assert isinstance(alu.core, NanoBoxALU)
        assert alu.site_space.name == "lab"

    def test_space_builds_redundant_alu(self):
        alu = ALUSpec.space("tmr", "cmos", label="sp").build()
        assert isinstance(alu, SpaceRedundantALU)

    def test_specs_are_hashable(self):
        assert len({ALUSpec.variant("alunn"), ALUSpec.variant("alunn")}) == 1


class TestPolicySpec:
    def test_exact(self):
        policy = PolicySpec.exact(0.25).build()
        assert isinstance(policy, ExactFractionMask)
        assert policy.fraction == 0.25

    def test_bernoulli(self):
        policy = PolicySpec.bernoulli(0.1).build()
        assert isinstance(policy, BernoulliMask)
        assert policy.probability == 0.1

    def test_burst(self):
        policy = PolicySpec(kind="burst", value=0.1, burst_length=3).build()
        assert isinstance(policy, BurstMask)
        assert policy.burst_length == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec(kind="gaussian", value=0.1)


def _items():
    return [
        CampaignWorkItem(
            alu=ALUSpec.variant(variant),
            policy=PolicySpec.exact(fraction),
            trials_per_workload=2,
            seed=77,
        )
        for variant in ("alunn", "alunh")
        for fraction in (0.0, 0.02)
    ]


class TestCampaignExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignExecutor(jobs=0)

    def test_serial_results_ordered(self):
        results = CampaignExecutor(jobs=1).run(_items())
        assert len(results) == 4
        # fraction 0.0 items (indices 0 and 2) are always fully correct
        assert results[0].percent_correct == 100.0
        assert results[2].percent_correct == 100.0

    def test_parallel_matches_serial(self):
        items = _items()
        serial = CampaignExecutor(jobs=1).run(items)
        parallel = CampaignExecutor(jobs=2).run(items)
        assert serial == parallel

    def test_explicit_chunk_size(self):
        items = _items()
        chunked = CampaignExecutor(jobs=2, chunk_size=3).run(items)
        assert chunked == CampaignExecutor(jobs=1).run(items)

    def test_chunksize_heuristic(self):
        executor = CampaignExecutor(jobs=4)
        assert executor._chunksize_for(100) == 100 // 16
        assert executor._chunksize_for(3) == 1

    def test_run_campaign_items_helper(self):
        items = _items()[:2]
        assert run_campaign_items(items) == CampaignExecutor(jobs=1).run(items)

    def test_empty_item_list(self):
        assert CampaignExecutor(jobs=2).run([]) == []
