"""Tests for the parallel campaign executor and its picklable work specs."""

import multiprocessing
import os
import time

import pytest

from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU
from repro.faults.mask import BernoulliMask, BurstMask, ExactFractionMask
from repro.perf import (
    ALUSpec,
    CampaignExecutionError,
    CampaignExecutor,
    CampaignWorkItem,
    ExecutorStats,
    PolicySpec,
    run_campaign_items,
)
from repro.perf.executor import _execute_chunk

#: Sentinel path used by the crashing worker; set per-test, inherited by
#: forked pool workers.
_CRASH_SENTINEL = None


def _crash_once_then_run(items):
    """Worker fn that hard-kills its process the first time it runs.

    The sentinel file is created atomically, so exactly one worker dies
    (taking the whole pool with it); every later attempt -- including
    the executor's resubmission after the pool rebuild -- runs the chunk
    normally.  ``os._exit`` bypasses all cleanup, faithfully mimicking
    an OOM kill or segfault.
    """
    try:
        open(_CRASH_SENTINEL, "x").close()
    except FileExistsError:
        return _execute_chunk(items)
    os._exit(1)


def _crash_always(items):
    """Worker fn that always dies -- exhausts any retry budget."""
    os._exit(1)


def _hang_once_then_run(items):
    """Worker fn that wedges on the first attempt, then runs normally."""
    try:
        open(_CRASH_SENTINEL, "x").close()
    except FileExistsError:
        return _execute_chunk(items)
    time.sleep(300)


def _raise_keyboard_interrupt(items):
    """Worker fn standing in for Ctrl-C landing in a pool worker."""
    raise KeyboardInterrupt


class TestALUSpec:
    def test_variant_builds_named_alu(self):
        alu = ALUSpec.variant("alunn").build()
        assert alu.site_count == 512

    def test_variant_requires_name(self):
        with pytest.raises(ValueError):
            ALUSpec(kind="variant")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ALUSpec(kind="quantum", name="x")

    def test_simplex_builds_wrapped_nanobox(self):
        alu = ALUSpec.simplex("hamming", label="lab").build()
        assert isinstance(alu, SimplexALU)
        assert isinstance(alu.core, NanoBoxALU)
        assert alu.site_space.name == "lab"

    def test_space_builds_redundant_alu(self):
        alu = ALUSpec.space("tmr", "cmos", label="sp").build()
        assert isinstance(alu, SpaceRedundantALU)

    def test_specs_are_hashable(self):
        assert len({ALUSpec.variant("alunn"), ALUSpec.variant("alunn")}) == 1


class TestPolicySpec:
    def test_exact(self):
        policy = PolicySpec.exact(0.25).build()
        assert isinstance(policy, ExactFractionMask)
        assert policy.fraction == 0.25

    def test_bernoulli(self):
        policy = PolicySpec.bernoulli(0.1).build()
        assert isinstance(policy, BernoulliMask)
        assert policy.probability == 0.1

    def test_burst(self):
        policy = PolicySpec(kind="burst", value=0.1, burst_length=3).build()
        assert isinstance(policy, BurstMask)
        assert policy.burst_length == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec(kind="gaussian", value=0.1)


def _items():
    return [
        CampaignWorkItem(
            alu=ALUSpec.variant(variant),
            policy=PolicySpec.exact(fraction),
            trials_per_workload=2,
            seed=77,
        )
        for variant in ("alunn", "alunh")
        for fraction in (0.0, 0.02)
    ]


class TestCampaignExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignExecutor(jobs=0)

    def test_serial_results_ordered(self):
        results = CampaignExecutor(jobs=1).run(_items())
        assert len(results) == 4
        # fraction 0.0 items (indices 0 and 2) are always fully correct
        assert results[0].percent_correct == 100.0
        assert results[2].percent_correct == 100.0

    def test_parallel_matches_serial(self):
        items = _items()
        serial = CampaignExecutor(jobs=1).run(items)
        parallel = CampaignExecutor(jobs=2).run(items)
        assert serial == parallel

    def test_explicit_chunk_size(self):
        items = _items()
        chunked = CampaignExecutor(jobs=2, chunk_size=3).run(items)
        assert chunked == CampaignExecutor(jobs=1).run(items)

    def test_chunksize_heuristic(self):
        executor = CampaignExecutor(jobs=4)
        assert executor._chunksize_for(100) == 100 // 16
        assert executor._chunksize_for(3) == 1

    def test_run_campaign_items_helper(self):
        items = _items()[:2]
        assert run_campaign_items(items) == CampaignExecutor(jobs=1).run(items)

    def test_empty_item_list(self):
        assert CampaignExecutor(jobs=2).run([]) == []

    def test_run_with_stats_serial(self):
        results, stats = CampaignExecutor(jobs=1).run_with_stats(_items())
        assert len(results) == 4
        assert stats == ExecutorStats(chunks=0, retries=0, pool_rebuilds=0)

    def test_run_with_stats_parallel_clean(self):
        executor = CampaignExecutor(jobs=2, chunk_size=1)
        results, stats = executor.run_with_stats(_items())
        assert results == CampaignExecutor(jobs=1).run(_items())
        assert stats.chunks == 4
        assert stats.retries == 0
        assert stats.pool_rebuilds == 0
        assert executor.last_stats is stats

    def test_invalid_retry_and_timeout_args(self):
        with pytest.raises(ValueError):
            CampaignExecutor(jobs=2, max_retries=-1)
        with pytest.raises(ValueError):
            CampaignExecutor(jobs=2, chunk_timeout=0)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting the sentinel path",
)
class TestWorkerDeathRecovery:
    """The executor must survive a worker process dying mid-campaign."""

    def _crashing_executor(self, tmp_path, worker_fn, **kwargs):
        global _CRASH_SENTINEL
        _CRASH_SENTINEL = str(tmp_path / "crashed")
        executor = CampaignExecutor(jobs=2, chunk_size=2, **kwargs)
        executor._chunk_fn = worker_fn
        return executor

    def test_recovers_from_worker_crash(self, tmp_path):
        items = _items()
        serial = CampaignExecutor(jobs=1).run(items)
        executor = self._crashing_executor(tmp_path, _crash_once_then_run)
        results, stats = executor.run_with_stats(items)
        # Output identical to serial despite the dead worker.
        assert results == serial
        assert stats.retries >= 1
        assert stats.pool_rebuilds >= 1

    def test_retry_budget_exhausts(self, tmp_path):
        executor = self._crashing_executor(
            tmp_path, _crash_always, max_retries=1
        )
        with pytest.raises(CampaignExecutionError):
            executor.run(_items())
        assert executor.last_stats.retries >= 2

    def test_recovers_from_hung_worker(self, tmp_path):
        items = _items()[:2]
        serial = CampaignExecutor(jobs=1).run(items)
        executor = self._crashing_executor(
            tmp_path, _hang_once_then_run, chunk_timeout=10
        )
        results, stats = executor.run_with_stats(items)
        assert results == serial
        assert stats.retries >= 1

    def test_keyboard_interrupt_reraised_and_pool_torn_down(self, tmp_path):
        """Ctrl-C must kill the run -- no swallowing, no zombie workers."""
        executor = self._crashing_executor(tmp_path, _raise_keyboard_interrupt)
        with pytest.raises(KeyboardInterrupt):
            executor.run(_items())
        # The pool was discarded with cancel + terminate: every worker
        # exits promptly rather than lingering as a zombie.
        deadline = time.monotonic() + 10
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, "workers still alive"
            time.sleep(0.05)
