"""Tests for the content-addressed, self-verifying checkpoint store.

The corruption matrix is the heart of the crash-safety contract: every
way a record can be wrong -- truncation, bit flips, stale schemas,
foreign configurations, index/kind mixups -- must be *detected*,
*quarantined* (kept as ``*.corrupt`` for post-mortems), and reported as
a miss so the chunk is recomputed.  Corruption must never be trusted.
"""

import json

import pytest

from repro.perf.checkpoint import (
    CHAOS_DISK_FULL_ENV,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    payload_digest,
    quarantined_files,
    run_key_for,
    scan_run_states,
)


def _store(tmp_path, run_key="cafe0123", kind="chunk"):
    return CheckpointStore(tmp_path / "ck", run_key, kind=kind)


class TestRoundTrip:
    def test_save_then_load_hits(self, tmp_path):
        store = _store(tmp_path)
        assert store.save(0, [1, 2, 3])
        payload, hit = store.load(0)
        assert hit
        assert payload == [1, 2, 3]
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_missing_record_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        payload, hit = store.load(7)
        assert not hit
        assert payload is None
        assert store.stats.misses == 1

    def test_completed_indices(self, tmp_path):
        store = _store(tmp_path)
        for index in (3, 0, 5):
            store.save(index, {"i": index})
        assert store.completed_indices() == [0, 3, 5]

    def test_empty_store_has_no_completed_indices(self, tmp_path):
        assert _store(tmp_path).completed_indices() == []

    def test_run_key_required(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, "")

    def test_negative_index_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _store(tmp_path).path_for(-1)

    def test_run_key_for_is_canonical_config_hash(self):
        a = run_key_for({"b": 2, "a": 1})
        b = run_key_for({"a": 1, "b": 2})
        assert a == b
        assert a != run_key_for({"a": 1, "b": 3})


def _corrupt_and_reload(tmp_path, mutate, index=0):
    """Save a record, mutate its file, reload; return (store, payload, hit)."""
    store = _store(tmp_path)
    assert store.save(index, {"value": 42})
    path = store.path_for(index)
    mutate(path)
    payload, hit = store.load(index)
    return store, payload, hit


class TestCorruptionMatrix:
    """Every corruption flavour: detected, quarantined, recomputable."""

    def _assert_quarantined(self, store, payload, hit, reason_fragment):
        assert not hit
        assert payload is None
        assert store.stats.corruptions == 1
        quarantined = list(store.directory.glob("*.corrupt*"))
        assert len(quarantined) == 1
        assert any(
            reason_fragment in reason for reason in store.stats.corrupt_reasons
        ), store.stats.corrupt_reasons

    def test_truncated_record(self, tmp_path):
        def truncate(path):
            path.write_text(path.read_text()[: path.stat().st_size // 2])

        store, payload, hit = _corrupt_and_reload(tmp_path, truncate)
        self._assert_quarantined(store, payload, hit, "undecodable")

    def test_bit_flipped_payload(self, tmp_path):
        def flip(path):
            record = json.loads(path.read_text())
            record["payload"]["value"] = 43  # digest no longer matches
            path.write_text(json.dumps(record))

        store, payload, hit = _corrupt_and_reload(tmp_path, flip)
        self._assert_quarantined(store, payload, hit, "integrity")

    def test_stale_schema_version(self, tmp_path):
        def stale(path):
            record = json.loads(path.read_text())
            record["schema_version"] = CHECKPOINT_SCHEMA_VERSION - 1
            path.write_text(json.dumps(record))

        store, payload, hit = _corrupt_and_reload(tmp_path, stale)
        self._assert_quarantined(store, payload, hit, "stale schema version")

    def test_foreign_schema(self, tmp_path):
        def foreign(path):
            record = json.loads(path.read_text())
            record["schema"] = "somebody.else"
            path.write_text(json.dumps(record))

        store, payload, hit = _corrupt_and_reload(tmp_path, foreign)
        self._assert_quarantined(store, payload, hit, "foreign schema")

    def test_mismatched_run_key(self, tmp_path):
        """A record from a different configuration must never be reused."""
        victim = _store(tmp_path, run_key="cafe0123")
        assert victim.save(0, {"value": 1})
        # Same directory layout, different run: copy the record across.
        imposter = _store(tmp_path, run_key="beef4567")
        imposter.directory.mkdir(parents=True, exist_ok=True)
        imposter.path_for(0).write_text(victim.path_for(0).read_text())
        payload, hit = imposter.load(0)
        self._assert_quarantined(imposter, payload, hit, "config hash mismatch")

    def test_mismatched_chunk_index(self, tmp_path):
        def shift(path):
            record = json.loads(path.read_text())
            record["chunk_index"] = 9
            path.write_text(json.dumps(record))

        store, payload, hit = _corrupt_and_reload(tmp_path, shift)
        self._assert_quarantined(store, payload, hit, "chunk index mismatch")

    def test_mismatched_kind(self, tmp_path):
        store = _store(tmp_path, kind="campaign-results")
        assert store.save(0, {"value": 1})
        other = CheckpointStore(
            tmp_path / "ck", "cafe0123", kind="lifecycle-points"
        )
        payload, hit = other.load(0)
        self._assert_quarantined(other, payload, hit, "payload kind mismatch")

    def test_not_an_object(self, tmp_path):
        def scalar(path):
            path.write_text("[1, 2, 3]")

        store, payload, hit = _corrupt_and_reload(tmp_path, scalar)
        self._assert_quarantined(store, payload, hit, "not a record object")

    def test_missing_payload(self, tmp_path):
        def strip(path):
            record = json.loads(path.read_text())
            del record["payload"]
            path.write_text(json.dumps(record))

        store, payload, hit = _corrupt_and_reload(tmp_path, strip)
        self._assert_quarantined(store, payload, hit, "missing payload")

    def test_quarantine_keeps_corrupt_file_for_postmortem(self, tmp_path):
        def truncate(path):
            path.write_text("{")

        store, _, _ = _corrupt_and_reload(tmp_path, truncate)
        corrupt = list(store.directory.glob("*.corrupt"))
        assert len(corrupt) == 1
        assert corrupt[0].read_text() == "{"
        # The original slot is free again: a recompute can save cleanly.
        assert store.save(0, {"value": 42})
        payload, hit = store.load(0)
        assert hit and payload == {"value": 42}

    def test_repeated_corruption_gets_serial_suffixes(self, tmp_path):
        store = _store(tmp_path)
        for _ in range(2):
            store.save(0, {"value": 1})
            store.path_for(0).write_text("{")
            _, hit = store.load(0)
            assert not hit
        names = sorted(p.name for p in store.directory.glob("*.corrupt*"))
        assert names == [
            "chunk_000000.json.corrupt",
            "chunk_000000.json.corrupt1",
        ]


class TestDiskFullDegradation:
    def test_injected_disk_full_counts_write_errors(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_DISK_FULL_ENV, "2")
        store = _store(tmp_path)
        assert store.save(0, [0])
        assert store.save(1, [1])
        assert not store.save(2, [2])  # degraded, not raised
        assert not store.save(3, [3])
        assert store.stats.writes == 2
        assert store.stats.write_errors == 2
        assert store.completed_indices() == [0, 1]

    def test_unserialisable_payload_still_raises(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(TypeError):
            store.save(0, {"bad": object()})


class TestPayloadDigest:
    def test_digest_is_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_digest_distinguishes_values(self):
        assert payload_digest([1]) != payload_digest([2])


class TestQuarantineCensus:
    def test_absent_root_is_empty(self, tmp_path):
        assert quarantined_files(tmp_path / "nope") == []

    def test_census_finds_corrupt_files_recursively(self, tmp_path):
        def truncate(path):
            path.write_text(path.read_text()[: path.stat().st_size // 2])

        _corrupt_and_reload(tmp_path, truncate)
        found = quarantined_files(tmp_path)
        assert len(found) == 1
        assert found[0].name.endswith(".json.corrupt")

    def test_census_is_sorted_and_ignores_healthy_records(self, tmp_path):
        store = _store(tmp_path)
        for index in range(3):
            store.save(index, [index])
        two = store.path_for(2)
        two.rename(two.with_name(two.name + ".corrupt"))
        one = store.path_for(1)
        one.rename(one.with_name(one.name + ".corrupt1"))
        names = [path.name for path in quarantined_files(tmp_path)]
        assert names == sorted(names)
        assert len(names) == 2 and all(".corrupt" in n for n in names)


class TestScanRunStates:
    def test_absent_root_is_empty(self, tmp_path):
        assert scan_run_states(tmp_path / "nope") == []

    def test_counts_live_chunks_without_state_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", "runa0123")
        store.save(0, [0])
        store.save(1, [1])
        [summary] = scan_run_states(tmp_path / "ck")
        assert summary == {
            "run_key": "runa0123",
            "completed_chunks": 2,
            "total_chunks": None,
            "status": None,
            "corrupt_files": 0,
        }

    def test_merges_state_json_and_counts_quarantine(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", "runb0123")
        store.save(0, [0])
        chunk = store.path_for(0)
        chunk.rename(chunk.with_name(chunk.name + ".corrupt"))
        (store.directory / "state.json").write_text(json.dumps({
            "status": "complete", "total_chunks": 4, "completed_chunks": 4,
        }))
        [summary] = scan_run_states(tmp_path / "ck")
        assert summary["status"] == "complete"
        assert summary["total_chunks"] == 4
        assert summary["completed_chunks"] == 4  # state wins when larger
        assert summary["corrupt_files"] == 1

    def test_torn_state_json_degrades_to_disk_truth(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", "runc0123")
        store.save(0, [0])
        (store.directory / "state.json").write_text('{"status": "compl')
        [summary] = scan_run_states(tmp_path / "ck")
        assert summary["status"] is None
        assert summary["completed_chunks"] == 1

    def test_runs_listed_in_sorted_order(self, tmp_path):
        for key in ("zzzz0000", "aaaa0000"):
            CheckpointStore(tmp_path / "ck", key).save(0, [])
        keys = [s["run_key"] for s in scan_run_states(tmp_path / "ck")]
        assert keys == ["aaaa0000", "zzzz0000"]
