"""End-to-end tests for the process-level chaos harness.

These spawn real ``nanobox-repro`` child processes, kill/hang/corrupt
them, and assert the recovery invariants -- the same checks CI runs.
One shared suite invocation covers every fault mode (each mode's
children are fast: a quick sweep is well under a second).
"""

import pytest

from repro.perf.chaos_exec import (
    CHAOS_MODES,
    ChaosOutcome,
    chaos_exec_report,
    run_chaos_mode,
    run_chaos_suite,
)


@pytest.fixture(scope="module")
def suite_outcomes(tmp_path_factory):
    """Run the full fault-mode suite once; every test inspects it."""
    workdir = tmp_path_factory.mktemp("chaos-suite")
    return run_chaos_suite(workdir=workdir, seed=11, timeout=120.0)


class TestChaosSuite:
    def test_every_mode_ran(self, suite_outcomes):
        assert tuple(o.mode for o in suite_outcomes) == CHAOS_MODES

    @pytest.mark.parametrize("mode", CHAOS_MODES)
    def test_mode_recovered_with_identical_output(self, suite_outcomes, mode):
        outcome = next(o for o in suite_outcomes if o.mode == mode)
        assert outcome.recovered, outcome
        assert outcome.byte_identical, outcome

    def test_kill_mode_reused_surviving_checkpoints(self, suite_outcomes):
        kill = next(o for o in suite_outcomes if o.mode == "kill")
        # SIGKILL lands after chunk 1's checkpoint: exactly two chunks
        # survive and are reused on resume.
        assert kill.reused_chunks == 2
        assert kill.total_chunks > kill.reused_chunks

    def test_corrupt_mode_quarantined_both_records(self, suite_outcomes):
        corrupt = next(o for o in suite_outcomes if o.mode == "corrupt")
        assert corrupt.quarantined == 2
        assert corrupt.reused_chunks == corrupt.total_chunks - 2

    def test_deadline_mode_reused_nothing_then_completed(
        self, suite_outcomes
    ):
        deadline = next(o for o in suite_outcomes if o.mode == "deadline")
        assert deadline.reused_chunks == 0

    def test_report_is_deterministic_text(self, suite_outcomes):
        report = chaos_exec_report(suite_outcomes)
        assert report == chaos_exec_report(list(suite_outcomes))
        for mode in CHAOS_MODES:
            assert mode in report


class TestHarnessPlumbing:
    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            run_chaos_mode("meteor-strike", tmp_path)

    def test_cli_choices_mirror_chaos_modes(self):
        """The cli keeps a literal copy (to avoid an import at parser
        build time); this pins the two lists together."""
        from repro.cli import build_parser

        parser = build_parser()
        text = parser.format_help()
        assert "chaos-exec" in text

    def test_report_renders_failures_loudly(self):
        outcome = ChaosOutcome(
            mode="kill", fault="f", recovered=False, byte_identical=False,
            reused_chunks=-1, total_chunks=-1, quarantined=0, detail="d",
        )
        report = chaos_exec_report([outcome])
        assert "NO" in report
