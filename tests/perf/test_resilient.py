"""Tests for the resilient chunked runner: the crash-safety contract.

The load-bearing property (hypothesis-checked below): a run interrupted
at *any* chunk boundary and then resumed produces results byte-for-byte
identical to an uninterrupted run -- for any task count, chunk size, and
interrupt point.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.resilient import (
    BackoffPolicy,
    ResilientRunner,
    ResilientRuntime,
    decode_campaign_result,
    encode_campaign_result,
    resilience_note,
    resilient_campaign_map,
)


def _double(_index, chunk):
    """The canonical pure chunk runner used throughout these tests."""
    return [{"task": task, "value": task * 2 + 1} for task in chunk]


def _runner(run_chunk=_double, **kwargs):
    runtime_kwargs = {
        key: kwargs.pop(key)
        for key in (
            "checkpoint_dir", "resume", "deadline", "chunk_size",
            "max_attempts", "breaker_threshold", "backoff",
        )
        if key in kwargs
    }
    runtime = ResilientRuntime(**runtime_kwargs)
    kwargs.setdefault("sleep_fn", lambda _delay: None)  # tests never sleep
    return ResilientRunner(
        run_chunk, runtime=runtime, config={"test": "resilient"}, **kwargs
    )


class TestBackoffPolicy:
    def test_deterministic_for_same_key_and_attempt(self):
        policy = BackoffPolicy()
        assert policy.delay("k", 2) == policy.delay("k", 2)

    def test_decorrelated_across_keys(self):
        policy = BackoffPolicy()
        assert policy.delay("k1", 0) != policy.delay("k2", 0)

    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay("k", 0) == pytest.approx(0.1)
        assert policy.delay("k", 1) == pytest.approx(0.2)
        assert policy.delay("k", 5) == pytest.approx(0.3)  # capped

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, max_delay=1.0, jitter=0.5)
        for attempt in range(32):
            assert 0.5 <= policy.delay("k", attempt) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)


class TestRuntimeValidation:
    def test_chunk_size_positive(self):
        with pytest.raises(ValueError):
            ResilientRuntime(chunk_size=0)

    def test_deadline_positive(self):
        with pytest.raises(ValueError):
            ResilientRuntime(deadline=0)

    def test_max_attempts_positive(self):
        with pytest.raises(ValueError):
            ResilientRuntime(max_attempts=0)

    def test_breaker_threshold_positive(self):
        with pytest.raises(ValueError):
            ResilientRuntime(breaker_threshold=0)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError):
            ResilientRuntime(resume=True)


class TestPlainRuns:
    def test_complete_run_without_store(self):
        outcome = _runner(chunk_size=3).run(list(range(8)))
        assert outcome.complete
        assert outcome.results == _double(0, list(range(8)))
        assert outcome.chunks == 3
        assert outcome.computed_chunks == 3
        assert outcome.reused_chunks == 0
        assert outcome.missing_tasks == []

    def test_empty_task_list(self):
        outcome = _runner().run([])
        assert outcome.complete
        assert outcome.results == []

    def test_result_arity_mismatch_is_a_bug(self):
        with pytest.raises(RuntimeError, match="results for"):
            _runner(lambda _i, chunk: []).run([1, 2])


class TestCheckpointReuse:
    def test_second_run_reuses_everything(self, tmp_path):
        calls = []

        def counting(_index, chunk):
            calls.append(list(chunk))
            return _double(_index, chunk)

        first = _runner(
            counting, checkpoint_dir=tmp_path, chunk_size=2
        ).run(list(range(6)))
        assert first.computed_chunks == 3
        calls.clear()
        second = _runner(
            counting, checkpoint_dir=tmp_path, resume=True, chunk_size=2
        ).run(list(range(6)))
        assert calls == []  # nothing recomputed
        assert second.reused_chunks == 3
        assert second.results == first.results

    def test_without_resume_flag_records_are_overwritten(self, tmp_path):
        _runner(checkpoint_dir=tmp_path, chunk_size=2).run(list(range(4)))
        again = _runner(checkpoint_dir=tmp_path, chunk_size=2).run(
            list(range(4))
        )
        assert again.reused_chunks == 0
        assert again.computed_chunks == 2

    def test_chunk_size_is_part_of_the_run_key(self, tmp_path):
        a = _runner(checkpoint_dir=tmp_path, chunk_size=2)
        b = _runner(checkpoint_dir=tmp_path, chunk_size=3)
        assert a.run_key != b.run_key  # stale partitions can never replay

    def test_corrupt_record_recomputed_on_resume(self, tmp_path):
        first = _runner(checkpoint_dir=tmp_path, chunk_size=2)
        first.run(list(range(4)))
        victim = first.store.path_for(1)
        victim.write_text(victim.read_text()[:20])  # truncate
        second = _runner(
            checkpoint_dir=tmp_path, resume=True, chunk_size=2
        )
        outcome = second.run(list(range(4)))
        assert outcome.complete
        assert outcome.reused_chunks == 1
        assert outcome.computed_chunks == 1
        assert outcome.checkpoint_stats.corruptions == 1
        assert list(second.store.directory.glob("*.corrupt*"))

    def test_arity_drift_payload_recomputed(self, tmp_path):
        """A valid record whose payload has the wrong arity is recomputed."""
        store_runner = _runner(checkpoint_dir=tmp_path, chunk_size=2)
        store_runner.run(list(range(4)))
        # Rewrite chunk 0 with a well-formed but wrong-arity payload.
        store_runner.store.save(0, [{"task": 0, "value": 1}] * 3)
        outcome = _runner(
            checkpoint_dir=tmp_path, resume=True, chunk_size=2
        ).run(list(range(4)))
        assert outcome.complete
        assert outcome.computed_chunks == 1
        assert outcome.results == _double(0, list(range(4)))


class TestDeadline:
    def _clock(self, times):
        times = iter(times)
        return lambda: next(times)

    def test_expired_deadline_skips_remaining_chunks(self):
        # start=0; chunk 0 scheduled at t=1; chunk 1 check at t=10 > 5.
        clock = self._clock([0, 1, 10, 10, 10, 10])
        runner = _runner(chunk_size=2, deadline=5, clock=clock)
        outcome = runner.run(list(range(6)))
        assert not outcome.complete
        assert outcome.deadline_hit
        assert outcome.computed_chunks == 1
        assert outcome.skipped_chunks == 2
        assert outcome.missing_tasks == [2, 3, 4, 5]
        assert outcome.results[:2] == _double(0, [0, 1])

    def test_generous_deadline_changes_nothing(self):
        outcome = _runner(chunk_size=2, deadline=10_000).run(list(range(6)))
        assert outcome.complete
        assert not outcome.deadline_hit

    def test_partial_progress_is_durable(self, tmp_path):
        clock = self._clock([0, 1, 10, 10, 10, 10])
        runner = _runner(
            chunk_size=2, deadline=5, clock=clock, checkpoint_dir=tmp_path
        )
        partial = runner.run(list(range(6)))
        assert not partial.complete
        resumed = _runner(
            chunk_size=2, checkpoint_dir=tmp_path, resume=True
        ).run(list(range(6)))
        assert resumed.complete
        assert resumed.reused_chunks == 1
        assert resumed.results == _double(0, list(range(6)))


class TestRetriesAndBackoff:
    def test_flaky_chunk_retried_with_backoff(self):
        failures = {"left": 2}
        sleeps = []

        def flaky(_index, chunk):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return _double(_index, chunk)

        policy = BackoffPolicy(base=0.01, jitter=0.5)
        runner = _runner(
            flaky, chunk_size=4, max_attempts=3, backoff=policy,
            sleep_fn=sleeps.append,
        )
        outcome = runner.run(list(range(4)))
        assert outcome.complete
        assert outcome.retries == 2
        key = f"{runner.run_key}:0"
        assert sleeps == [policy.delay(key, 0), policy.delay(key, 1)]

    def test_exhausted_retries_dead_letter_without_aborting(self):
        def broken_first_chunk(index, chunk):
            if index == 0:
                raise RuntimeError("permanently broken")
            return _double(index, chunk)

        outcome = _runner(
            broken_first_chunk, chunk_size=2, max_attempts=2
        ).run(list(range(6)))
        assert not outcome.complete
        assert len(outcome.dead_letters) == 1
        letter = outcome.dead_letters[0]
        assert letter.chunk == 0
        assert letter.attempts == 2
        assert "permanently broken" in letter.error
        # The pool kept moving: later chunks completed.
        assert outcome.missing_tasks == [0, 1]
        assert outcome.results[2:] == _double(0, list(range(2, 6)))

    def test_keyboard_interrupt_propagates(self, tmp_path):
        def interrupted(index, chunk):
            if index == 1:
                raise KeyboardInterrupt
            return _double(index, chunk)

        runner = _runner(
            interrupted, chunk_size=2, checkpoint_dir=tmp_path
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(list(range(4)))
        # Chunk 0 was durably checkpointed before the interrupt ...
        assert runner.store.completed_indices() == [0]
        # ... and the state file records the interruption.
        state = json.loads((runner.store.directory / "state.json").read_text())
        assert state["status"] == "interrupted"


class TestCircuitBreaker:
    def test_breaker_trips_and_fast_fails(self):
        attempts = {}

        def always_broken(index, chunk):
            attempts[index] = attempts.get(index, 0) + 1
            raise RuntimeError("down")

        outcome = _runner(
            always_broken, chunk_size=1, max_attempts=3, breaker_threshold=2
        ).run(list(range(5)))
        assert outcome.breaker_trips == 1
        assert len(outcome.dead_letters) == 5
        # Full retry budget until the breaker opens, a single fast-fail
        # attempt afterwards.
        assert attempts == {0: 3, 1: 3, 2: 1, 3: 1, 4: 1}

    def test_success_closes_the_breaker(self):
        attempts = {}

        def flaky_region(index, chunk):
            attempts[index] = attempts.get(index, 0) + 1
            if index in (0, 1, 3):
                raise RuntimeError("down")
            return _double(index, chunk)

        outcome = _runner(
            flaky_region, chunk_size=1, max_attempts=2, breaker_threshold=2
        ).run(list(range(5)))
        # chunks 0,1 exhaust retries and trip the breaker; chunk 2
        # succeeds (closing it); chunk 3 gets its full budget again.
        assert attempts == {0: 2, 1: 2, 2: 1, 3: 2, 4: 1}
        assert outcome.breaker_trips == 1


@settings(max_examples=40, deadline=None)
@given(
    n_tasks=st.integers(min_value=1, max_value=20),
    chunk_size=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_interrupt_at_any_chunk_boundary_resumes_byte_identically(
    tmp_path_factory, n_tasks, chunk_size, data
):
    """THE crash-safety property, for arbitrary partitionings.

    Interrupt (simulated SIGKILL: the runner simply never gets past
    chunk ``kill_at``) and resume must equal an uninterrupted run
    byte-for-byte, for every task count x chunk size x interrupt point.
    """
    tmp_path = tmp_path_factory.mktemp("resume")
    tasks = list(range(n_tasks))
    n_chunks = (n_tasks + chunk_size - 1) // chunk_size
    kill_at = data.draw(
        st.integers(min_value=0, max_value=n_chunks - 1), label="kill_at"
    )

    reference = _runner(chunk_size=chunk_size).run(tasks)
    assert reference.complete

    class Killed(BaseException):
        """Stands in for SIGKILL: nothing below may catch it."""

    def killed_runner(index, chunk):
        if index == kill_at:
            raise Killed
        return _double(index, chunk)

    first = _runner(
        killed_runner, chunk_size=chunk_size, checkpoint_dir=tmp_path
    )
    with pytest.raises(Killed):
        first.run(tasks)
    assert first.store.completed_indices() == list(range(kill_at))

    resumed = _runner(
        chunk_size=chunk_size, checkpoint_dir=tmp_path, resume=True
    ).run(tasks)
    assert resumed.complete
    assert resumed.reused_chunks == kill_at
    assert json.dumps(resumed.results, sort_keys=True) == json.dumps(
        reference.results, sort_keys=True
    )


class TestCampaignGlue:
    def _items(self):
        from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec

        return [
            CampaignWorkItem(
                alu=ALUSpec.variant("alunn"),
                policy=PolicySpec.exact(fraction),
                trials_per_workload=1,
                seed=11,
            )
            for fraction in (0.0, 0.02)
        ]

    def test_codec_round_trips_exactly(self):
        from repro.perf import run_campaign_items

        result = run_campaign_items(self._items()[:1])[0]
        assert decode_campaign_result(
            json.loads(json.dumps(encode_campaign_result(result)))
        ) == result

    def test_matches_plain_executor_and_resumes_identically(self, tmp_path):
        from repro.perf import run_campaign_items

        items = self._items()
        plain = run_campaign_items(items)
        runtime = ResilientRuntime(checkpoint_dir=tmp_path, chunk_size=1)
        outcome = resilient_campaign_map(
            items, runtime=runtime, config={"t": "campaign"}
        )
        assert outcome.complete
        assert outcome.results == plain
        resumed = resilient_campaign_map(
            items,
            runtime=ResilientRuntime(
                checkpoint_dir=tmp_path, resume=True, chunk_size=1
            ),
            config={"t": "campaign"},
        )
        assert resumed.reused_chunks == 2
        assert resumed.results == plain


class TestResilienceNote:
    def test_minimal_note(self):
        outcome = _runner(chunk_size=2).run(list(range(4)))
        note = resilience_note(outcome)
        assert "reused 0/2 chunk(s), computed 2" in note

    def test_full_note(self, tmp_path):
        first = _runner(checkpoint_dir=tmp_path, chunk_size=2)
        first.run(list(range(4)))
        victim = first.store.path_for(0)
        victim.write_text("{")
        clock_values = iter([0, 1, 10, 10])
        runner = _runner(
            checkpoint_dir=tmp_path, resume=True, chunk_size=2,
            deadline=5, clock=lambda: next(clock_values),
        )
        outcome = runner.run(list(range(4)))
        note = resilience_note(outcome)
        assert "quarantined 1 corrupt record(s)" in note
        assert "deadline hit" in note
