"""Tests for the command-line interface."""

import pytest

from repro.cli import main, _parse_kill


class TestStaticCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "XOR" in out and "010" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "aluss" in out and "5040" in out
        assert "MISMATCH" not in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "9.84x" in capsys.readouterr().out

    def test_fit(self, capsys):
        assert main(["fit", "--variant", "aluss"]) == 0
        assert "5040 sites" in capsys.readouterr().out

    def test_describe(self, capsys):
        assert main(["describe", "aluts"]) == 0
        out = capsys.readouterr().out
        assert "time-redundancy" in out
        assert "5067" in out

    def test_describe_unknown_variant(self):
        with pytest.raises(KeyError):
            main(["describe", "nonsense"])


class TestSweep:
    def test_quick_figure7(self, capsys):
        assert main(["sweep", "--figure", "7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "No Module-Level Fault Tolerance" in out
        assert "aluns" in out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--figure", "10"])


class TestGrid:
    def test_fault_free_run(self, capsys):
        code = main([
            "grid", "--rows", "2", "--cols", "2",
            "--workload", "hue_shift", "--image-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pixel accuracy    : 100.0%" in out

    def test_kill_spec_parsing(self):
        assert _parse_kill("1,2@40") == (40, (1, 2))
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_kill("garbage")

    def test_run_with_kill_and_adaptive(self, capsys):
        code = main([
            "grid", "--rows", "3", "--cols", "3",
            "--kill", "1,1@30", "--adaptive", "--image-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failed cells      : [(1, 1)]" in out

    def test_show_grid_includes_lifecycle_view(self, capsys):
        code = main([
            "grid", "--rows", "3", "--cols", "3",
            "--kill", "1,1@30", "--image-size", "4", "--show-grid",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lifecycle state" in out
        assert "retired 1" in out


class TestLifecycle:
    def test_lifecycle_sweep_runs(self, capsys):
        code = main([
            "lifecycle", "--processes", "intermittent",
            "--jobs", "2", "--instructions", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cell health lifecycle sweep" in out
        assert "goodput/kcyc" in out
        assert "self-healing" in out
        assert "permanent" in out

    def test_lifecycle_deterministic_output(self, capsys):
        argv = [
            "lifecycle", "--processes", "transient",
            "--jobs", "2", "--instructions", "32", "--seed", "5",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestObservabilityFlags:
    ARGV = [
        "lifecycle", "--processes", "transient",
        "--jobs", "2", "--instructions", "32", "--seed", "5",
    ]

    def test_metrics_and_trace_exports(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(self.ARGV + [
            "--metrics", str(metrics_path),
            "--trace", str(trace_path),
            "--obs-report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Observability report" in out
        snapshot = json.loads(metrics_path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["control.jobs"] > 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert records
        assert all("kind" in r and "seq" in r for r in records)

    def test_observed_table_matches_bare(self, capsys, tmp_path):
        assert main(self.ARGV) == 0
        bare = capsys.readouterr().out
        assert main(self.ARGV + [
            "--metrics", str(tmp_path / "m.json")
        ]) == 0
        observed = capsys.readouterr().out
        # The experiment output is byte-identical; the flag only appends
        # its export confirmation afterwards.
        assert observed.startswith(bare)
        extra = observed[len(bare):].splitlines()
        assert all(line.startswith("wrote ") for line in extra)


class TestYield:
    def test_yield_table(self, capsys):
        code = main([
            "yield", "--variants", "alunn", "--density", "0.001",
            "--parts", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perfect yield" in out


class TestAnalyze:
    def test_budgets_and_horizons(self, capsys):
        assert main(["analyze", "--target", "98", "--fault-percent", "1"]) == 0
        out = capsys.readouterr().out
        assert "FIT budget" in out
        assert "tmr" in out
        assert "survival horizon" in out


class TestReport:
    def test_quick_report_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        code = main(["report", "--quick", "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "== Table 2 ==" in text
        assert "== Figure 9 ==" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
