"""Smoke tests: every shipped example must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "aluss" in out
        assert "Paper headline" in out

    def test_fault_sweep_quick(self):
        out = run_example("fault_sweep.py", "figure7", "--quick")
        assert "No Module-Level Fault Tolerance" in out
        assert "aluns" in out

    def test_image_pipeline(self):
        out = run_example("image_pipeline_grid.py")
        assert "100.0% pixels correct" in out

    def test_failover_demo(self):
        out = run_example("failover_demo.py")
        assert "cells failed" in out
        assert "pixel accuracy" in out

    def test_manufacturing_yield(self):
        out = run_example("manufacturing_yield.py")
        assert "perfect yield" in out

    def test_dataflow_on_grid(self):
        out = run_example("dataflow_on_grid.py")
        assert "match = True" in out
        assert "100.0%" in out

    def test_design_explorer(self):
        out = run_example("design_explorer.py")
        assert "Cheapest viable technique: tmr" in out

    def test_design_explorer_hard_target(self):
        out = run_example("design_explorer.py", "99", "1e24")
        assert "Cheapest viable technique: 7mr" in out
