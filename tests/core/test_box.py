"""Unit tests for NanoBox tree nodes."""

import pytest

from repro.core.box import FaultToleranceLevel, NanoBox


def leaf(name, sites=10, level=FaultToleranceLevel.BIT, technique="tmr"):
    return NanoBox(name=name, level=level, technique=technique, sites=sites)


class TestLevels:
    def test_ranks(self):
        assert FaultToleranceLevel.BIT.rank == 0
        assert FaultToleranceLevel.MODULE.rank == 1
        assert FaultToleranceLevel.SYSTEM.rank == 2


class TestNanoBox:
    def test_leaf(self):
        box = leaf("lut")
        assert box.depth == 1
        assert box.own_sites == 10
        assert box.leaf_count() == 1

    def test_nested(self):
        children = (leaf("a", 10), leaf("b", 20))
        parent = NanoBox(
            "core", FaultToleranceLevel.MODULE, "space", 35, children
        )
        assert parent.own_sites == 5
        assert parent.depth == 2
        assert parent.leaf_count() == 2

    def test_children_cannot_exceed_parent(self):
        with pytest.raises(ValueError, match="children"):
            NanoBox(
                "bad", FaultToleranceLevel.MODULE, "x", 5, (leaf("a", 10),)
            )

    def test_negative_sites_rejected(self):
        with pytest.raises(ValueError):
            leaf("neg", sites=-1)

    def test_walk_preorder(self):
        inner = NanoBox(
            "inner", FaultToleranceLevel.BIT, "x", 3, (leaf("deep", 1),)
        )
        root = NanoBox("root", FaultToleranceLevel.MODULE, "y", 10, (inner,))
        assert [b.name for b in root.walk()] == ["root", "inner", "deep"]

    def test_find(self):
        root = NanoBox(
            "root", FaultToleranceLevel.MODULE, "y", 10, (leaf("needle", 2),)
        )
        assert root.find("needle").sites == 2
        assert root.find("missing") is None

    def test_boxes_at_level(self):
        root = NanoBox(
            "root",
            FaultToleranceLevel.MODULE,
            "space",
            30,
            (leaf("a"), leaf("b"),
             NanoBox("voter", FaultToleranceLevel.MODULE, "maj", 5)),
        )
        assert len(root.boxes_at(FaultToleranceLevel.BIT)) == 2
        assert len(root.boxes_at(FaultToleranceLevel.MODULE)) == 2  # root + voter
