"""Unit tests for the hierarchy error ledger."""

import numpy as np
import pytest

from repro.alu.variants import build_alu
from repro.coding.bits import random_word
from repro.core.telemetry import ErrorLedger


class TestErrorLedger:
    def test_clean_runs_counted(self):
        ledger = ErrorLedger(build_alu("alunn"))
        report = ledger.observe(0b010, 0x12, 0x34, fault_mask=0)
        assert report.total_faults == 0
        assert report.output_correct
        assert not report.masked
        assert ledger.clean_runs == 1
        assert ledger.observations == 1

    def test_coverage_requires_faulty_runs(self):
        ledger = ErrorLedger(build_alu("alunn"))
        ledger.observe(0b010, 1, 2, fault_mask=0)
        with pytest.raises(ValueError):
            ledger.coverage()

    def test_masked_fault_detected(self):
        alu = build_alu("aluns")  # bit-level TMR masks single flips
        ledger = ErrorLedger(alu)
        # One fault: a single copy of the slice-0 XOR(0,0) entry.
        seg = alu.site_space.segment("core")
        report = ledger.observe(0b010, 0, 0, fault_mask=1 << 16)
        assert report.total_faults == 1
        assert report.output_correct
        assert report.masked
        assert ledger.masked_count == 1

    def test_unmasked_fault_detected(self):
        alu = build_alu("alunn")
        ledger = ErrorLedger(alu)
        report = ledger.observe(0b010, 0, 0, fault_mask=1 << 0b10000)
        assert not report.output_correct
        assert ledger.unmasked_count == 1

    def test_segment_attribution(self):
        alu = build_alu("aluss")
        ledger = ErrorLedger(alu)
        voter_seg = alu.site_space.segment("voter")
        mask = voter_seg.inject(0b101)
        report = ledger.observe(0b000, 0xFF, 0x0F, fault_mask=mask)
        assert report.faults_by_segment["voter"] == 2
        assert ledger.segment_faults["voter"] == 2
        assert ledger.segment_faults["copy0"] == 0

    def test_coverage_by_fault_count_monotone_tail(self):
        """Masking probability at 1 fault must exceed that at many
        faults for the TMR ALU."""
        alu = build_alu("aluns")
        ledger = ErrorLedger(alu)
        rng = np.random.default_rng(5)
        for _ in range(150):
            # one random single-site fault
            site = int(rng.integers(alu.site_count))
            ledger.observe(0b010, 0xAA, 0x55, fault_mask=1 << site)
        for _ in range(150):
            mask = random_word(alu.site_count, rng)  # ~50% density
            ledger.observe(0b010, 0xAA, 0x55, fault_mask=mask)
        coverage = ledger.coverage_by_fault_count()
        single = coverage[1]
        heavy = np.mean([v for k, v in coverage.items() if k > 100])
        assert single > 0.95
        assert single > heavy
