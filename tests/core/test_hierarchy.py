"""Unit tests for hierarchy introspection and area accounting."""

import pytest

from repro.alu.reference import ReferenceALU
from repro.alu.variants import build_alu
from repro.core.box import FaultToleranceLevel
from repro.core.hierarchy import area_overhead, describe_unit, render_tree


class TestDescribeUnit:
    def test_simplex_nanobox(self):
        box = describe_unit(build_alu("alunn"))
        assert box.level is FaultToleranceLevel.MODULE
        assert box.technique == "none"
        assert box.sites == 512
        assert box.leaf_count() == 16  # the sixteen LUTs

    def test_space_redundant(self):
        box = describe_unit(build_alu("aluss"))
        assert box.technique == "space-redundancy"
        assert box.sites == 5040
        names = [c.name for c in box.children]
        assert any("copy0" in n for n in names)
        assert any("voter" in n for n in names)

    def test_time_redundant_has_registers(self):
        box = describe_unit(build_alu("aluts"))
        assert box.technique == "time-redundancy"
        registers = [
            c for c in box.children if "result_registers" in c.name
        ]
        assert len(registers) == 1
        assert registers[0].sites == 27

    def test_cmos_core_is_opaque_leaf(self):
        box = describe_unit(build_alu("aluncmos"))
        core = box.children[0]
        assert core.technique == "cmos-gates"
        assert not core.children

    def test_site_totals_consistent(self):
        for name in ("alunn", "alunh", "aluss", "alutcmos"):
            unit = build_alu(name)
            box = describe_unit(unit)
            assert box.sites == unit.site_count

    def test_reference_alu(self):
        box = describe_unit(ReferenceALU())
        assert box.sites == 0
        assert box.technique == "oracle"

    def test_custom_name(self):
        assert describe_unit(build_alu("alunn"), name="cellA").name == "cellA"


class TestRenderTree:
    def test_contains_key_lines(self):
        text = render_tree(describe_unit(build_alu("aluts")))
        assert "time-redundancy" in text
        assert "sites=5067" in text
        assert "16 x tmr leaf boxes" in text

    def test_leaf_render(self):
        from repro.core.box import NanoBox

        text = render_tree(
            NanoBox("solo", FaultToleranceLevel.BIT, "none", 4)
        )
        assert text == "solo  [bit/none]  sites=4"


class TestAreaOverhead:
    def test_paper_headline(self):
        overhead = area_overhead(build_alu("aluss"), build_alu("alunn"))
        assert overhead == pytest.approx(5040 / 512)
        assert 9.0 < overhead < 10.0  # "on the order of 9x"

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            area_overhead(build_alu("alunn"), ReferenceALU())
