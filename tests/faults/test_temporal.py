"""Unit tests for the temporal fault taxonomy."""

import pytest

from repro.faults import (
    CellFaultEvent,
    CellFaultStream,
    FaultKind,
    TemporalFaultProcess,
)


class TestProcessValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(FaultKind.TRANSIENT, rate=1.0)
        with pytest.raises(ValueError):
            TemporalFaultProcess(FaultKind.TRANSIENT, rate=-0.1)

    def test_burst_length_positive(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(
                FaultKind.INTERMITTENT, rate=0.1, burst_length=0
            )

    def test_errors_per_cycle_positive(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(
                FaultKind.TRANSIENT, rate=0.1, errors_per_cycle=0
            )

    def test_describe_labels_each_kind(self):
        assert "transient" in TemporalFaultProcess.transient(0.1).describe()
        assert "burst=3x2" in TemporalFaultProcess.intermittent(
            0.1, 3, errors_per_cycle=2
        ).describe()
        assert "permanent" in TemporalFaultProcess.stuck_at(0.1).describe()


class TestEvent:
    def test_quiet_event(self):
        assert CellFaultEvent().quiet
        assert not CellFaultEvent(errors=1).quiet
        assert not CellFaultEvent(kill=True).quiet


class TestStreams:
    def test_attach_is_deterministic_per_cell(self):
        process = TemporalFaultProcess.transient(0.5)
        a = process.attach((1, 2), seed=7)
        b = process.attach((1, 2), seed=7)
        assert [a.sample() for _ in range(50)] == [
            b.sample() for _ in range(50)
        ]

    def test_distinct_cells_get_distinct_streams(self):
        process = TemporalFaultProcess.transient(0.5)
        a = process.attach((0, 0), seed=7)
        b = process.attach((0, 1), seed=7)
        assert [a.sample() for _ in range(50)] != [
            b.sample() for _ in range(50)
        ]

    def test_zero_rate_is_always_quiet(self):
        stream = TemporalFaultProcess.transient(0.0).attach((0, 0), seed=7)
        assert all(stream.sample().quiet for _ in range(100))

    def test_transient_glitches_are_isolated(self):
        stream = TemporalFaultProcess.transient(0.3, errors_per_cycle=2).attach(
            (0, 0), seed=7
        )
        events = [stream.sample() for _ in range(200)]
        assert any(e.errors == 2 for e in events)
        assert all(not e.kill for e in events)

    def test_intermittent_bursts_run_full_length(self):
        process = TemporalFaultProcess.intermittent(0.05, burst_length=4)
        stream = process.attach((0, 0), seed=7)
        events = [stream.sample() for _ in range(500)]
        # Find a burst onset and check the following cycles stay bad.
        runs = []
        run = 0
        for e in events:
            if e.errors:
                run += 1
            elif run:
                runs.append(run)
                run = 0
        assert runs
        # Every complete run is a multiple-of-burst-length streak (two
        # onsets can chain back to back).
        assert all(r >= 4 for r in runs)

    def test_permanent_kills_once_then_stays_quiet(self):
        stream = TemporalFaultProcess.stuck_at(0.2).attach((0, 0), seed=7)
        events = [stream.sample() for _ in range(200)]
        kills = [e for e in events if e.kill]
        assert len(kills) == 1
        assert stream.dead
        after = events[events.index(kills[0]) + 1 :]
        assert all(e.quiet for e in after)


class TestStreamType:
    def test_attach_returns_stream(self):
        process = TemporalFaultProcess.transient(0.1)
        assert isinstance(process.attach((0, 0), seed=1), CellFaultStream)


class ScriptedRng:
    """Stands in for a Generator: replays a fixed uniform-draw script."""

    def __init__(self, draws):
        self._draws = iter(draws)

    def random(self):
        return next(self._draws)


class TestZeroRateStreams:
    """rate=0 must be a true no-op for every temporal kind."""

    def test_intermittent_zero_rate_never_bursts(self):
        process = TemporalFaultProcess.intermittent(0.0, burst_length=5)
        stream = process.attach((0, 0), seed=7)
        assert all(stream.sample().quiet for _ in range(200))

    def test_stuck_at_zero_rate_never_kills(self):
        stream = TemporalFaultProcess.stuck_at(0.0).attach((0, 0), seed=7)
        assert all(stream.sample().quiet for _ in range(200))
        assert not stream.dead


class TestBurstHorizonEdges:
    def test_burst_straddles_sampling_horizon(self):
        # Onset on the very last cycle of a 10-cycle horizon: the burst's
        # remaining cycles are not lost -- they continue when sampling
        # resumes, because burst state lives in the stream, not the loop.
        process = TemporalFaultProcess.intermittent(0.5, burst_length=4)
        rng = ScriptedRng([1.0] * 9 + [0.0])  # quiet x9, onset at cycle 10
        stream = CellFaultStream(process, rng)
        horizon = [stream.sample() for _ in range(10)]
        assert all(e.quiet for e in horizon[:9])
        assert horizon[9].errors == 1
        # The remaining 3 burst cycles drain without touching the RNG.
        tail = [stream.sample() for _ in range(3)]
        assert all(e.errors == 1 for e in tail)

    def test_burst_length_one_is_transient_shaped(self):
        process = TemporalFaultProcess.intermittent(
            0.5, burst_length=1, errors_per_cycle=2
        )
        rng = ScriptedRng([0.0, 1.0, 1.0])  # onset, then two quiet draws
        stream = CellFaultStream(process, rng)
        assert stream.sample() == CellFaultEvent(errors=2)
        # No residual burst cycles: the next samples consult the RNG and
        # come back quiet, exactly like an isolated transient glitch.
        assert stream.sample().quiet
        assert stream.sample().quiet


class TestStuckAtAfterRevive:
    """A stuck-at cell stays stuck even if its heartbeat is revived.

    The permanent stream goes dead at onset, and the killed cell's
    force-silenced heartbeat makes every canary probe fail -- so the
    watchdog's re-admission path can never resurrect genuinely dead
    hardware by accident.
    """

    def _killed_stream(self):
        stream = CellFaultStream(
            TemporalFaultProcess.stuck_at(0.5), ScriptedRng([0.0])
        )
        assert stream.sample().kill
        return stream

    def test_stream_stays_dead_no_recurrence(self):
        stream = self._killed_stream()
        assert stream.dead
        # No second kill event, ever -- and no further RNG draws (the
        # scripted RNG would raise StopIteration if one were attempted).
        assert all(stream.sample().quiet for _ in range(100))

    def test_heartbeat_revive_does_not_resurrect_stream(self):
        from repro.cell.heartbeat import Heartbeat

        stream = self._killed_stream()
        heartbeat = Heartbeat(error_threshold=4)
        heartbeat.silence()  # what the kill event does to the cell
        heartbeat.revive()  # watchdog re-admission path
        assert heartbeat.healthy
        # The fault process itself remains permanently dead.
        assert stream.dead
        assert all(stream.sample().quiet for _ in range(50))

    def test_killed_cell_fails_probe_despite_clean_alu(self):
        from repro.alu.nanobox import NanoBoxALU
        from repro.alu.reference import reference_compute
        from repro.cell.cell import ProcessorCell
        from repro.grid.watchdog import PROBE_CANARIES

        cell = ProcessorCell(0, 0, NanoBoxALU())
        canaries = [
            (op, a, b, reference_compute(op, a, b).value)
            for op, a, b in PROBE_CANARIES
        ]
        assert cell.probe(canaries)
        cell.heartbeat.silence()
        # Force-silenced hardware cannot answer a probe at all, so the
        # quarantine protocol can never re-admit a stuck-at cell.
        assert not cell.probe(canaries)
