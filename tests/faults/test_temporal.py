"""Unit tests for the temporal fault taxonomy."""

import pytest

from repro.faults import (
    CellFaultEvent,
    CellFaultStream,
    FaultKind,
    TemporalFaultProcess,
)


class TestProcessValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(FaultKind.TRANSIENT, rate=1.0)
        with pytest.raises(ValueError):
            TemporalFaultProcess(FaultKind.TRANSIENT, rate=-0.1)

    def test_burst_length_positive(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(
                FaultKind.INTERMITTENT, rate=0.1, burst_length=0
            )

    def test_errors_per_cycle_positive(self):
        with pytest.raises(ValueError):
            TemporalFaultProcess(
                FaultKind.TRANSIENT, rate=0.1, errors_per_cycle=0
            )

    def test_describe_labels_each_kind(self):
        assert "transient" in TemporalFaultProcess.transient(0.1).describe()
        assert "burst=3x2" in TemporalFaultProcess.intermittent(
            0.1, 3, errors_per_cycle=2
        ).describe()
        assert "permanent" in TemporalFaultProcess.stuck_at(0.1).describe()


class TestEvent:
    def test_quiet_event(self):
        assert CellFaultEvent().quiet
        assert not CellFaultEvent(errors=1).quiet
        assert not CellFaultEvent(kill=True).quiet


class TestStreams:
    def test_attach_is_deterministic_per_cell(self):
        process = TemporalFaultProcess.transient(0.5)
        a = process.attach((1, 2), seed=7)
        b = process.attach((1, 2), seed=7)
        assert [a.sample() for _ in range(50)] == [
            b.sample() for _ in range(50)
        ]

    def test_distinct_cells_get_distinct_streams(self):
        process = TemporalFaultProcess.transient(0.5)
        a = process.attach((0, 0), seed=7)
        b = process.attach((0, 1), seed=7)
        assert [a.sample() for _ in range(50)] != [
            b.sample() for _ in range(50)
        ]

    def test_zero_rate_is_always_quiet(self):
        stream = TemporalFaultProcess.transient(0.0).attach((0, 0), seed=7)
        assert all(stream.sample().quiet for _ in range(100))

    def test_transient_glitches_are_isolated(self):
        stream = TemporalFaultProcess.transient(0.3, errors_per_cycle=2).attach(
            (0, 0), seed=7
        )
        events = [stream.sample() for _ in range(200)]
        assert any(e.errors == 2 for e in events)
        assert all(not e.kill for e in events)

    def test_intermittent_bursts_run_full_length(self):
        process = TemporalFaultProcess.intermittent(0.05, burst_length=4)
        stream = process.attach((0, 0), seed=7)
        events = [stream.sample() for _ in range(500)]
        # Find a burst onset and check the following cycles stay bad.
        runs = []
        run = 0
        for e in events:
            if e.errors:
                run += 1
            elif run:
                runs.append(run)
                run = 0
        assert runs
        # Every complete run is a multiple-of-burst-length streak (two
        # onsets can chain back to back).
        assert all(r >= 4 for r in runs)

    def test_permanent_kills_once_then_stays_quiet(self):
        stream = TemporalFaultProcess.stuck_at(0.2).attach((0, 0), seed=7)
        events = [stream.sample() for _ in range(200)]
        kills = [e for e in events if e.kill]
        assert len(kills) == 1
        assert stream.dead
        after = events[events.index(kills[0]) + 1 :]
        assert all(e.quiet for e in after)


class TestStreamType:
    def test_attach_returns_stream(self):
        process = TemporalFaultProcess.transient(0.1)
        assert isinstance(process.attach((0, 0), seed=1), CellFaultStream)
