"""Differential pins for the chunk-buffered fault tape.

``FaultTape`` must replay ``CellFaultStream`` draw-for-draw -- both via
scalar ``sample()`` and via ``advance_quiet`` bulk jumps -- because the
sparse engine's bit-identity contract rests on this equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultTape, attach_tape
from repro.faults.temporal import TemporalFaultProcess

PROCESSES = {
    "transient": TemporalFaultProcess.transient(0.05, errors_per_cycle=2),
    "intermittent": TemporalFaultProcess.intermittent(0.04, burst_length=5),
    "stuck_at": TemporalFaultProcess.stuck_at(0.03),
}


def _pair(process, seed=2004, coord=(1, 2), chunk=512):
    return process.attach(coord, seed), attach_tape(
        process, coord, seed, chunk=chunk
    )


class TestScalarEquivalence:
    @pytest.mark.parametrize("name", sorted(PROCESSES))
    @pytest.mark.parametrize("chunk", [1, 3, 512])
    def test_sample_matches_stream(self, name, chunk):
        stream, tape = _pair(PROCESSES[name], chunk=chunk)
        for _ in range(500):
            assert tape.sample() == stream.sample()
        assert tape.dead == stream.dead

    @pytest.mark.parametrize("name", sorted(PROCESSES))
    def test_attach_tape_seeding_matches_attach(self, name):
        """Different coords/seeds give different (but paired) streams."""
        process = PROCESSES[name]
        events_a = [
            attach_tape(process, (0, 0), 7).sample() for _ in range(50)
        ]
        events_b = [process.attach((0, 0), 7).sample() for _ in range(50)]
        # Per-call fresh streams all sample the first draw: equal pairwise.
        assert events_a == events_b


class TestBulkEquivalence:
    @pytest.mark.parametrize("name", sorted(PROCESSES))
    @pytest.mark.parametrize("chunk", [1, 7, 512])
    def test_advance_quiet_matches_scalar_loop(self, name, chunk):
        """A bulk jump consumes exactly the cycles a scalar loop would."""
        rng = np.random.default_rng(11)
        stream, tape = _pair(PROCESSES[name], chunk=chunk)
        cycles = 0
        while cycles < 3000:
            span = int(rng.integers(1, 40))
            quiet, event = tape.advance_quiet(span)
            # Replay the same span on the reference stream.
            for i in range(quiet):
                ref = stream.sample()
                assert ref.quiet, f"cycle {cycles + i}: reference not quiet"
            if event is None:
                assert quiet == span
                cycles += span
            else:
                assert stream.sample() == event
                cycles += quiet + 1
            assert tape.dead == stream.dead

    def test_burst_interrupts_bulk_advance_immediately(self):
        process = TemporalFaultProcess.intermittent(0.9, burst_length=4)
        stream, tape = _pair(process)
        quiet, event = tape.advance_quiet(100)
        assert event is not None and event.errors == 1
        for _ in range(quiet):
            stream.sample()
        stream.sample()
        # Burst tail: bulk advance returns each burst cycle one at a time.
        for _ in range(process.burst_length - 1):
            assert tape.in_burst
            quiet2, event2 = tape.advance_quiet(100)
            assert (quiet2, event2.errors) == (0, 1)
            assert stream.sample() == event2

    def test_dead_tape_consumes_no_draws(self):
        process = TemporalFaultProcess.stuck_at(0.5)
        stream, tape = _pair(process)
        while not tape.dead:
            ref, got = stream.sample(), tape.sample()
            assert ref == got
        assert tape.advance_quiet(1000) == (1000, None)
        assert tape.sample().quiet

    def test_advance_quiet_zero_and_negative(self):
        _, tape = _pair(PROCESSES["transient"])
        assert tape.advance_quiet(0) == (0, None)
        with pytest.raises(ValueError):
            tape.advance_quiet(-1)


@st.composite
def _interleavings(draw):
    """A mixed schedule of scalar samples and bulk jumps."""
    return draw(
        st.lists(
            st.one_of(
                st.just(("sample", 1)),
                st.tuples(st.just("bulk"), st.integers(1, 64)),
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestInterleavedProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=_interleavings(),
        seed=st.integers(0, 2**16),
        kind=st.sampled_from(sorted(PROCESSES)),
        chunk=st.sampled_from([1, 5, 512]),
    )
    def test_any_interleaving_matches_reference(self, ops, seed, kind, chunk):
        """Bulk advancement by N ticks == N scalar dense ticks, for any
        split of the schedule (satellite 2a, stream level)."""
        stream, tape = _pair(PROCESSES[kind], seed=seed, chunk=chunk)
        for op, span in ops:
            if op == "sample":
                assert tape.sample() == stream.sample()
            else:
                quiet, event = tape.advance_quiet(span)
                for _ in range(quiet):
                    assert stream.sample().quiet
                if event is None:
                    assert quiet == span
                else:
                    assert stream.sample() == event
            assert tape.dead == stream.dead
