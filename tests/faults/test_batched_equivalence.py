"""Scalar/batched equivalence: the batched engine's defining contract.

``FaultCampaign.run_workload_batched`` must return a ``TrialResult`` equal
field-for-field to ``run_workload`` for the same ``(seed, trial, workload)``
-- for every registered Table 2 ALU variant, both mask policies, and
fault fractions spanning none / sparse / heavy / saturated.  The mask
policies themselves must be *stream*-identical: ``generate_batch`` consumes
the RNG exactly as successive ``generate`` calls would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alu.variants import build_alu, variant_names
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import BernoulliMask, ExactFractionMask
from repro.faults.packing import unpack_flags, words_to_int
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads

FRACTIONS = (0.0, 0.005, 0.3, 1.0)


@pytest.fixture(scope="module")
def workloads():
    return paper_workloads(gradient(4, 4))


class TestCampaignEquivalence:
    """Satellite (c): TrialResult identity over the full variant grid."""

    @pytest.mark.parametrize("variant", variant_names())
    @pytest.mark.parametrize("policy_cls", [ExactFractionMask, BernoulliMask])
    @pytest.mark.parametrize("fraction", FRACTIONS)
    def test_scalar_batched_identical(
        self, workloads, variant, policy_cls, fraction
    ):
        campaign = FaultCampaign(
            build_alu(variant), policy_cls(fraction), seed=2004
        )
        scalar = campaign.run_workload_suite(workloads, 1, batched=False)
        batched = campaign.run_workload_suite(workloads, 1, batched=True)
        assert scalar.trials == batched.trials


class TestMaskStreamEquivalence:
    """generate_batch must consume the RNG exactly like generate."""

    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        n_sites=st.integers(min_value=0, max_value=300),
        n_draws=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_fraction(self, fraction, n_sites, n_draws, seed):
        self._check(ExactFractionMask(fraction), n_sites, n_draws, seed)

    @given(
        probability=st.floats(min_value=0.0, max_value=1.0),
        n_sites=st.integers(min_value=0, max_value=300),
        n_draws=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_bernoulli(self, probability, n_sites, n_draws, seed):
        self._check(BernoulliMask(probability), n_sites, n_draws, seed)

    @staticmethod
    def _check(policy, n_sites, n_draws, seed):
        rng_scalar = np.random.default_rng(seed)
        rng_batch = np.random.default_rng(seed)
        scalar = [policy.generate(n_sites, rng_scalar) for _ in range(n_draws)]
        words = policy.generate_batch(n_sites, n_draws, rng_batch)
        batch = [words_to_int(words[d]) for d in range(n_draws)]
        assert scalar == batch
        # Both paths must leave the RNG in the same state, or trials after
        # the first would diverge.
        tail_a, tail_b = rng_scalar.random(4), rng_batch.random(4)
        np.testing.assert_array_equal(tail_a, tail_b)

    def test_exact_count_is_exact(self):
        """Every batched draw flips base or base+1 distinct sites."""
        policy = ExactFractionMask(0.03)
        words = policy.generate_batch(192, 500, np.random.default_rng(3))
        counts = unpack_flags(words, 192).sum(axis=1)
        base = int(0.03 * 192)
        assert set(np.unique(counts)) <= {base, base + 1}


class TestSuiteSeedNamespacing:
    """Satellite (f): trial streams keyed by workload name, not position."""

    def test_adding_a_workload_leaves_others_untouched(self, workloads):
        campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.1), seed=9)
        alone = campaign.run_workload_suite(
            {"hue_shift": workloads["hue_shift"]}, 3
        )
        extended = dict(workloads)
        together = campaign.run_workload_suite(extended, 3)
        # Suites iterate name-sorted; hue_shift precedes reverse_video.
        assert together.trials[:3] == alone.trials

    def test_workload_names_get_distinct_streams(self):
        campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.1), seed=9)
        draws = {
            name: campaign._rng_for_trial(0, name).random()
            for name in ("hue_shift", "reverse_video", None)
        }
        assert len(set(draws.values())) == 3
