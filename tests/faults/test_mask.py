"""Unit tests for fault-mask generation policies."""

import numpy as np
import pytest

from repro.coding.bits import popcount
from repro.faults.mask import BernoulliMask, ExactFractionMask, FixedCountMask


class TestExactFractionMask:
    def test_zero_fraction(self, rng):
        policy = ExactFractionMask(0.0)
        assert policy.generate(5040, rng) == 0
        assert policy.expected_faults(5040) == 0

    def test_full_fraction(self, rng):
        policy = ExactFractionMask(1.0)
        mask = policy.generate(100, rng)
        assert popcount(mask) == 100

    def test_integer_count_exact(self, rng):
        policy = ExactFractionMask(0.10)
        for _ in range(20):
            assert popcount(policy.generate(100, rng)) == 10

    def test_fractional_count_stochastic_rounding(self):
        # 0.5% of 192 sites = 0.96 faults: must average out to ~0.96.
        policy = ExactFractionMask(0.005)
        rng = np.random.default_rng(0)
        counts = [popcount(policy.generate(192, rng)) for _ in range(3000)]
        assert set(counts) <= {0, 1}
        assert abs(np.mean(counts) - 0.96) < 0.03

    def test_mask_fits_site_space(self, rng):
        policy = ExactFractionMask(0.75)
        for n in (1, 31, 192, 5067):
            mask = policy.generate(n, rng)
            assert mask >> n == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ExactFractionMask(-0.1)
        with pytest.raises(ValueError):
            ExactFractionMask(1.1)

    def test_distinct_sites(self, rng):
        # count == popcount proves sampling without replacement.
        policy = ExactFractionMask(0.5)
        assert popcount(policy.generate(64, rng)) == 32

    def test_deterministic_per_seed(self):
        policy = ExactFractionMask(0.2)
        a = policy.generate(512, np.random.default_rng(9))
        b = policy.generate(512, np.random.default_rng(9))
        assert a == b

    def test_ratio_constant_across_implementations(self, rng):
        """The paper holds injected/total constant across ALUs."""
        policy = ExactFractionMask(0.03)
        for n in (192, 512, 5040):
            assert popcount(policy.generate(n, rng)) == pytest.approx(
                0.03 * n, abs=1
            )


class TestBernoulliMask:
    def test_zero_probability(self, rng):
        assert BernoulliMask(0.0).generate(1000, rng) == 0

    def test_one_probability(self, rng):
        mask = BernoulliMask(1.0).generate(64, rng)
        assert mask == (1 << 64) - 1

    def test_mean_count(self):
        policy = BernoulliMask(0.1)
        rng = np.random.default_rng(1)
        counts = [popcount(policy.generate(1000, rng)) for _ in range(300)]
        assert abs(np.mean(counts) - 100) < 5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliMask(1.5)

    def test_mask_fits(self, rng):
        mask = BernoulliMask(0.9).generate(77, rng)
        assert mask >> 77 == 0


class TestFixedCountMask:
    def test_exact_count(self, rng):
        policy = FixedCountMask(7)
        for _ in range(10):
            assert popcount(policy.generate(100, rng)) == 7

    def test_zero(self, rng):
        assert FixedCountMask(0).generate(10, rng) == 0

    def test_count_exceeds_sites(self, rng):
        with pytest.raises(ValueError):
            FixedCountMask(11).generate(10, rng)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            FixedCountMask(-1)


class TestEmptySiteSpaces:
    def test_all_policies_handle_zero_sites(self, rng):
        assert ExactFractionMask(0.5).generate(0, rng) == 0
        assert BernoulliMask(0.5).generate(0, rng) == 0
        assert FixedCountMask(0).generate(0, rng) == 0
