"""Unit tests for the permanent-defect model."""

import numpy as np
import pytest

from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.alu.reference import reference_compute
from repro.alu.variants import build_alu
from repro.coding.bits import popcount
from repro.faults.defects import DefectMap, DefectiveUnit, sample_defect_map


class TestDefectMap:
    def test_pristine(self):
        d = DefectMap.pristine(100)
        assert d.defect_count == 0
        assert d.density == 0.0

    def test_conflicting_polarity_rejected(self):
        with pytest.raises(ValueError, match="stuck at both"):
            DefectMap(n_sites=8, stuck0=0b1, stuck1=0b1)

    def test_mask_width_enforced(self):
        with pytest.raises(ValueError):
            DefectMap(n_sites=4, stuck0=1 << 4, stuck1=0)

    def test_counts_and_density(self):
        d = DefectMap(n_sites=10, stuck0=0b101, stuck1=0b010)
        assert d.defect_count == 3
        assert d.density == pytest.approx(0.3)

    def test_xor_against_semantics(self):
        # storage 1 at a stuck-0 site disagrees; storage 0 agrees.
        d = DefectMap(n_sites=4, stuck0=0b0011, stuck1=0b1100)
        storage = 0b0101
        # site0 stuck0, stored 1 -> flip; site1 stuck0, stored 0 -> ok;
        # site2 stuck1, stored 1 -> ok; site3 stuck1, stored 0 -> flip.
        assert d.xor_against(storage) == 0b1001


class TestSampleDefectMap:
    def test_zero_density(self, rng):
        d = sample_defect_map(1000, 0.0, rng)
        assert d.defect_count == 0

    def test_density_statistics(self):
        rng = np.random.default_rng(1)
        d = sample_defect_map(20000, 0.01, rng)
        assert 120 < d.defect_count < 280

    def test_polarity_fraction(self):
        rng = np.random.default_rng(2)
        d = sample_defect_map(20000, 0.05, rng, stuck1_fraction=1.0)
        assert d.stuck0 == 0
        assert d.defect_count > 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_defect_map(10, 1.5, rng)
        with pytest.raises(ValueError):
            sample_defect_map(10, 0.5, rng, stuck1_fraction=-1)


class TestStorageImages:
    def test_nanobox_image_matches_lut_storage(self):
        alu = NanoBoxALU(scheme="tmr")
        image = alu.storage_image()
        # Extract slice 3's result segment and compare to the LUT storage.
        seg = alu.site_space.segment("slice3.result_lut")
        assert seg.extract(image) == alu._result_lut.storage

    def test_wrapped_images_compose(self):
        for name in ("alunn", "aluns", "alusn", "aluss", "alutn"):
            unit = build_alu(name)
            image = unit.storage_image()
            assert image >> unit.site_count == 0

    def test_time_redundancy_registers_are_dynamic(self):
        unit = build_alu("alutn")
        static = unit.static_site_mask()
        for i in range(3):
            seg = unit.site_space.segment(f"stored{i}")
            assert seg.extract(static) == 0


class TestDefectiveUnit:
    def test_pristine_part_identical(self):
        alu = build_alu("alunn")
        part = DefectiveUnit(alu, DefectMap.pristine(alu.site_count))
        assert part.exact
        for op in (0, 1, 2, 7):
            got = part.compute(op, 0xC8, 0x64)
            want = reference_compute(op, 0xC8, 0x64)
            assert (got.value, got.carry) == (want.value, want.carry)

    def test_size_mismatch_rejected(self):
        alu = build_alu("alunn")
        with pytest.raises(ValueError, match="covers"):
            DefectiveUnit(alu, DefectMap.pristine(alu.site_count + 1))

    def test_stuck_bit_agreeing_with_storage_harmless(self):
        alu = SimplexALU(NanoBoxALU(scheme="none"))
        image = alu.storage_image()
        # Pick a site whose stored value is 1 and stick it at 1.
        site = (image & -image).bit_length() - 1
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=0, stuck1=1 << site)
        )
        assert part.exact
        for op in (0, 1, 2, 7):
            got = part.compute(op, 0xAA, 0x55)
            want = reference_compute(op, 0xAA, 0x55)
            assert got.value == want.value

    def test_stuck_bit_disagreeing_with_storage_observable(self):
        alu = SimplexALU(NanoBoxALU(scheme="none"))
        # XOR(0,0) entry of slice 0's result LUT stores 0 (site 16);
        # stick it at 1 and the instruction output flips.
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=0, stuck1=1 << 16)
        )
        assert part.compute(0b010, 0, 0).value == 1

    def test_tmr_masks_single_stuck_cell(self):
        alu = SimplexALU(NanoBoxALU(scheme="tmr"))
        # Copy 0 of the XOR(0,0) entry (stored 0): stick at 1 -> outvoted.
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=0, stuck1=1 << 16)
        )
        assert part.compute(0b010, 0, 0).value == 0

    def test_transient_flip_on_dead_cell_suppressed(self):
        alu = SimplexALU(NanoBoxALU(scheme="none"))
        # Stick the XOR(0,0) entry at its correct value 0: a transient
        # flip on that same cell must have no effect.
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=1 << 16, stuck1=0)
        )
        assert part.compute(0b010, 0, 0, fault_mask=1 << 16).value == 0

    def test_cmos_defects_are_inexact_inversions(self):
        alu = build_alu("aluncmos")
        part = DefectiveUnit(
            alu, DefectMap(alu.site_count, stuck0=0b1, stuck1=0)
        )
        assert not part.exact

    def test_register_defect_marks_inexact(self):
        alu = build_alu("alutn")
        seg = alu.site_space.segment("stored0")
        part = DefectiveUnit(
            alu,
            DefectMap(alu.site_count, stuck0=seg.inject(1), stuck1=0),
        )
        assert not part.exact

    def test_site_space_passthrough(self):
        alu = build_alu("aluns")
        part = DefectiveUnit(alu, DefectMap.pristine(alu.site_count))
        assert part.site_count == alu.site_count
        assert part.site_space is alu.site_space


class TestDefectsWithCampaigns:
    def test_campaign_accepts_defective_parts(self):
        from repro.faults.campaign import FaultCampaign
        from repro.faults.mask import ExactFractionMask
        from repro.workloads.bitmap import gradient
        from repro.workloads.imaging import paper_workloads

        rng = np.random.default_rng(9)
        alu = build_alu("aluns")
        part = DefectiveUnit(
            alu, sample_defect_map(alu.site_count, 0.001, rng)
        )
        campaign = FaultCampaign(part, ExactFractionMask(0.01), seed=1)
        result = campaign.run_workload_suite(
            paper_workloads(gradient(8, 8)), 2
        )
        assert result.percent_correct >= 90.0
