"""Property-based tests for the defect model (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.alu.reference import reference_compute
from repro.coding.bits import random_word
from repro.faults.defects import DefectMap, DefectiveUnit

opcodes = st.sampled_from([int(op) for op in Opcode])
operands = st.integers(min_value=0, max_value=255)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def fresh_alu():
    return SimplexALU(NanoBoxALU(scheme="none"))


class TestDefectProperties:
    @given(opcodes, operands, operands, seeds)
    @settings(max_examples=30, deadline=None)
    def test_pristine_map_is_identity(self, op, a, b, seed):
        alu = fresh_alu()
        part = DefectiveUnit(alu, DefectMap.pristine(alu.site_count))
        rng = np.random.default_rng(seed)
        mask = random_word(alu.site_count, rng)
        assert part.compute(op, a, b, fault_mask=mask) == alu.compute(
            op, a, b, fault_mask=mask
        )

    @given(opcodes, operands, operands, seeds)
    @settings(max_examples=30, deadline=None)
    def test_agreeing_stuck_values_harmless(self, op, a, b, seed):
        """Sticking any subset of cells at exactly their stored values
        changes nothing, under any transient mask restricted to the
        healthy cells."""
        alu = fresh_alu()
        image = alu.storage_image()
        rng = np.random.default_rng(seed)
        subset = random_word(alu.site_count, rng)
        defects = DefectMap(
            n_sites=alu.site_count,
            stuck0=subset & ~image,
            stuck1=subset & image,
        )
        part = DefectiveUnit(alu, defects)
        transient = random_word(alu.site_count, rng) & ~subset
        assert part.compute(op, a, b, fault_mask=transient) == alu.compute(
            op, a, b, fault_mask=transient
        )

    @given(opcodes, operands, operands, seeds)
    @settings(max_examples=30, deadline=None)
    def test_disagreeing_defects_equal_constant_xor(self, op, a, b, seed):
        """Stuck-at disagreement is exactly a constant XOR overlay."""
        alu = fresh_alu()
        image = alu.storage_image()
        rng = np.random.default_rng(seed)
        subset = random_word(alu.site_count, rng)
        # Stick every selected cell at the WRONG value.
        defects = DefectMap(
            n_sites=alu.site_count,
            stuck0=subset & image,
            stuck1=subset & ~image,
        )
        part = DefectiveUnit(alu, defects)
        assert part.compute(op, a, b) == alu.compute(
            op, a, b, fault_mask=subset
        )

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_transients_on_defective_cells_suppressed(self, seed):
        """A dead cell cannot toggle: transient flips aimed at defective
        sites have no additional effect."""
        alu = fresh_alu()
        rng = np.random.default_rng(seed)
        subset = random_word(alu.site_count, rng)
        defects = DefectMap(
            n_sites=alu.site_count,
            stuck0=subset & alu.storage_image(),
            stuck1=subset & ~alu.storage_image(),
        )
        part = DefectiveUnit(alu, defects)
        base = part.compute(0b111, 0x5A, 0xA5)
        with_transients = part.compute(0b111, 0x5A, 0xA5, fault_mask=subset)
        assert base == with_transients
