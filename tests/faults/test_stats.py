"""Unit tests for sample statistics."""

import math

import pytest

from repro.faults.stats import SampleStats, summarize


class TestSummarize:
    def test_single_sample(self):
        stats = summarize([42.0])
        assert stats.n == 1
        assert stats.mean == 42.0
        assert stats.stddev == 0.0
        assert stats.minimum == stats.maximum == 42.0

    def test_known_values(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        # Sample (n-1) stddev of this classic dataset.
        assert stats.stddev == pytest.approx(math.sqrt(32 / 7))

    def test_extrema(self):
        stats = summarize([3.0, -1.0, 7.5])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_series(self):
        stats = summarize([5.0] * 10)
        assert stats.stddev == 0.0


class TestConfidenceInterval:
    def test_single_sample_degenerate(self):
        assert summarize([1.0]).confidence_interval() == (1.0, 1.0)

    def test_interval_contains_mean(self):
        stats = summarize([90.0, 95.0, 100.0, 85.0, 92.0])
        lo, hi = stats.confidence_interval()
        assert lo < stats.mean < hi

    def test_width_scales_with_z(self):
        stats = summarize([90.0, 95.0, 100.0])
        lo95, hi95 = stats.confidence_interval(1.96)
        lo99, hi99 = stats.confidence_interval(2.58)
        assert hi99 - lo99 > hi95 - lo95

    def test_paper_spread_discipline(self):
        """The paper: stddev < 10 points for 210/216 points, max 24.51.
        Our SampleStats must expose the number to verify that."""
        stats = summarize([100.0, 100.0, 98.4, 96.9, 100.0,
                           100.0, 98.4, 100.0, 96.9, 100.0])
        assert stats.stddev < 10.0
