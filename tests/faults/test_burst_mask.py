"""Tests for the burst (spatially-correlated) fault policy and the
interleaved repetition layout it interacts with."""

import numpy as np
import pytest

from repro.coding.bits import popcount
from repro.coding.tmr import RepetitionCode
from repro.faults.mask import BurstMask


class TestBurstMask:
    def test_zero_fraction(self, rng):
        assert BurstMask(0.0).generate(1000, rng) == 0

    def test_expected_fault_count(self):
        policy = BurstMask(0.05, burst_length=4)
        rng = np.random.default_rng(0)
        counts = [popcount(policy.generate(2000, rng)) for _ in range(200)]
        # Overlapping bursts and edge clipping push the realised count a
        # bit below the target; it must stay in the right ballpark.
        assert 60 <= np.mean(counts) <= 105

    def test_faults_are_clustered(self, rng):
        policy = BurstMask(0.02, burst_length=8)
        mask = policy.generate(4096, rng)
        # Count runs of consecutive set bits: with 8-bit bursts the number
        # of distinct runs must be far below the number of set bits.
        bits = [(mask >> i) & 1 for i in range(4096)]
        runs = sum(
            1 for i, b in enumerate(bits)
            if b and (i == 0 or not bits[i - 1])
        )
        assert runs <= popcount(mask) / 3

    def test_burst_clipped_at_boundary(self, rng):
        policy = BurstMask(0.5, burst_length=10)
        mask = policy.generate(16, rng)
        assert mask >> 16 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstMask(-0.1)
        with pytest.raises(ValueError):
            BurstMask(0.1, burst_length=0)


class TestInterleavedLayout:
    def test_positions_blocked(self):
        code = RepetitionCode(4, layout="blocked")
        assert code.position(0, 2) == 2
        assert code.position(1, 2) == 6
        assert code.position(2, 2) == 10

    def test_positions_interleaved(self):
        code = RepetitionCode(4, layout="interleaved")
        assert code.position(0, 2) == 6
        assert code.position(1, 2) == 7
        assert code.position(2, 2) == 8

    def test_roundtrip_both_layouts(self):
        for layout in RepetitionCode.LAYOUTS:
            code = RepetitionCode(8, layout=layout)
            for data in (0, 0xA5, 0xFF):
                assert code.decode(code.encode(data)).data == data

    def test_single_fault_masked_both_layouts(self):
        for layout in RepetitionCode.LAYOUTS:
            code = RepetitionCode(8, layout=layout)
            stored = code.encode(0x3C)
            for site in range(code.total_bits):
                assert code.decode(stored ^ (1 << site)).data == 0x3C

    def test_interleaved_burst_defeats_vote(self):
        """A burst covering two adjacent positions of the interleaved
        layout flips two copies of one bit -- the vote loses."""
        code = RepetitionCode(8, layout="interleaved")
        stored = code.encode(0x00)
        bit = 3
        burst = (1 << code.position(0, bit)) | (1 << code.position(1, bit))
        assert code.decode_bit(stored ^ burst, bit) == 1

    def test_blocked_burst_confined_to_one_copy(self):
        """The same-length burst in the blocked layout stays inside one
        copy and is voted away."""
        code = RepetitionCode(8, layout="blocked")
        stored = code.encode(0x00)
        burst = 0b11 << 3  # two adjacent sites, both in copy 0
        assert code.decode(stored ^ burst).data == 0x00

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            RepetitionCode(8, layout="diagonal")

    def test_lut_scheme_integration(self):
        from repro.lut.coded import CodedLUT
        from repro.lut.table import TruthTable

        table = TruthTable.from_function(5, lambda *b: sum(b) % 2)
        lut = CodedLUT(table, "tmr-interleaved")
        assert lut.total_bits == 96
        for address in (0, 13, 31):
            assert lut.read(address) == table.lookup(address)
