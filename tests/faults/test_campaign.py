"""Unit tests for the Monte Carlo campaign runner."""

import pytest

from repro.alu.variants import build_alu
from repro.faults.campaign import CampaignResult, FaultCampaign, TrialResult
from repro.faults.mask import ExactFractionMask, FixedCountMask


@pytest.fixture(scope="module")
def streams(request):
    from repro.workloads.bitmap import gradient
    from repro.workloads.imaging import paper_workloads

    return paper_workloads(gradient(8, 8))


class TestTrialResult:
    def test_percent(self):
        assert TrialResult(64, 63, 0).percent_correct == pytest.approx(
            100 * 63 / 64
        )

    def test_empty_workload(self):
        assert TrialResult(0, 0, 0).percent_correct == 100.0


class TestZeroFaults:
    def test_all_variants_score_100(self, streams):
        for name in ("aluncmos", "alunn", "aluss"):
            campaign = FaultCampaign(
                build_alu(name), ExactFractionMask(0.0), seed=1
            )
            result = campaign.run_workload_suite(streams, 2)
            assert result.percent_correct == 100.0
            assert result.total_injected_faults == 0


class TestDeterminism:
    def test_same_seed_same_result(self, streams):
        alu = build_alu("alunn")
        r1 = FaultCampaign(alu, ExactFractionMask(0.05), seed=42).run_trials(
            streams["hue_shift"], 3
        )
        r2 = FaultCampaign(alu, ExactFractionMask(0.05), seed=42).run_trials(
            streams["hue_shift"], 3
        )
        assert [t.correct for t in r1.trials] == [t.correct for t in r2.trials]

    def test_different_seeds_draw_different_masks(self):
        import numpy as np

        policy = ExactFractionMask(0.05)
        masks_a = [
            policy.generate(512, np.random.default_rng([1, t])) for t in range(8)
        ]
        masks_b = [
            policy.generate(512, np.random.default_rng([2, t])) for t in range(8)
        ]
        assert masks_a != masks_b

    def test_trials_are_independent_streams(self, streams):
        alu = build_alu("alunn")
        campaign = FaultCampaign(alu, ExactFractionMask(0.10), seed=0)
        result = campaign.run_trials(streams["hue_shift"], 5)
        scores = [t.correct for t in result.trials]
        assert len(set(scores)) > 1  # not all identical


class TestScoring:
    def test_injected_fault_accounting(self, streams):
        alu = build_alu("alunn")  # 512 sites
        campaign = FaultCampaign(alu, FixedCountMask(3), seed=0)
        trial = campaign.run_workload(streams["reverse_video"])
        assert trial.injected_faults == 3 * 64

    def test_fixed_count_zero_perfect(self, streams):
        alu = build_alu("aluns")
        trial = FaultCampaign(alu, FixedCountMask(0), seed=0).run_workload(
            streams["reverse_video"]
        )
        assert trial.percent_correct == 100.0

    def test_suite_pools_all_trials(self, streams):
        alu = build_alu("aluns")
        result = FaultCampaign(alu, ExactFractionMask(0.01), seed=3).run_workload_suite(
            streams, trials_per_workload=5
        )
        assert result.stats.n == 10  # paper: 5 trials x 2 workloads

    def test_invalid_trial_count(self, streams):
        campaign = FaultCampaign(build_alu("alunn"), ExactFractionMask(0.0))
        with pytest.raises(ValueError):
            campaign.run_trials(streams["hue_shift"], 0)


class TestPaperOrdering:
    def test_tmr_beats_nocode_beats_cmos_at_3pct(self, streams):
        """The Figure 7 ranking at 3% injected faults."""
        scores = {}
        for name in ("aluncmos", "alunn", "aluns"):
            campaign = FaultCampaign(
                build_alu(name), ExactFractionMask(0.03), seed=7
            )
            scores[name] = campaign.run_workload_suite(streams, 5).percent_correct
        assert scores["aluns"] > scores["alunn"] > scores["aluncmos"]

    def test_hamming_below_nocode(self, streams):
        """The paper's surprising result: alunh < alunn."""
        scores = {}
        for name in ("alunh", "alunn"):
            campaign = FaultCampaign(
                build_alu(name), ExactFractionMask(0.02), seed=8
            )
            scores[name] = campaign.run_workload_suite(streams, 5).percent_correct
        assert scores["alunh"] < scores["alunn"]
