"""Unit tests for fault-site bookkeeping."""

import pytest

from repro.faults.sites import SiteSpace


class TestSegments:
    def test_layout(self):
        space = SiteSpace("alu")
        a = space.add("a", 10)
        b = space.add("b", 22)
        assert (a.offset, a.size, a.end) == (0, 10, 10)
        assert (b.offset, b.size, b.end) == (10, 22, 32)
        assert space.total_sites == 32

    def test_duplicate_name_rejected(self):
        space = SiteSpace()
        space.add("x", 1)
        with pytest.raises(ValueError, match="duplicate segment"):
            space.add("x", 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SiteSpace().add("x", -1)

    def test_zero_size_allowed(self):
        space = SiteSpace()
        seg = space.add("empty", 0)
        assert seg.size == 0
        assert space.total_sites == 0

    def test_lookup_by_name(self):
        space = SiteSpace()
        seg = space.add("core", 100)
        assert space.segment("core") == seg
        with pytest.raises(KeyError):
            space.segment("nope")

    def test_iteration_and_len(self):
        space = SiteSpace()
        space.add("a", 1)
        space.add("b", 2)
        assert len(space) == 2
        assert [s.name for s in space] == ["a", "b"]


class TestExtractInject:
    def test_extract_slices_correctly(self):
        space = SiteSpace()
        a = space.add("a", 4)
        b = space.add("b", 4)
        mask = 0b1010_0110
        assert a.extract(mask) == 0b0110
        assert b.extract(mask) == 0b1010

    def test_inject_lifts_correctly(self):
        space = SiteSpace()
        space.add("a", 4)
        b = space.add("b", 4)
        assert b.inject(0b1010) == 0b1010_0000

    def test_inject_overflow_rejected(self):
        space = SiteSpace()
        a = space.add("a", 4)
        with pytest.raises(ValueError):
            a.inject(1 << 4)

    def test_inject_extract_roundtrip(self):
        space = SiteSpace()
        space.add("pad", 13)
        seg = space.add("x", 9)
        for local in (0, 1, 0b101010101):
            assert seg.extract(seg.inject(local)) == local

    def test_contains(self):
        space = SiteSpace()
        space.add("a", 5)
        b = space.add("b", 5)
        assert not b.contains(4)
        assert b.contains(5)
        assert b.contains(9)
        assert not b.contains(10)


class TestAttribution:
    def test_counts_by_segment(self):
        space = SiteSpace()
        space.add("a", 8)
        space.add("b", 8)
        mask = 0b0000_0111_0000_0001  # 1 fault in a, 3 in b
        assert space.attribute(mask) == {"a": 1, "b": 3}

    def test_attribute_rejects_oversized_mask(self):
        space = SiteSpace()
        space.add("a", 4)
        with pytest.raises(ValueError):
            space.attribute(1 << 10)

    def test_owner_of(self):
        space = SiteSpace()
        space.add("a", 3)
        space.add("b", 3)
        assert space.owner_of(0).name == "a"
        assert space.owner_of(2).name == "a"
        assert space.owner_of(3).name == "b"
        with pytest.raises(IndexError):
            space.owner_of(6)


class TestNesting:
    def test_add_space_prefixes_names(self):
        inner = SiteSpace("core")
        inner.add("lut0", 32)
        inner.add("lut1", 32)
        outer = SiteSpace("alu")
        handles = outer.add_space("copy0", inner)
        assert set(handles) == {"lut0", "lut1"}
        assert outer.segment("copy0.lut0").size == 32
        assert outer.total_sites == 64
