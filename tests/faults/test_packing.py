"""Round-trip tests for the packed uint64 mask representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.packing import (
    int_to_words,
    pack_flags,
    unpack_flags,
    words_for_sites,
    words_to_int,
)


class TestWordsForSites:
    @pytest.mark.parametrize(
        "n_sites,expected",
        [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (129, 3), (5040, 79)],
    )
    def test_word_counts(self, n_sites, expected):
        assert words_for_sites(n_sites) == expected


class TestRoundTrips:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_flags_words_flags(self, bits, n_rows):
        flags = np.tile(np.array(bits, dtype=np.uint8), (n_rows, 1))
        words = pack_flags(flags)
        assert words.dtype == np.dtype("<u8")
        assert words.shape == (n_rows, words_for_sites(len(bits)))
        np.testing.assert_array_equal(unpack_flags(words, len(bits)), flags)

    @given(st.integers(min_value=0, max_value=2**200 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int_words_int(self, mask):
        n_sites = max(mask.bit_length(), 1)
        row = int_to_words(mask, n_sites)
        assert words_to_int(row) == mask

    def test_packed_row_matches_scalar_int(self):
        rng = np.random.default_rng(7)
        flags = (rng.random((4, 130)) < 0.3).astype(np.uint8)
        words = pack_flags(flags)
        for row in range(4):
            mask = words_to_int(words[row])
            for site in range(130):
                assert (mask >> site) & 1 == flags[row, site]

    def test_empty_batch(self):
        words = pack_flags(np.zeros((0, 10), dtype=np.uint8))
        assert words.shape == (0, 1)
        assert unpack_flags(words, 10).shape == (0, 10)
