"""Unit tests for FIT-rate arithmetic (paper Section 4 worked examples)."""

import pytest

from repro.faults.fit import (
    CLOCK_HZ,
    CMOS_REFERENCE_FIT,
    SECONDS_PER_CYCLE,
    faults_per_cycle_for_fit,
    fit_for_fault_fraction,
    fit_for_faults_per_cycle,
)


class TestConstants:
    def test_two_gigahertz(self):
        assert CLOCK_HZ == 2.0e9
        assert SECONDS_PER_CYCLE == pytest.approx(0.5e-9)

    def test_cmos_reference(self):
        # ~50,000 FITs ~ one error per 20,000 hours ~ one per two years.
        assert CMOS_REFERENCE_FIT == 5.0e4
        hours_per_error = 1e9 / CMOS_REFERENCE_FIT
        assert hours_per_error == pytest.approx(20_000)


class TestPaperWorkedExample:
    def test_aluss_one_percent(self):
        """Section 4: 1% of aluss's 5040 nodes ~ 50 faults / 0.5 ns ->
        3.6e14 errors/hour -> FIT 3.6e23."""
        assert fit_for_faults_per_cycle(50.0) == pytest.approx(3.6e23)

    def test_aluss_one_percent_via_fraction(self):
        fit = fit_for_fault_fraction(0.01, 5040)
        assert fit == pytest.approx(50.4 * 7.2e21, rel=1e-12)
        assert fit == pytest.approx(3.6e23, rel=0.01)

    def test_three_percent_exceeds_1e24(self):
        """Section 5: the FIT rate for aluss at 3% injected errors is
        ~1e24."""
        assert fit_for_fault_fraction(0.03, 5040) > 1e24

    def test_twenty_orders_of_magnitude(self):
        ratio = fit_for_fault_fraction(0.03, 5040) / CMOS_REFERENCE_FIT
        assert 1e19 < ratio < 1e21


class TestInverses:
    @pytest.mark.parametrize("faults", [0.0, 1.0, 50.0, 1234.5])
    def test_roundtrip(self, faults):
        assert faults_per_cycle_for_fit(
            fit_for_faults_per_cycle(faults)
        ) == pytest.approx(faults)

    def test_linear(self):
        assert fit_for_faults_per_cycle(100.0) == pytest.approx(
            2 * fit_for_faults_per_cycle(50.0)
        )


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fit_for_faults_per_cycle(-1)
        with pytest.raises(ValueError):
            faults_per_cycle_for_fit(-1)
        with pytest.raises(ValueError):
            fit_for_fault_fraction(-0.1, 100)
        with pytest.raises(ValueError):
            fit_for_fault_fraction(1.1, 100)
        with pytest.raises(ValueError):
            fit_for_fault_fraction(0.5, -1)
