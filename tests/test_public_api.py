"""Public-API surface and end-to-end integration tests."""

import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The docstring example must work verbatim."""
        from repro import ExactFractionMask, FaultCampaign, build_alu
        from repro.workloads import gradient, paper_workloads

        alu = build_alu("aluss")
        campaign = FaultCampaign(alu, ExactFractionMask(0.03), seed=0)
        result = campaign.run_workload_suite(paper_workloads(gradient()), 5)
        assert 90.0 <= result.percent_correct <= 100.0


class TestEndToEndSingleCell:
    """The paper's core experiment, through the public API."""

    def test_paper_evaluation_pipeline(self):
        from repro import ExactFractionMask, FaultCampaign, build_alu
        from repro.workloads import gradient, paper_workloads

        streams = paper_workloads(gradient(8, 8))
        scores = {}
        for variant in ("aluncmos", "alunh", "alunn", "aluns"):
            campaign = FaultCampaign(
                build_alu(variant), ExactFractionMask(0.03), seed=77
            )
            scores[variant] = campaign.run_workload_suite(
                streams, trials_per_workload=5
            ).percent_correct
        # Figure 7's ranking at 3% injected faults.
        assert scores["aluns"] > scores["alunn"] > scores["alunh"] \
            > scores["aluncmos"]


class TestEndToEndGrid:
    """Full-system integration: image in, image out, with failures."""

    def test_image_pipeline_under_duress(self):
        from repro import ExactFractionMask, GridSimulator
        from repro.workloads import gradient, reverse_video

        sim = GridSimulator(
            rows=3,
            cols=3,
            alu_scheme="tmr",
            alu_fault_policy=ExactFractionMask(0.01),
            kill_schedule={50: [(1, 1)]},
            seed=123,
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert (1, 1) in outcome.stats.failed_cells
        assert outcome.pixel_accuracy >= 0.9

    def test_hierarchy_description_of_grid_cell_alu(self):
        from repro import NanoBoxALU, describe_unit, render_tree

        box = describe_unit(NanoBoxALU(scheme="tmr"))
        assert box.sites == 1536
        assert "tmr" in render_tree(box)
