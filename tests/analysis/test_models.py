"""Tests for the closed-form models, cross-validated against Monte Carlo."""

import numpy as np
import pytest

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU
from repro.analysis.models import (
    hamming_lut_read_error_prob,
    instruction_error_prob,
    majority_error_prob,
    nocode_lut_read_error_prob,
    per_read_error_prob,
    predicted_percent_correct,
    replicated_lut_read_error_prob,
    voted_bundle_error_prob,
)
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import BernoulliMask
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable


class TestMajorityErrorProb:
    def test_classic_tmr_formula(self):
        for p in (0.0, 0.01, 0.1, 0.5, 1.0):
            expected = 3 * p**2 * (1 - p) + p**3
            assert majority_error_prob(p, 3) == pytest.approx(expected)

    def test_boundaries(self):
        assert majority_error_prob(0.0) == 0.0
        assert majority_error_prob(1.0) == 1.0
        assert majority_error_prob(0.5) == pytest.approx(0.5)

    def test_higher_order_better_below_half(self):
        p = 0.05
        assert majority_error_prob(p, 7) < majority_error_prob(p, 5) < \
            majority_error_prob(p, 3) < p

    def test_higher_order_worse_above_half(self):
        p = 0.8
        assert majority_error_prob(p, 5) > majority_error_prob(p, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_error_prob(0.1, 2)
        with pytest.raises(ValueError):
            majority_error_prob(1.5, 3)


class TestPerReadModels:
    def test_nocode_is_identity(self):
        assert nocode_lut_read_error_prob(0.03) == 0.03

    def test_replicated_is_majority(self):
        assert replicated_lut_read_error_prob(0.1) == majority_error_prob(0.1, 3)

    def test_dispatch(self):
        assert per_read_error_prob("none", 0.1) == 0.1
        assert per_read_error_prob("tmr", 0.1) == majority_error_prob(0.1, 3)
        with pytest.raises(ValueError):
            per_read_error_prob("cmos", 0.1)

    def test_hamming_zero_fault_rate(self):
        assert hamming_lut_read_error_prob(0.0) == pytest.approx(0.0)

    def test_hamming_exceeds_nocode(self):
        """The check-bit false positives must make the paper-calibrated
        Hamming read strictly worse than no code."""
        for p in (0.005, 0.01, 0.03):
            assert hamming_lut_read_error_prob(p) > nocode_lut_read_error_prob(p)

    def test_hamming_low_density_slope(self):
        """To first order the error is ~(check bits)*p = 5p: single
        check-bit hits fire false positives, single data-bit hits are
        absorbed."""
        p = 1e-4
        assert hamming_lut_read_error_prob(p) == pytest.approx(5 * p, rel=0.05)

    def test_hamming_monte_carlo_agreement(self):
        """Exact DP must match a direct simulation of the coded LUT."""
        p = 0.02
        table = TruthTable(5, 0x2B9D_55AA)
        lut = CodedLUT(table, "hamming")
        rng = np.random.default_rng(17)
        address = 7
        trials = 20000
        errors = 0
        block_bits = 21
        for _ in range(trials):
            flags = rng.random(block_bits) < p
            mask = 0
            for i, f in enumerate(flags):
                if f:
                    mask |= 1 << i
            if lut.read(address, mask) != table.lookup(address):
                errors += 1
        measured = errors / trials
        predicted = hamming_lut_read_error_prob(p, payload_index=address)
        assert measured == pytest.approx(predicted, abs=0.006)


class TestInstructionErrorProb:
    def test_xor_uses_width_reads(self):
        q = 0.01
        assert instruction_error_prob(q, Opcode.XOR) == pytest.approx(
            1 - (1 - q) ** 8
        )

    def test_add_uses_double_reads(self):
        q = 0.01
        assert instruction_error_prob(q, Opcode.ADD) == pytest.approx(
            1 - (1 - q) ** 16
        )

    def test_zero_error(self):
        assert instruction_error_prob(0.0, Opcode.ADD) == 0.0


class TestVotedBundle:
    def test_perfect_parts(self):
        assert voted_bundle_error_prob(0.0, 0.0) == 0.0

    def test_voter_dominates_when_cores_perfect(self):
        q = voted_bundle_error_prob(0.0, 0.01)
        assert q == pytest.approx(1 - 0.99**9)


class TestPredictedPercentCorrect:
    def test_zero_faults_is_100(self):
        for scheme in ("none", "tmr", "hamming"):
            assert predicted_percent_correct(scheme, 0.0) == pytest.approx(100.0)

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            predicted_percent_correct("none", 0.01, {Opcode.XOR: 0.6})

    @pytest.mark.parametrize("scheme,variant", [("none", "alunn"), ("tmr", "aluns")])
    @pytest.mark.parametrize("p", [0.01, 0.03])
    def test_matches_bernoulli_monte_carlo(self, scheme, variant, p,
                                           paper_instruction_streams):
        """Closed form vs simulation within a few points."""
        from repro.alu.variants import build_alu

        predicted = predicted_percent_correct(scheme, p)
        campaign = FaultCampaign(build_alu(variant), BernoulliMask(p), seed=3)
        measured = campaign.run_workload_suite(
            paper_instruction_streams, trials_per_workload=10
        ).percent_correct
        assert measured == pytest.approx(predicted, abs=5.0)

    def test_ranking_matches_paper(self):
        """At every density the model must rank tmr > none > hamming."""
        for p in (0.005, 0.01, 0.03, 0.09):
            tmr = predicted_percent_correct("tmr", p)
            none = predicted_percent_correct("none", p)
            hamming = predicted_percent_correct("hamming", p)
            assert tmr > none > hamming
