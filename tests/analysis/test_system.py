"""Tests for the system-level reliability composition."""

import numpy as np
import pytest

from repro.analysis.system import (
    cell_survival_probability,
    disagreement_probability,
    expected_instructions_to_disable,
    expected_surviving_cells,
    grid_degradation_horizon,
)


class TestDisagreementProbability:
    def test_zero_faults(self):
        assert disagreement_probability("tmr", 0.0) == 0.0

    def test_monotone_in_fault_rate(self):
        values = [disagreement_probability("none", p) for p in (0.01, 0.03, 0.09)]
        assert values[0] < values[1] < values[2]

    def test_tmr_detects_less_often(self):
        # TMR masks bit-level faults, so whole-copy errors are rarer.
        assert disagreement_probability("tmr", 0.03) < \
            disagreement_probability("none", 0.03)

    def test_bad_mix(self):
        from repro.alu.base import Opcode

        with pytest.raises(ValueError):
            disagreement_probability("none", 0.01, {Opcode.XOR: 0.7})

    def test_matches_simulation(self):
        """Cross-check against the cell's actual disagreement counter."""
        from repro.alu.nanobox import NanoBoxALU
        from repro.cell.aluctrl import ALUControl
        from repro.cell.memory import CellMemory
        from repro.cell.memword import MemoryWord
        from repro.faults.mask import BernoulliMask

        p = 0.02
        rng = np.random.default_rng(3)
        alu = NanoBoxALU(scheme="none")
        policy = BernoulliMask(p)
        memory = CellMemory(32)
        ctrl = ALUControl(
            memory, alu,
            mask_source=lambda: policy.generate(alu.site_count, rng),
        )
        trials = 600
        computed = 0
        pixels = [(i * 37 + 11) & 0xFF for i in range(32)]
        while computed < trials:
            for i in range(32):
                op = 0b010 if i % 2 == 0 else 0b111
                memory.write(i, MemoryWord(
                    instruction_id=i, opcode=op, operand1=pixels[i],
                    operand2=0x0C, data_valid=True, to_be_computed=True,
                ))
            ctrl.reset()
            computed += ctrl.sweep()
        measured = ctrl.disagreements / computed
        predicted = disagreement_probability("none", p)
        assert measured == pytest.approx(predicted, abs=0.08)


class TestDisableHorizon:
    def test_negative_binomial_mean(self):
        assert expected_instructions_to_disable(8, 0.1) == pytest.approx(90.0)
        assert expected_instructions_to_disable(0, 0.5) == pytest.approx(2.0)

    def test_zero_probability_infinite(self):
        assert expected_instructions_to_disable(8, 0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_instructions_to_disable(-1, 0.1)
        with pytest.raises(ValueError):
            expected_instructions_to_disable(1, 1.5)


class TestSurvival:
    def test_no_errors_survive(self):
        assert cell_survival_probability(1000, 8, 0.0) == 1.0

    def test_monotone_decreasing_in_length(self):
        values = [
            cell_survival_probability(n, 4, 0.05) for n in (10, 100, 400)
        ]
        assert values[0] > values[1] > values[2]

    def test_expected_surviving_cells(self):
        expected = expected_surviving_cells(64, 100, 4, 0.05)
        assert 0 <= expected <= 64
        assert expected == pytest.approx(
            64 * cell_survival_probability(100, 4, 0.05)
        )

    def test_horizon_consistent_with_survival(self):
        horizon = grid_degradation_horizon("none", 0.02, error_threshold=8)
        d = disagreement_probability("none", 0.02)
        assert cell_survival_probability(horizon, 8, d) >= 0.9
        assert cell_survival_probability(horizon + 5, 8, d) < 0.9 + 0.05

    def test_tmr_horizon_far_longer(self):
        # At 1% injected faults: ~19 instructions for uncoded cells vs
        # ~510 for TMR cells before the watchdog starts harvesting.
        assert grid_degradation_horizon("tmr", 0.01) > \
            20 * grid_degradation_horizon("none", 0.01)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            grid_degradation_horizon("none", 0.01, survival_target=1.5)
