"""Tests for the design-space helpers."""

import pytest

from repro.analysis.design_space import (
    accuracy_per_overhead,
    fault_budget,
    fit_budget,
    marginal_order_gain,
    nmr_breakeven_probability,
    tradeoff_table,
)
from repro.analysis.models import predicted_percent_correct


class TestFaultBudget:
    def test_budget_meets_target(self):
        for scheme in ("none", "tmr", "hamming"):
            budget = fault_budget(scheme, 98.0)
            assert predicted_percent_correct(scheme, budget) >= 98.0 - 1e-3

    def test_budget_is_maximal(self):
        budget = fault_budget("tmr", 98.0)
        assert predicted_percent_correct("tmr", budget + 1e-3) < 98.0

    def test_tmr_budget_dwarfs_uncoded(self):
        assert fault_budget("tmr", 98.0) > 5 * fault_budget("none", 98.0)

    def test_hamming_budget_below_uncoded(self):
        assert fault_budget("hamming", 98.0) < fault_budget("none", 98.0)

    def test_unreachable_target(self):
        # No configuration holds 100.000..% at nonzero faults; at exactly
        # 100 the budget collapses to ~0.
        assert fault_budget("none", 100.0) == pytest.approx(0.0, abs=1e-5)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            fault_budget("tmr", 0.0)
        with pytest.raises(ValueError):
            fault_budget("tmr", 101.0)


class TestFitBudget:
    def test_paper_headline_decade(self):
        """TMR strings hold ~98% into the 1e24 FIT decade."""
        budget = fit_budget("tmr", 98.0)
        assert 1e23 < budget < 1e25

    def test_ordering(self):
        assert fit_budget("tmr", 98.0) > fit_budget("none", 98.0) \
            > fit_budget("hamming", 98.0)


class TestTradeoffs:
    def test_table_shape(self):
        rows = tradeoff_table(0.02)
        assert [r[0] for r in rows] == ["none", "hamming", "tmr", "5mr", "7mr"]
        for _scheme, overhead, accuracy, fom in rows:
            assert fom == pytest.approx(accuracy / overhead)

    def test_tmr_best_figure_of_merit_at_knee(self):
        """At the paper's 2-3% knee, triplication's accuracy per unit
        area beats the information code and every heavier replication
        order (an unprotected table is always 'cheapest' per site, but
        misses the accuracy target entirely there)."""
        rows = {r[0]: r[3] for r in tradeoff_table(0.025)}
        assert rows["tmr"] > rows["hamming"]
        assert rows["tmr"] > rows["5mr"] > rows["7mr"]

    def test_accuracy_per_overhead_consistent(self):
        rows = {r[0]: r[3] for r in tradeoff_table(0.01)}
        assert accuracy_per_overhead("tmr", 0.01) == pytest.approx(rows["tmr"])


class TestNMRAnalysis:
    def test_breakeven_is_half(self):
        assert nmr_breakeven_probability() == 0.5

    def test_marginal_gain_positive_below_breakeven(self):
        assert marginal_order_gain(0.05, 3) > 0
        assert marginal_order_gain(0.05, 5) > 0

    def test_marginal_gain_shrinks(self):
        assert marginal_order_gain(0.05, 3) > marginal_order_gain(0.05, 5)

    def test_marginal_gain_negative_above_breakeven(self):
        assert marginal_order_gain(0.7, 3) < 0
