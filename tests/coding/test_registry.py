"""Unit tests for the code registry."""

import pytest

from repro.coding import (
    HammingCode,
    IdentityCode,
    ParityCode,
    RepetitionCode,
    available_codes,
    make_code,
)


class TestRegistry:
    def test_available_sorted(self):
        names = available_codes()
        assert list(names) == sorted(names)
        assert {"none", "hamming", "tmr", "parity"} <= set(names)

    def test_make_none(self):
        assert isinstance(make_code("none", 32), IdentityCode)

    def test_make_hamming(self):
        code = make_code("hamming", 16)
        assert isinstance(code, HammingCode)
        assert code.total_bits == 21

    def test_make_tmr(self):
        code = make_code("tmr", 32)
        assert isinstance(code, RepetitionCode)
        assert code.copies == 3

    def test_make_higher_order(self):
        assert make_code("5mr", 8).total_bits == 40
        assert make_code("7mr", 8).total_bits == 56

    def test_make_parity(self):
        assert isinstance(make_code("parity", 8), ParityCode)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown code"):
            make_code("reed-solomon", 16)

    @pytest.mark.parametrize("name", ["none", "hamming", "tmr", "parity"])
    def test_all_roundtrip(self, name):
        code = make_code(name, 8)
        for data in (0, 0x55, 0xFF):
            assert code.decode(code.encode(data)).data == data
