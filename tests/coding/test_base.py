"""Unit tests for the block-code base interface and the identity code."""

import pytest

from repro.coding.base import DecodeOutcome, DecodeResult, IdentityCode


class TestIdentityCode:
    def test_no_overhead(self):
        code = IdentityCode(32)
        assert code.total_bits == 32
        assert code.check_bits == 0
        assert code.overhead == 1.0

    def test_encode_is_identity(self):
        code = IdentityCode(16)
        for data in (0, 1, 0xFFFF, 0x1234):
            assert code.encode(data) == data

    def test_decode_never_flags(self):
        code = IdentityCode(8)
        for stored in range(256):
            result = code.decode(stored)
            assert result.data == stored
            assert result.outcome is DecodeOutcome.CLEAN
            assert not result.corrected

    def test_range_checks(self):
        code = IdentityCode(4)
        with pytest.raises(ValueError):
            code.encode(16)
        with pytest.raises(ValueError):
            code.decode(16)

    def test_invalid_data_bits(self):
        with pytest.raises(ValueError):
            IdentityCode(0)
        with pytest.raises(ValueError):
            IdentityCode(-3)


class TestDecodeResult:
    def test_corrected_property(self):
        assert DecodeResult(0, DecodeOutcome.CORRECTED, 3).corrected
        assert not DecodeResult(0, DecodeOutcome.CLEAN).corrected
        assert not DecodeResult(0, DecodeOutcome.DETECTED).corrected

    def test_frozen(self):
        result = DecodeResult(1, DecodeOutcome.CLEAN)
        with pytest.raises(AttributeError):
            result.data = 2
