"""Unit tests for the repetition (NMR) code."""

import pytest

from repro.coding.base import DecodeOutcome
from repro.coding.tmr import RepetitionCode


class TestConstruction:
    def test_default_triplication(self):
        code = RepetitionCode(32)
        assert code.copies == 3
        assert code.total_bits == 96

    def test_five_copies(self):
        assert RepetitionCode(8, copies=5).total_bits == 40

    @pytest.mark.parametrize("copies", [0, 2, 4, -1])
    def test_even_or_nonpositive_copies_rejected(self, copies):
        with pytest.raises(ValueError):
            RepetitionCode(8, copies=copies)

    def test_paper_lut_geometry(self):
        # One 32-entry LUT triplicated = 96 sites; 16 LUTs = aluns' 1536.
        assert 16 * RepetitionCode(32).total_bits == 1536


class TestEncodeDecode:
    def test_encode_replicates(self):
        code = RepetitionCode(4)
        assert code.encode(0b1010) == 0b1010_1010_1010

    def test_clean_roundtrip(self):
        code = RepetitionCode(8)
        for data in range(256):
            result = code.decode(code.encode(data))
            assert result.data == data
            assert result.outcome is DecodeOutcome.CLEAN

    def test_single_copy_corruption_masked(self):
        code = RepetitionCode(8)
        stored = code.encode(0b1100_0011)
        for copy in range(3):
            for bit in range(8):
                corrupted = stored ^ (1 << (copy * 8 + bit))
                result = code.decode(corrupted)
                assert result.data == 0b1100_0011
                assert result.outcome is DecodeOutcome.CORRECTED

    def test_two_copies_same_bit_not_masked(self):
        code = RepetitionCode(8)
        stored = code.encode(0)
        corrupted = stored ^ (1 << 3) ^ (1 << (8 + 3))  # bit 3 in copies 0, 1
        assert code.decode(corrupted).data == 1 << 3

    def test_errors_in_different_bits_of_different_copies_masked(self):
        code = RepetitionCode(8)
        stored = code.encode(0x96)
        corrupted = stored ^ (1 << 0) ^ (1 << (8 + 5)) ^ (1 << (16 + 7))
        assert code.decode(corrupted).data == 0x96

    def test_copy_words(self):
        code = RepetitionCode(4)
        stored = code.encode(0b0110)
        assert code.copy_words(stored) == [0b0110] * 3


class TestDecodeBit:
    def test_matches_full_decode(self, rng):
        code = RepetitionCode(16)
        stored = code.encode(0xA5C3)
        for _ in range(50):
            corrupted = stored
            for __ in range(3):
                corrupted ^= 1 << int(rng.integers(code.total_bits))
            full = code.decode(corrupted).data
            for i in range(16):
                assert code.decode_bit(corrupted, i) == (full >> i) & 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            RepetitionCode(8).decode_bit(0, 8)

    def test_five_copy_masking(self):
        code = RepetitionCode(4, copies=5)
        stored = code.encode(0b1111)
        # Two copies of bit 0 corrupted: 3 of 5 still say 1.
        corrupted = stored ^ 1 ^ (1 << 4)
        assert code.decode_bit(corrupted, 0) == 1
