"""Unit tests for bit-string helpers."""

import numpy as np
import pytest

from repro.coding.bits import (
    bit_length_mask,
    bits_from_int,
    bits_to_int,
    hamming_distance,
    majority_int,
    popcount,
    random_word,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_single_bits(self):
        for i in range(70):
            assert popcount(1 << i) == 1

    def test_all_ones(self):
        assert popcount((1 << 100) - 1) == 100

    def test_mixed(self):
        assert popcount(0b1011001) == 4


class TestBitLengthMask:
    def test_zero_width(self):
        assert bit_length_mask(0) == 0

    def test_small_widths(self):
        assert bit_length_mask(1) == 1
        assert bit_length_mask(4) == 0xF
        assert bit_length_mask(8) == 0xFF

    def test_large_width(self):
        assert bit_length_mask(200) == (1 << 200) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length_mask(-1)


class TestBitsConversion:
    def test_roundtrip(self):
        for value in (0, 1, 0b1011, 0xDEAD, (1 << 33) | 5):
            n = max(value.bit_length(), 1)
            assert bits_to_int(bits_from_int(value, n)) == value

    def test_little_endian_order(self):
        assert bits_from_int(0b001, 3) == [1, 0, 0]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits_from_int(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance(0xABCD, 0xABCD) == 0

    def test_single_flip(self):
        assert hamming_distance(0b1000, 0b0000) == 1

    def test_symmetry(self):
        assert hamming_distance(0b1100, 0b0011) == hamming_distance(0b0011, 0b1100)


class TestMajorityInt:
    def test_three_way(self):
        assert majority_int([0b1100, 0b1010, 0b1001]) == 0b1000

    def test_unanimous(self):
        assert majority_int([0xF0, 0xF0, 0xF0]) == 0xF0

    def test_five_way(self):
        # bit 0 set in 3 of 5 -> kept; bit 1 set in 2 of 5 -> dropped.
        words = [0b01, 0b01, 0b11, 0b10, 0b00]
        assert majority_int(words) == 0b01

    def test_single_word(self):
        assert majority_int([42]) == 42

    def test_even_count_rejected(self):
        with pytest.raises(ValueError):
            majority_int([1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_int([])

    def test_one_corrupted_copy_masked(self):
        base = 0b10110010
        corrupted = base ^ 0b00011000
        assert majority_int([base, corrupted, base]) == base


class TestRandomWord:
    def test_width_respected(self, rng):
        for width in (1, 8, 31, 32, 33, 100):
            for _ in range(20):
                value = random_word(width, rng)
                assert 0 <= value < (1 << width)

    def test_zero_width(self, rng):
        assert random_word(0, rng) == 0

    def test_deterministic_per_seed(self):
        a = random_word(64, np.random.default_rng(7))
        b = random_word(64, np.random.default_rng(7))
        assert a == b

    def test_covers_high_bits(self, rng):
        # Over many draws of a 64-bit word, the top bit should appear.
        assert any(random_word(64, rng) >> 63 for _ in range(64))
