"""Unit tests for the detect-only parity code."""

import pytest

from repro.coding.base import DecodeOutcome
from repro.coding.parity import ParityCode


class TestParityCode:
    def test_one_check_bit(self):
        code = ParityCode(16)
        assert code.total_bits == 17
        assert code.check_bits == 1

    def test_even_parity_invariant(self):
        code = ParityCode(8)
        for data in range(256):
            stored = code.encode(data)
            assert bin(stored).count("1") % 2 == 0

    def test_clean_roundtrip(self):
        code = ParityCode(8)
        for data in range(256):
            result = code.decode(code.encode(data))
            assert result.data == data
            assert result.outcome is DecodeOutcome.CLEAN

    def test_single_error_detected_not_corrected(self):
        code = ParityCode(8)
        stored = code.encode(0b1010_0101)
        for position in range(code.total_bits):
            result = code.decode(stored ^ (1 << position))
            assert result.outcome is DecodeOutcome.DETECTED
            # Payload passes through as stored (possibly wrong): detection only.
            if position < 8:
                assert result.data == 0b1010_0101 ^ (1 << position)
            else:
                assert result.data == 0b1010_0101

    def test_double_error_escapes_detection(self):
        code = ParityCode(8)
        stored = code.encode(0xFF)
        result = code.decode(stored ^ 0b11)
        assert result.outcome is DecodeOutcome.CLEAN  # the classic parity hole
        assert result.data != 0xFF

    def test_range_checks(self):
        code = ParityCode(4)
        with pytest.raises(ValueError):
            code.encode(16)
        with pytest.raises(ValueError):
            code.decode(1 << 5)
