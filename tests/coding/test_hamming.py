"""Unit tests for the Hamming SEC code."""

import pytest

from repro.coding.base import DecodeOutcome
from repro.coding.hamming import HammingCode, check_bits_for


class TestCheckBitsFor:
    def test_paper_geometry(self):
        # 16 data bits need 5 check bits: this is what lands alunh on 672.
        assert check_bits_for(16) == 5

    def test_small_sizes(self):
        assert check_bits_for(1) == 2
        assert check_bits_for(4) == 3
        assert check_bits_for(11) == 4

    def test_boundaries(self):
        assert check_bits_for(26) == 5   # 2^5 - 5 - 1 = 26
        assert check_bits_for(27) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_bits_for(0)


class TestHammingGeometry:
    def test_total_bits(self):
        code = HammingCode(16)
        assert code.total_bits == 21
        assert code.check_bits == 5

    def test_positions_partition(self):
        code = HammingCode(16)
        assert len(code.data_positions) == 16
        assert len(code.check_positions) == 5
        assert set(code.data_positions) | set(code.check_positions) == set(range(21))

    def test_check_positions_are_powers_of_two(self):
        code = HammingCode(16)
        for idx in code.check_positions:
            position = idx + 1
            assert position & (position - 1) == 0

    def test_overhead(self):
        assert HammingCode(16).overhead == pytest.approx(21 / 16)


class TestEncodeDecode:
    @pytest.mark.parametrize("data_bits", [4, 8, 11, 16])
    def test_roundtrip_clean(self, data_bits):
        code = HammingCode(data_bits)
        for data in range(min(1 << data_bits, 256)):
            result = code.decode(code.encode(data))
            assert result.data == data
            assert result.outcome is DecodeOutcome.CLEAN

    def test_encode_range_check(self):
        with pytest.raises(ValueError):
            HammingCode(4).encode(16)

    def test_decode_range_check(self):
        with pytest.raises(ValueError):
            HammingCode(4).decode(1 << 10)

    @pytest.mark.parametrize("data", [0, 1, 0x5A5A, 0xFFFF, 0x8001])
    def test_single_error_corrected_everywhere(self, data):
        code = HammingCode(16)
        stored = code.encode(data)
        for position in range(code.total_bits):
            result = code.decode(stored ^ (1 << position))
            assert result.data == data, f"flip at {position} not corrected"
            assert result.outcome is DecodeOutcome.CORRECTED
            assert result.flipped_position == position

    def test_double_error_miscorrects_or_detects(self):
        # A double error must never be reported CLEAN.
        code = HammingCode(16)
        stored = code.encode(0x1234)
        for i in range(code.total_bits):
            for j in range(i + 1, code.total_bits):
                corrupted = stored ^ (1 << i) ^ (1 << j)
                result = code.decode(corrupted)
                assert result.outcome is not DecodeOutcome.CLEAN

    def test_syndrome_zero_iff_codeword(self):
        code = HammingCode(8)
        for data in range(256):
            assert code.syndrome(code.encode(data)) == 0

    def test_extract_ignores_check_bits(self):
        code = HammingCode(16)
        stored = code.encode(0xBEEF)
        # Corrupting a check bit leaves extraction untouched.
        for idx in code.check_positions:
            assert code.extract(stored ^ (1 << idx)) == 0xBEEF


class TestShortenedCodeEdgeCases:
    def test_invalid_syndrome_detected(self):
        # For a shortened code some double errors produce syndromes past
        # the code length; the decoder must flag rather than crash.
        code = HammingCode(16)
        stored = code.encode(0)
        seen_detected = False
        for i in range(code.total_bits):
            for j in range(i + 1, code.total_bits):
                result = code.decode(stored ^ (1 << i) ^ (1 << j))
                if result.outcome is DecodeOutcome.DETECTED:
                    seen_detected = True
        assert seen_detected, "expected some invalid syndromes in a shortened code"
