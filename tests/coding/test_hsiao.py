"""Unit tests for the Hsiao SEC-DED code."""

import itertools

import pytest

from repro.coding.base import DecodeOutcome
from repro.coding.bits import popcount
from repro.coding.hsiao import HsiaoCode, check_bits_for


class TestCheckBitsFor:
    def test_classic_22_16(self):
        assert check_bits_for(16) == 6

    def test_small_sizes(self):
        assert check_bits_for(1) == 3   # one weight-3 column needs width 3
        assert check_bits_for(4) == 4   # C(4,3)=4 columns
        assert check_bits_for(8) == 5   # C(5,3)=10 >= 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_bits_for(0)


class TestConstruction:
    def test_geometry(self):
        code = HsiaoCode(16)
        assert code.total_bits == 22
        assert code.check_bits == 6

    def test_columns_odd_weight_and_distinct(self):
        code = HsiaoCode(16)
        assert len(set(code.columns)) == 16
        for col in code.columns:
            assert popcount(col) % 2 == 1
            assert popcount(col) >= 3

    def test_minimum_weight_selection(self):
        # With r=6 there are C(6,3)=20 weight-3 columns: all 16 used
        # columns should be weight 3.
        code = HsiaoCode(16)
        assert all(popcount(c) == 3 for c in code.columns)


class TestEncodeDecode:
    @pytest.mark.parametrize("data_bits", [4, 8, 16])
    def test_clean_roundtrip(self, data_bits):
        code = HsiaoCode(data_bits)
        for data in range(min(1 << data_bits, 256)):
            result = code.decode(code.encode(data))
            assert result.data == data
            assert result.outcome is DecodeOutcome.CLEAN

    @pytest.mark.parametrize("data", [0, 0xFFFF, 0x5A5A, 0x8001])
    def test_single_error_corrected(self, data):
        code = HsiaoCode(16)
        stored = code.encode(data)
        for position in range(code.total_bits):
            result = code.decode(stored ^ (1 << position))
            assert result.data == data, f"single error at {position}"
            assert result.outcome is DecodeOutcome.CORRECTED
            assert result.flipped_position == position

    def test_every_double_error_detected_never_miscorrected(self):
        """The SEC-DED guarantee Hamming lacks: any two flips produce a
        DETECTED verdict with the payload passed through unmodified --
        no third bit is ever corrupted by the decoder."""
        code = HsiaoCode(16)
        data = 0x1234
        stored = code.encode(data)
        data_mask = (1 << 16) - 1
        for i, j in itertools.combinations(range(code.total_bits), 2):
            corrupted = stored ^ (1 << i) ^ (1 << j)
            result = code.decode(corrupted)
            assert result.outcome is DecodeOutcome.DETECTED, (i, j)
            assert result.data == corrupted & data_mask

    def test_syndrome_zero_iff_codeword(self):
        code = HsiaoCode(8)
        for data in range(256):
            assert code.syndrome(code.encode(data)) == 0

    def test_range_checks(self):
        code = HsiaoCode(4)
        with pytest.raises(ValueError):
            code.encode(16)
        with pytest.raises(ValueError):
            code.decode(1 << code.total_bits)


class TestHsiaoLUTScheme:
    def test_lut_geometry(self):
        from repro.lut.coded import CodedLUT
        from repro.lut.table import TruthTable

        table = TruthTable.from_function(5, lambda *b: sum(b) % 2)
        lut = CodedLUT(table, "hsiao")
        assert lut.total_bits == 44  # two (22,16) blocks

    def test_single_fault_never_observable(self):
        from repro.lut.coded import CodedLUT
        from repro.lut.table import TruthTable

        table = TruthTable.from_function(5, lambda *b: sum(b) % 2)
        lut = CodedLUT(table, "hsiao")
        for address in (0, 13, 31):
            for site in range(44):
                assert lut.read(address, 1 << site) == table.lookup(address)

    def test_double_fault_no_false_positive(self):
        """A double error on *non-addressed* bits of the block must leave
        the addressed read intact -- the fix for the alunh pathology."""
        from repro.coding.hsiao import HsiaoCode as HC
        from repro.lut.coded import CodedLUT
        from repro.lut.table import TruthTable

        table = TruthTable.from_function(5, lambda *b: sum(b) % 2)
        lut = CodedLUT(table, "hsiao")
        address = 3  # block 0, payload index 3
        # Flip two other data bits of block 0.
        mask = (1 << 5) | (1 << 9)
        assert lut.read(address, mask) == table.lookup(address)

    def test_registry(self):
        from repro.coding import make_code

        assert make_code("hsiao", 16).total_bits == 22
