"""Property-based tests for the coding substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    HammingCode,
    IdentityCode,
    ParityCode,
    RepetitionCode,
)
from repro.coding.base import DecodeOutcome
from repro.coding.bits import (
    bits_from_int,
    bits_to_int,
    hamming_distance,
    majority_int,
    popcount,
)

data16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
data8 = st.integers(min_value=0, max_value=255)


class TestBitProperties:
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_popcount_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=64, max_value=80))
    def test_bits_roundtrip(self, value, width):
        assert bits_to_int(bits_from_int(value, width)) == value

    @given(data16, data16, data16)
    def test_majority3_between_inputs(self, a, b, c):
        m = majority_int([a, b, c])
        # Majority of any bit equals at least two of the inputs' bits,
        # so m agrees with each input on at least ... the simplest
        # invariant: majority(a, a, c) == a.
        assert majority_int([a, a, c]) == a
        # Bound: every set bit of m is set in at least two inputs.
        for i in range(max(a, b, c).bit_length()):
            votes = ((a >> i) & 1) + ((b >> i) & 1) + ((c >> i) & 1)
            assert ((m >> i) & 1) == (1 if votes >= 2 else 0)

    @given(data16, data16)
    def test_hamming_distance_triangle_zero(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0
        assert (hamming_distance(a, b) == 0) == (a == b)


class TestHammingProperties:
    @given(data16)
    def test_roundtrip(self, data):
        code = HammingCode(16)
        assert code.decode(code.encode(data)).data == data

    @given(data16, st.integers(min_value=0, max_value=20))
    def test_any_single_error_corrected(self, data, position):
        code = HammingCode(16)
        result = code.decode(code.encode(data) ^ (1 << position))
        assert result.data == data
        assert result.outcome is DecodeOutcome.CORRECTED

    @given(data16, st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=20))
    def test_double_error_never_clean(self, data, i, j):
        if i == j:
            return
        code = HammingCode(16)
        result = code.decode(code.encode(data) ^ (1 << i) ^ (1 << j))
        assert result.outcome is not DecodeOutcome.CLEAN

    @given(data16)
    def test_codeword_weight_parity_structure(self, data):
        # Syndrome of a valid codeword is always zero.
        code = HammingCode(16)
        assert code.syndrome(code.encode(data)) == 0


class TestRepetitionProperties:
    @given(data8, st.sampled_from([3, 5, 7]))
    def test_roundtrip(self, data, copies):
        code = RepetitionCode(8, copies=copies)
        assert code.decode(code.encode(data)).data == data

    @given(data8, st.lists(st.integers(min_value=0, max_value=23),
                           min_size=1, max_size=1))
    def test_single_flip_always_masked(self, data, flips):
        code = RepetitionCode(8)
        stored = code.encode(data)
        for f in flips:
            stored ^= 1 << f
        assert code.decode(stored).data == data

    @given(data8, st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_decode_bit_consistent_with_decode(self, data, noise):
        code = RepetitionCode(8)
        stored = code.encode(data) ^ noise
        full = code.decode(stored).data
        for i in range(8):
            assert code.decode_bit(stored, i) == (full >> i) & 1

    @given(data8, st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_majority_bounded_by_copies(self, data, noise):
        # Whatever the corruption, the decoded value only contains bits
        # that at least two copies assert.
        code = RepetitionCode(8)
        stored = code.encode(data) ^ noise
        words = code.copy_words(stored)
        decoded = code.decode(stored).data
        for i in range(8):
            votes = sum((w >> i) & 1 for w in words)
            assert ((decoded >> i) & 1) == (1 if votes >= 2 else 0)


class TestParityProperties:
    @given(data8)
    def test_roundtrip(self, data):
        code = ParityCode(8)
        result = code.decode(code.encode(data))
        assert result.data == data
        assert result.outcome is DecodeOutcome.CLEAN

    @given(data8, st.integers(min_value=0, max_value=(1 << 9) - 1))
    def test_detection_iff_odd_weight_error(self, data, error):
        code = ParityCode(8)
        result = code.decode(code.encode(data) ^ error)
        if popcount(error) % 2 == 1:
            assert result.outcome is DecodeOutcome.DETECTED
        else:
            assert result.outcome is DecodeOutcome.CLEAN


class TestIdentityProperties:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_transparent(self, data):
        code = IdentityCode(32)
        assert code.encode(data) == data
        assert code.decode(data).data == data
