"""Unit tests for the full-system simulator."""

import pytest

from repro.faults.mask import ExactFractionMask
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import hue_shift, reverse_video


class TestFaultFreeJobs:
    def test_reverse_video_exact(self):
        sim = GridSimulator(rows=3, cols=3, seed=0)
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.pixel_accuracy == 1.0
        assert outcome.job.complete
        assert outcome.output == reverse_video().apply(gradient(8, 8))

    def test_hue_shift_exact(self):
        sim = GridSimulator(rows=2, cols=4, seed=0)
        outcome = sim.run_image_job(gradient(8, 8), hue_shift())
        assert outcome.pixel_accuracy == 1.0

    def test_stats_clean(self):
        sim = GridSimulator(rows=2, cols=2, seed=0)
        outcome = sim.run_image_job(gradient(4, 4), reverse_video())
        assert outcome.stats.failed_cells == ()
        assert outcome.stats.dropped_packets == 0
        assert outcome.stats.memory_upsets == 0
        assert outcome.stats.cycles > 0


class TestCellFailures:
    def test_kill_schedule_triggers_failover(self):
        sim = GridSimulator(
            rows=3, cols=3, seed=1, kill_schedule={30: [(1, 1)]}
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert (1, 1) in outcome.stats.failed_cells
        assert outcome.pixel_accuracy == 1.0  # salvage + retry recovers

    def test_multiple_kills_still_recover(self):
        sim = GridSimulator(
            rows=3, cols=3, seed=2,
            kill_schedule={25: [(0, 0)], 60: [(1, 2)]},
        )
        outcome = sim.run_image_job(gradient(8, 8), hue_shift())
        assert len(outcome.stats.failed_cells) == 2
        assert outcome.pixel_accuracy == 1.0

    def test_unsalvageable_memory_recovered_by_retry(self):
        sim = GridSimulator(
            rows=3, cols=3, seed=3,
            kill_schedule={30: [(1, 1)]},
            memory_salvageable=False,
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        # Retry rounds re-submit whatever the dead cell swallowed.
        assert outcome.pixel_accuracy == 1.0


class TestALUFaults:
    def test_tmr_cells_survive_low_fault_rate(self):
        sim = GridSimulator(
            rows=2, cols=2, alu_scheme="tmr",
            alu_fault_policy=ExactFractionMask(0.01), seed=4,
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.pixel_accuracy >= 0.95

    def test_uncoded_cells_degrade_more(self):
        sim_tmr = GridSimulator(
            rows=2, cols=2, alu_scheme="tmr",
            alu_fault_policy=ExactFractionMask(0.05), seed=5,
        )
        sim_none = GridSimulator(
            rows=2, cols=2, alu_scheme="none",
            alu_fault_policy=ExactFractionMask(0.05), seed=5,
        )
        acc_tmr = sim_tmr.run_image_job(gradient(8, 8), hue_shift()).pixel_accuracy
        acc_none = sim_none.run_image_job(gradient(8, 8), hue_shift()).pixel_accuracy
        assert acc_tmr > acc_none


class TestMemoryUpsets:
    def test_upsets_injected_and_counted(self):
        sim = GridSimulator(
            rows=2, cols=2, seed=6, memory_upset_rate=1e-3
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.stats.memory_upsets > 0

    def test_triplicated_fields_ride_out_sparse_upsets(self):
        sim = GridSimulator(
            rows=2, cols=2, seed=7, memory_upset_rate=5e-5
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.pixel_accuracy >= 0.9

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            GridSimulator(memory_upset_rate=1.5)


class TestRawInstructionJobs:
    def test_run_instructions(self):
        sim = GridSimulator(rows=2, cols=2, seed=8)
        result = sim.run_instructions([(1, 0b000, 0xF0, 0xFF), (2, 0b001, 1, 2)])
        assert result.results == {1: 0xF0, 2: 3}


class TestLUTRouterPassthrough:
    def test_fault_free_lut_routers(self):
        sim = GridSimulator(rows=2, cols=2, seed=9, lut_router_scheme="tmr")
        outcome = sim.run_image_job(gradient(4, 4), reverse_video())
        assert outcome.pixel_accuracy == 1.0
        assert sim.grid.misroutes == 0

    def test_faulty_lut_routers_counted(self):
        sim = GridSimulator(
            rows=2, cols=2, seed=10,
            lut_router_scheme="none",
            router_fault_policy=ExactFractionMask(0.03),
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video(),
                                    max_rounds=4)
        assert sim.grid.misroutes + sim.grid.invalid_routes > 0
        # Returned results remain arithmetically correct regardless.
        expected = reverse_video().apply(gradient(8, 8))
        for iid, value in outcome.job.results.items():
            assert value == expected.pixels[iid]
