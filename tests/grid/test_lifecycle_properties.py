"""Property tests pinning the lifecycle's legacy-equivalence contract.

The self-healing lifecycle (leaky-bucket heartbeat scoring, quarantine,
canary probing) must collapse *exactly* to the paper's semantics when
switched off: ``decay=0`` reproduces the monotone error tally with its
inclusive threshold, and ``LifecyclePolicy()`` (probing disabled)
reproduces one-shot permanent disable.  These tests drive randomized
event schedules through both the real objects and tiny independent
oracle models of the pre-lifecycle behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.heartbeat import Heartbeat
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import CellState, LifecyclePolicy, Watchdog

#: One heartbeat op: ("error", n), ("beat", None), or ("silence", None).
heartbeat_ops = st.lists(
    st.one_of(
        st.tuples(st.just("error"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("beat"), st.none()),
        st.tuples(st.just("silence"), st.none()),
    ),
    max_size=40,
)


class LegacyHeartbeatOracle:
    """The pre-lifecycle heartbeat: monotone tally, inclusive threshold."""

    def __init__(self, threshold):
        self.threshold = threshold
        self.errors = 0
        self.silent = False

    @property
    def healthy(self):
        return not self.silent and self.errors <= self.threshold

    def apply(self, op, arg):
        if op == "error":
            self.errors += arg
        elif op == "silence":
            self.silent = True
        return self.healthy


class TestHeartbeatLegacyEquivalence:
    @given(st.integers(min_value=0, max_value=10), heartbeat_ops)
    def test_decay_zero_matches_monotone_tally(self, threshold, ops):
        hb = Heartbeat(error_threshold=threshold, decay=0.0)
        oracle = LegacyHeartbeatOracle(threshold)
        for op, arg in ops:
            if op == "error":
                hb.record_error(arg)
            elif op == "silence":
                hb.silence()
            expected = oracle.apply(op, arg)
            assert hb.healthy == expected
            assert hb.beat() == expected
            # With no decay the score IS the lifetime tally.
            assert hb.error_score == hb.error_count == oracle.errors

    @given(st.integers(min_value=0, max_value=10), heartbeat_ops)
    def test_decay_zero_unhealthy_is_absorbing(self, threshold, ops):
        hb = Heartbeat(error_threshold=threshold, decay=0.0)
        went_unhealthy = False
        for op, arg in ops:
            if op == "error":
                hb.record_error(arg)
            elif op == "silence":
                hb.silence()
            hb.beat()
            went_unhealthy = went_unhealthy or not hb.healthy
            if went_unhealthy:
                assert not hb.healthy

    @given(
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.01, max_value=4.0),
        heartbeat_ops,
    )
    def test_decay_bounds_score_by_tally(self, threshold, decay, ops):
        """The leaky bucket never exceeds the monotone tally, never < 0."""
        hb = Heartbeat(error_threshold=threshold, decay=decay)
        for op, arg in ops:
            if op == "error":
                hb.record_error(arg)
            elif op == "silence":
                hb.silence()
            hb.beat()
            assert 0.0 <= hb.error_score <= hb.error_count

    @given(st.integers(min_value=0, max_value=10), heartbeat_ops)
    def test_decay_recovers_unless_silenced(self, threshold, ops):
        """With decay on, enough quiet beats restore health -- unless a
        hard silence() happened, which no amount of decay undoes."""
        hb = Heartbeat(error_threshold=threshold, decay=1.0)
        silenced = False
        for op, arg in ops:
            if op == "error":
                hb.record_error(arg)
            elif op == "silence":
                hb.silence()
                silenced = True
            hb.beat()
        for _ in range(200):
            hb.beat()
        assert hb.healthy == (not silenced)


#: A schedule of error injections: poll index -> [(coord, errors)].
def _injection_schedules(rows=2, cols=2, polls=6):
    coord = st.tuples(
        st.integers(min_value=0, max_value=rows - 1),
        st.integers(min_value=0, max_value=cols - 1),
    )
    event = st.tuples(coord, st.integers(min_value=1, max_value=5))
    return st.lists(
        st.lists(event, max_size=4), min_size=polls, max_size=polls
    )


class TestWatchdogLegacyEquivalence:
    @settings(deadline=None)
    @given(_injection_schedules(), st.integers(min_value=1, max_value=6))
    def test_default_policy_matches_oneshot_oracle(self, schedule, threshold):
        """Default policy + decay 0 == one-shot disable at first breach."""
        grid = NanoBoxGrid(2, 2, error_threshold=threshold)
        watchdog = Watchdog(grid, policy=LifecyclePolicy())

        oracle_errors = {}
        oracle_disabled = set()
        for events in schedule:
            for coord, errors in events:
                if coord not in oracle_disabled:
                    grid.cell(*coord).heartbeat.record_error(errors)
                    oracle_errors[coord] = (
                        oracle_errors.get(coord, 0) + errors
                    )
            watchdog.poll()
            for coord, total in oracle_errors.items():
                if total > threshold:
                    oracle_disabled.add(coord)
            assert set(watchdog.disabled_cells) == oracle_disabled
            # Probing off: the maintenance pass is a strict no-op.
            assert watchdog.probe_quarantined() == []
            assert set(watchdog.disabled_cells) == oracle_disabled
            # One-shot semantics: every disabled cell is RETIRED, never
            # QUARANTINED, and there is no SUSPECT grace.
            for coord in oracle_disabled:
                assert watchdog.state(coord) is CellState.RETIRED
            assert watchdog.cells_in_state(CellState.SUSPECT) == ()
            assert watchdog.cells_in_state(CellState.QUARANTINED) == ()

    @settings(deadline=None)
    @given(_injection_schedules(), st.integers(min_value=1, max_value=6))
    def test_disabled_set_monotone_without_probing(self, schedule, threshold):
        """Without probing, disabled cells never return -- even with a
        decaying heartbeat score (quarantine freezes the cell)."""
        grid = NanoBoxGrid(
            2, 2, error_threshold=threshold, heartbeat_decay=0.5
        )
        watchdog = Watchdog(grid, policy=LifecyclePolicy(suspect_polls=1))
        seen = set()
        for events in schedule:
            for coord, errors in events:
                grid.cell(*coord).heartbeat.record_error(errors)
            watchdog.poll()
            current = set(watchdog.disabled_cells)
            assert seen <= current
            seen = current
