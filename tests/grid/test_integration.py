"""Grid-level integration scenarios beyond the unit tests."""

import pytest

from repro.faults.mask import ExactFractionMask
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import checkerboard, gradient, random_bitmap
from repro.workloads.imaging import (
    brightness_boost,
    hue_shift,
    reverse_video,
    threshold_mask,
)


class TestMultipleWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [reverse_video(), hue_shift(), brightness_boost(), threshold_mask()],
        ids=lambda w: w.name,
    )
    def test_all_workloads_exact_when_fault_free(self, workload):
        sim = GridSimulator(rows=2, cols=4, seed=0)
        outcome = sim.run_image_job(gradient(8, 8), workload)
        assert outcome.pixel_accuracy == 1.0

    @pytest.mark.parametrize(
        "bitmap",
        [gradient(8, 8), checkerboard(8, 8), random_bitmap(8, 8, seed=5)],
        ids=["gradient", "checkerboard", "random"],
    )
    def test_all_bitmaps_processed(self, bitmap):
        sim = GridSimulator(rows=2, cols=2, seed=1)
        outcome = sim.run_image_job(bitmap, reverse_video())
        assert outcome.output == reverse_video().apply(bitmap)


class TestBackToBackJobs:
    def test_grid_reusable_across_jobs(self):
        sim = GridSimulator(rows=2, cols=2, seed=2)
        first = sim.run_image_job(gradient(8, 8), reverse_video())
        second = sim.run_image_job(gradient(8, 8), hue_shift())
        assert first.pixel_accuracy == 1.0
        assert second.pixel_accuracy == 1.0

    def test_larger_image_than_capacity_multi_round(self):
        # 2x2 cells x 8 words = 32 slots < 64 pixels: needs two rounds.
        sim = GridSimulator(rows=2, cols=2, n_words=8, seed=3)
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.pixel_accuracy == 1.0
        assert outcome.job.rounds == 2


class TestStress:
    def test_half_the_grid_dies(self):
        sim = GridSimulator(
            rows=3,
            cols=3,
            seed=4,
            kill_schedule={40: [(0, 0), (1, 1)], 80: [(0, 2), (2, 1)]},
        )
        outcome = sim.run_image_job(gradient(8, 8), hue_shift(), max_rounds=5)
        # (2,1) is a top-row cell: its whole column goes unreachable, but
        # retry rounds re-place everything on surviving columns.
        assert outcome.pixel_accuracy == 1.0

    def test_faulty_alus_with_cell_failures_combined(self):
        sim = GridSimulator(
            rows=3,
            cols=3,
            alu_scheme="tmr",
            alu_fault_policy=ExactFractionMask(0.02),
            kill_schedule={60: [(1, 0)]},
            seed=5,
        )
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        assert outcome.pixel_accuracy >= 0.85

    def test_all_but_one_cell_dead_still_completes(self):
        kills = [(r, c) for r in range(2) for c in range(2) if (r, c) != (1, 0)]
        sim = GridSimulator(rows=2, cols=2, seed=6,
                            kill_schedule={30: kills})
        outcome = sim.run_image_job(gradient(4, 4), reverse_video(),
                                    max_rounds=6)
        assert outcome.pixel_accuracy == 1.0
