"""Property-based tests for the grid layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.packet import (
    InstructionPacket,
    ResultPacket,
    parse_packet,
)
from repro.grid.routing import (
    choose_direction,
    instruction_candidates,
    result_candidates,
)
from repro.cell.router import Direction

instruction_packets = st.builds(
    InstructionPacket,
    dest_row=st.integers(min_value=0, max_value=255),
    dest_col=st.integers(min_value=0, max_value=255),
    instruction_id=st.integers(min_value=0, max_value=0xFFFF),
    opcode=st.integers(min_value=0, max_value=7),
    operand1=st.integers(min_value=0, max_value=255),
    operand2=st.integers(min_value=0, max_value=255),
)

result_packets = st.builds(
    ResultPacket,
    instruction_id=st.integers(min_value=0, max_value=0xFFFF),
    result=st.integers(min_value=0, max_value=255),
)

coords = st.tuples(st.integers(min_value=0, max_value=7),
                   st.integers(min_value=0, max_value=7))


class TestPacketProperties:
    @given(instruction_packets)
    def test_instruction_flit_roundtrip(self, packet):
        flits = packet.to_flits()
        assert all(0 <= f <= 255 for f in flits)
        assert parse_packet(flits) == packet

    @given(result_packets)
    def test_result_flit_roundtrip(self, packet):
        assert parse_packet(packet.to_flits()) == packet

    @given(instruction_packets, result_packets)
    def test_markers_disambiguate(self, instr, res):
        assert instr.to_flits()[0] != res.to_flits()[0]


class TestAdaptiveRoutingProperties:
    @given(coords, coords)
    def test_instruction_candidates_distinct_and_complete(self, dest, cell):
        candidates = instruction_candidates(dest[0], dest[1], cell[0], cell[1])
        if dest == cell:
            assert candidates == []
        else:
            assert len(candidates) == 4
            assert len(set(candidates)) == 4
            # The dimension-ordered primary leads.
            from repro.cell.router import route_packet

            assert candidates[0] is route_packet(
                dest[0], dest[1], cell[0], cell[1]
            ).direction

    @given(coords)
    def test_result_candidates_up_first_down_last(self, cell):
        candidates = result_candidates(cell[0], cell[1], top_row=7)
        assert candidates[0] is Direction.UP
        assert candidates[-1] is Direction.DOWN
        assert len(set(candidates)) == 4

    @given(coords, st.sets(
        st.sampled_from([Direction.UP, Direction.DOWN,
                         Direction.LEFT, Direction.RIGHT]),
        max_size=4,
    ))
    def test_choose_direction_respects_liveness(self, cell, dead):
        candidates = result_candidates(cell[0], cell[1], top_row=7)
        picked = choose_direction(
            candidates, cell, prev=None,
            neighbour_alive=lambda d: d not in dead,
        )
        if len(dead) == 4:
            assert picked is None
        else:
            assert picked is not None
            assert picked not in dead

    @given(coords, st.sampled_from(list(Direction)))
    def test_backtrack_only_when_sole_exit(self, cell, came_from):
        prev = came_from.step(*cell)
        candidates = result_candidates(cell[0], cell[1], top_row=7)
        picked = choose_direction(
            candidates, cell, prev=prev, neighbour_alive=lambda d: True
        )
        # With every neighbour alive, we never go straight back.
        assert picked is not None
        assert picked.step(*cell) != prev
