"""Unit tests for the grid fabric."""

import pytest

from repro.cell.cell import CellMode
from repro.cell.router import Direction
from repro.grid.grid import NanoBoxGrid
from repro.grid.packet import InstructionPacket


def packet_to(row, col, iid=1):
    return InstructionPacket(
        dest_row=row, dest_col=col, instruction_id=iid,
        opcode=0b010, operand1=0x0F, operand2=0xF0,
    )


class TestTopology:
    def test_dimensions(self):
        grid = NanoBoxGrid(3, 4)
        assert grid.rows == 3 and grid.cols == 4
        assert grid.top_row == 2
        assert len(list(grid.cells())) == 12

    def test_cell_lookup(self):
        grid = NanoBoxGrid(2, 2)
        assert grid.cell(1, 0).cell_id == (1, 0)
        with pytest.raises(IndexError):
            grid.cell(2, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            NanoBoxGrid(0, 3)

    def test_neighbours_interior(self):
        grid = NanoBoxGrid(3, 3)
        n = grid.neighbours(1, 1)
        assert n[Direction.UP] == (2, 1)
        assert n[Direction.DOWN] == (0, 1)
        assert n[Direction.LEFT] == (1, 2)
        assert n[Direction.RIGHT] == (1, 0)

    def test_neighbours_corner(self):
        grid = NanoBoxGrid(3, 3)
        n = grid.neighbours(0, 0)
        assert set(n) == {Direction.UP, Direction.LEFT}

    def test_alive_cells_initially_all(self):
        grid = NanoBoxGrid(2, 3)
        assert len(grid.alive_cells()) == 6


class TestReachability:
    def test_all_reachable_initially(self):
        grid = NanoBoxGrid(3, 3)
        for r in range(3):
            for c in range(3):
                assert grid.reachable(r, c)

    def test_dead_cell_unreachable(self):
        grid = NanoBoxGrid(3, 3)
        grid.kill_cell(1, 1)
        assert not grid.reachable(1, 1)

    def test_dead_cell_shadows_column_below(self):
        grid = NanoBoxGrid(3, 3)
        grid.kill_cell(1, 1)  # middle of column 1
        assert not grid.reachable(0, 1)  # below the dead cell
        assert grid.reachable(2, 1)      # above it
        assert grid.reachable(0, 0)      # other columns unaffected


class TestModeBroadcast:
    def test_mode_reaches_all_cells(self):
        grid = NanoBoxGrid(2, 2)
        grid.set_mode(CellMode.COMPUTE)
        assert all(cell.mode is CellMode.COMPUTE for cell in grid.cells())
        assert grid.mode is CellMode.COMPUTE


class TestPacketDelivery:
    def test_delivery_to_top_row_cell(self):
        grid = NanoBoxGrid(3, 3)
        grid.set_mode(CellMode.SHIFT_IN)
        assert grid.cp_send(packet_to(2, 1))
        for _ in range(20):
            grid.step()
        word = grid.cell(2, 1).memory.read(0)
        assert word.data_valid
        assert word.instruction_id == 1

    def test_delivery_routes_down_column(self):
        grid = NanoBoxGrid(4, 3)
        grid.set_mode(CellMode.SHIFT_IN)
        grid.cp_send(packet_to(0, 2, iid=9))
        for _ in range(60):
            grid.step()
        word = grid.cell(0, 2).memory.read(0)
        assert word.data_valid
        assert word.instruction_id == 9
        assert grid.idle()

    def test_cp_bus_backpressure(self):
        grid = NanoBoxGrid(2, 2)
        grid.set_mode(CellMode.SHIFT_IN)
        assert grid.cp_send(packet_to(1, 0, iid=1))
        # Edge bus is busy for 8 flit cycles; a second send must fail.
        assert not grid.cp_send(packet_to(1, 0, iid=2))
        assert grid.cp_bus_busy(0)

    def test_packet_to_dead_cell_dropped(self):
        grid = NanoBoxGrid(3, 3)
        grid.set_mode(CellMode.SHIFT_IN)
        grid.kill_cell(0, 1)
        grid.cp_send(packet_to(0, 1))
        for _ in range(60):
            grid.step()
        assert grid.dropped_packets
        assert not grid.cell(0, 1).memory.occupancy()

    def test_column_mismatch_routes_laterally(self):
        """A packet injected on the wrong column still arrives (the
        router walks it across the top row first)."""
        from repro.grid.routing import Envelope

        grid = NanoBoxGrid(3, 3)
        grid.set_mode(CellMode.SHIFT_IN)
        packet = packet_to(1, 0, iid=5)
        # Force injection via column 2's edge bus.
        top = (grid.top_row, 2)
        assert grid._buses[(("CP", "CP"), top)].try_send(Envelope(packet))
        for _ in range(120):
            grid.step()
        assert grid.cell(1, 0).memory.read(0).instruction_id == 5


class TestShiftOut:
    def test_results_reach_cp(self):
        grid = NanoBoxGrid(3, 2)
        grid.set_mode(CellMode.SHIFT_IN)
        for iid, (r, c) in enumerate([(0, 0), (1, 1), (2, 0)]):
            grid.cell(r, c).store_instruction(iid + 1, 0b111, 10, iid)
        grid.set_mode(CellMode.COMPUTE)
        for _ in range(40):
            grid.step()
        grid.set_mode(CellMode.SHIFT_OUT)
        for _ in range(200):
            grid.step()
        results = {p.instruction_id: p.result for p in grid.cp_inbox}
        assert results == {1: 10, 2: 11, 3: 12}

    def test_counters(self):
        grid = NanoBoxGrid(2, 2)
        grid.cell(0, 0).store_instruction(1, 0b010, 1, 2)
        assert grid.total_pending_instructions() == 1
        assert grid.total_completed_instructions() == 0
        grid.set_mode(CellMode.COMPUTE)
        for _ in range(10):
            grid.step()
        assert grid.total_pending_instructions() == 0
        assert grid.total_completed_instructions() == 1


class TestLinkStreamIndex:
    """The closed-form per-link PRNG index must equal the historical
    running counter over the eager construction order, because per-link
    fault streams are keyed by it (lazily built links must draw the same
    streams as the dense fabric)."""

    @pytest.mark.parametrize(
        "rows,cols", [(1, 1), (1, 4), (4, 1), (2, 2), (3, 5), (5, 3), (4, 4)]
    )
    def test_matches_construction_order(self, rows, cols):
        from repro.grid.grid import CONTROL_PROCESSOR

        grid = NanoBoxGrid(rows, cols)
        expected = {}
        counter = 0
        for r in range(rows):
            for c in range(cols):
                for direction in (Direction.UP, Direction.DOWN,
                                  Direction.LEFT, Direction.RIGHT):
                    nr, nc = direction.step(r, c)
                    if 0 <= nr < rows and 0 <= nc < cols:
                        expected[((r, c), (nr, nc))] = counter
                        counter += 1
        top = rows - 1
        for c in range(cols):
            for key in ((CONTROL_PROCESSOR, (top, c)),
                        ((top, c), CONTROL_PROCESSOR)):
                expected[key] = counter
                counter += 1
        assert set(expected) == set(grid._buses)
        for (src, dst), index in expected.items():
            assert grid._link_stream_index(src, dst) == index, (src, dst)
