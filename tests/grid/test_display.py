"""Tests for grid-state ASCII rendering."""

from repro.grid.display import (
    render_grid,
    render_lifecycle,
    render_reachability,
)
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import LifecyclePolicy, Watchdog


class TestRenderGrid:
    def test_healthy_grid(self):
        grid = NanoBoxGrid(2, 3)
        text = render_grid(grid)
        assert text.count("#00.") == 6
        assert "6/6 alive" in text
        assert "CP" in text

    def test_dead_cell_marked(self):
        grid = NanoBoxGrid(2, 2)
        grid.kill_cell(0, 1)
        text = render_grid(grid)
        assert text.count("X00.") == 1
        assert "3/4 alive" in text

    def test_occupancy_shown(self):
        grid = NanoBoxGrid(1, 1)
        grid.cell(0, 0).store_instruction(1, 0, 1, 2)
        grid.cell(0, 0).store_instruction(2, 0, 1, 2)
        assert "#02." in render_grid(grid)

    def test_error_pressure_glyphs(self):
        grid = NanoBoxGrid(1, 1, error_threshold=100)
        grid.cell(0, 0).heartbeat.record_error(3)
        assert "#003" in render_grid(grid)
        grid.cell(0, 0).heartbeat.record_error(20)
        assert "#00!" in render_grid(grid)

    def test_paper_orientation(self):
        """Top row (highest row address) renders first; highest column
        address renders leftmost."""
        grid = NanoBoxGrid(2, 2)
        grid.kill_cell(1, 1)  # top row, leftmost in paper coordinates
        lines = render_grid(grid).splitlines()
        top_line = lines[1]
        assert top_line.strip().startswith("X")


class TestRenderReachability:
    def test_all_reachable(self):
        text = render_reachability(NanoBoxGrid(2, 2))
        assert text.count("O") >= 4
        assert "x" not in text.splitlines()[1]

    def test_stranded_cells_marked(self):
        grid = NanoBoxGrid(3, 3)
        grid.kill_cell(1, 1)
        map_rows = render_reachability(grid).splitlines()[1:4]
        body = "".join(map_rows)
        assert body.count(".") == 1   # the dead cell
        assert body.count("x") == 1   # the cell below it
        assert body.count("O") == 7

    def test_adaptive_flag_shown(self):
        assert "adaptive routing: on" in render_reachability(
            NanoBoxGrid(2, 2, adaptive_routing=True)
        )


class TestRenderLifecycle:
    def test_all_active(self):
        grid = NanoBoxGrid(2, 3)
        watchdog = Watchdog(grid)
        text = render_lifecycle(watchdog)
        assert text.count("#00.") == 6
        assert "active 6" in text
        assert "retired 0" in text
        assert "readmitted 0x" in text

    def test_retired_cell_marked(self):
        """Probing off: the first silent poll retires the cell."""
        grid = NanoBoxGrid(2, 2)
        watchdog = Watchdog(grid)
        grid.kill_cell(0, 1)
        watchdog.poll()
        text = render_lifecycle(watchdog)
        assert text.count("X00.") == 1
        assert "retired 1" in text

    def test_quarantined_and_suspect_glyphs(self):
        grid = NanoBoxGrid(2, 2, error_threshold=2)
        policy = LifecyclePolicy(suspect_polls=2, probing=True)
        watchdog = Watchdog(grid, policy=policy)
        grid.cell(0, 0).heartbeat.record_error(3)
        watchdog.poll()  # first silent poll: SUSPECT
        text = render_lifecycle(watchdog)
        assert "?003" in text
        assert "suspect 1" in text
        watchdog.poll()
        watchdog.poll()  # grace exhausted: QUARANTINED
        text = render_lifecycle(watchdog)
        assert "Q003" in text
        assert "quarantined 1" in text

    def test_readmission_count_shown(self):
        grid = NanoBoxGrid(2, 2, error_threshold=2, heartbeat_decay=1.0)
        policy = LifecyclePolicy(probing=True, readmit_clean_probes=1)
        watchdog = Watchdog(grid, policy=policy)
        grid.cell(0, 0).heartbeat.record_error(6)
        watchdog.poll()
        watchdog.probe_quarantined()
        text = render_lifecycle(watchdog)
        assert "readmitted 1x" in text
        assert "active 4" in text

    def test_same_layout_as_render_grid(self):
        grid = NanoBoxGrid(3, 2)
        watchdog = Watchdog(grid)
        assert len(render_lifecycle(watchdog).splitlines()) == len(
            render_grid(grid).splitlines()
        )
