"""Tests for fabric-link utilisation statistics."""

from repro.grid.grid import NanoBoxGrid
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video


class TestBusStatistics:
    def test_fresh_grid_all_zero(self):
        stats = NanoBoxGrid(2, 2).bus_statistics()
        assert stats.delivered == 0
        assert stats.mesh_utilisation == 0.0
        assert stats.edge_utilisation == 0.0

    def test_idle_cycles_zero_utilisation(self):
        grid = NanoBoxGrid(2, 2)
        for _ in range(10):
            grid.step()
        stats = grid.bus_statistics()
        assert stats.mesh_utilisation == 0.0
        assert stats.peak_utilisation == 0.0

    def test_job_generates_traffic(self):
        sim = GridSimulator(rows=2, cols=2, seed=0)
        sim.run_image_job(gradient(8, 8), reverse_video())
        stats = sim.grid.bus_statistics()
        assert stats.delivered > 0
        assert 0.0 < stats.edge_utilisation <= 1.0
        assert stats.peak_utilisation >= stats.edge_utilisation
        assert stats.busiest_link

    def test_edge_buses_busier_than_mesh(self):
        """All traffic funnels through the pin interface, so the edge
        buses must average at least the mesh utilisation."""
        sim = GridSimulator(rows=3, cols=3, seed=1)
        sim.run_image_job(gradient(8, 8), reverse_video())
        stats = sim.grid.bus_statistics()
        assert stats.edge_utilisation >= stats.mesh_utilisation

    def test_utilisation_bounded(self):
        sim = GridSimulator(rows=2, cols=4, seed=2)
        sim.run_image_job(gradient(8, 8), reverse_video())
        stats = sim.grid.bus_statistics()
        for value in (stats.mesh_utilisation, stats.edge_utilisation,
                      stats.peak_utilisation):
            assert 0.0 <= value <= 1.0
