"""Randomised stress tests of the grid under arbitrary failure sets."""

import numpy as np
import pytest

from repro.grid.control import ControlProcessor
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import Watchdog


def random_kill_set(rng, rows, cols, count):
    """A random set of distinct cells to kill."""
    coords = [(r, c) for r in range(rows) for c in range(cols)]
    picks = rng.choice(len(coords), size=count, replace=False)
    return [coords[int(i)] for i in picks]


@pytest.mark.parametrize("seed", range(6))
def test_adaptive_jobs_complete_for_every_reachable_cell(seed):
    """Whatever two cells die, every cell the BFS calls reachable must
    actually serve instructions and return results."""
    rng = np.random.default_rng(seed)
    rows = cols = 3
    grid = NanoBoxGrid(rows, cols, adaptive_routing=True, n_words=8)
    for coord in random_kill_set(rng, rows, cols, 2):
        grid.kill_cell(*coord)
    cp = ControlProcessor(grid, watchdog=Watchdog(grid))

    reachable = [
        (r, c)
        for r in range(rows)
        for c in range(cols)
        if grid.reachable(r, c)
    ]
    if not reachable:
        return  # top row fully dead: nothing to test

    instructions = [
        (i, 0b111, (i * 29) & 0xFF, 3) for i in range(2 * len(reachable))
    ]
    result = cp.run_job(instructions, max_rounds=2)
    assert result.complete, (
        f"seed {seed}: missing {result.missing} with kills leaving "
        f"{reachable} reachable"
    )
    for iid, op, a, b in instructions:
        assert result.results[iid] == (a + b) & 0xFF


@pytest.mark.parametrize("seed", range(4))
def test_deterministic_fabric_never_wedges(seed):
    """The non-adaptive fabric may lose work when kills cut columns, but
    jobs must terminate (no deadlock/timeout) and returned results must
    be correct."""
    rng = np.random.default_rng(100 + seed)
    rows = cols = 3
    grid = NanoBoxGrid(rows, cols, n_words=8)
    for coord in random_kill_set(rng, rows, cols, 3):
        grid.kill_cell(*coord)
    cp = ControlProcessor(grid, watchdog=Watchdog(grid))
    instructions = [(i, 0b010, (i * 17) & 0xFF, 0xFF) for i in range(10)]
    result = cp.run_job(instructions, max_rounds=2)
    for iid, op, a, b in instructions:
        if iid in result.results:
            assert result.results[iid] == a ^ 0xFF


def test_no_result_duplication_or_fabrication():
    """Fabric invariant: every result the CP receives corresponds to a
    submitted instruction, arrives at most once per round sequence, and
    phantom IDs never appear -- even under failures and adaptive
    detours."""
    rng = np.random.default_rng(7)
    grid = NanoBoxGrid(3, 3, adaptive_routing=True, n_words=8)
    cp = ControlProcessor(grid, watchdog=Watchdog(grid))
    grid.kill_cell(1, 1)
    instructions = [(i + 100, 0b001, (i * 11) & 0xFF, 0x10) for i in range(12)]
    submitted_ids = {iid for iid, *_ in instructions}
    result = cp.run_job(instructions, max_rounds=3)
    assert set(result.results) <= submitted_ids
    # The CP inbox was fully drained between rounds; nothing lingers.
    assert not grid.cp_inbox


def test_mass_failure_mid_job_terminates():
    """Killing a third of the grid *during* the compute phase must not
    hang any phase, and surviving results must be correct."""
    from repro.grid.simulator import GridSimulator
    from repro.workloads.bitmap import gradient
    from repro.workloads.imaging import reverse_video

    sim = GridSimulator(
        rows=3,
        cols=3,
        seed=9,
        adaptive_routing=True,
        kill_schedule={50: [(0, 0), (1, 1)], 150: [(2, 2)]},
    )
    outcome = sim.run_image_job(gradient(8, 8), reverse_video(), max_rounds=4)
    expected = reverse_video().apply(gradient(8, 8))
    for iid in range(64):
        if iid in outcome.job.results:
            assert outcome.job.results[iid] == expected.pixels[iid]
    assert outcome.pixel_accuracy >= 0.9
