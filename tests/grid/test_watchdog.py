"""Unit tests for the watchdog and failover (paper Section 2.3)."""

import pytest

from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import Watchdog


def grid_with_work():
    grid = NanoBoxGrid(3, 3, n_words=8)
    for iid in range(4):
        grid.cell(1, 1).store_instruction(iid + 1, 0b010, iid, 0xFF)
    return grid


class TestDetection:
    def test_healthy_grid_no_reports(self):
        grid = NanoBoxGrid(2, 2)
        watchdog = Watchdog(grid)
        assert watchdog.poll() == []
        assert watchdog.disabled_cells == ()

    def test_silent_cell_detected_once(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        grid.kill_cell(1, 1)
        reports = watchdog.poll()
        assert len(reports) == 1
        assert reports[0].failed_cell == (1, 1)
        # A second poll must not re-report the same failure.
        assert watchdog.poll() == []
        assert watchdog.disabled_cells == ((1, 1),)

    def test_error_threshold_triggers_detection(self):
        grid = NanoBoxGrid(2, 2, error_threshold=2)
        watchdog = Watchdog(grid)
        grid.cell(0, 0).heartbeat.record_error(3)
        reports = watchdog.poll()
        assert [r.failed_cell for r in reports] == [(0, 0)]


class TestSalvage:
    def test_pending_words_move_to_neighbours(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        grid.kill_cell(1, 1)
        report = watchdog.poll()[0]
        assert report.salvaged_words == 4
        assert report.lost_words == 0
        assert report.fully_salvaged
        assert sum(report.adopted.values()) == 4
        # The words now sit in alive neighbours' memories, still pending.
        total_pending = grid.total_pending_instructions()
        assert total_pending == 4

    def test_adopters_are_neighbours(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        grid.kill_cell(1, 1)
        report = watchdog.poll()[0]
        neighbours = set(grid.neighbours(1, 1).values())
        assert set(report.adopted) <= neighbours

    def test_unsalvageable_memory_loses_words(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid, memory_salvageable=False)
        grid.kill_cell(1, 1)
        report = watchdog.poll()[0]
        assert report.salvaged_words == 0
        assert report.lost_words == 4
        assert not report.fully_salvaged
        assert grid.total_pending_instructions() == 0

    def test_overflow_widens_to_any_alive_cell(self):
        grid = NanoBoxGrid(1, 3, n_words=2)
        # Fill the only direct neighbour (row 0, col 1 has neighbours
        # (0,0) and (0,2)); saturate (0,0) so salvage must spill to (0,2).
        grid.cell(0, 0).store_instruction(1, 0, 0, 0)
        grid.cell(0, 0).store_instruction(2, 0, 0, 0)
        grid.cell(0, 1).store_instruction(3, 0b010, 1, 1)
        grid.cell(0, 1).store_instruction(4, 0b010, 2, 2)
        watchdog = Watchdog(grid)
        grid.kill_cell(0, 1)
        report = watchdog.poll()[0]
        assert report.lost_words == 0
        assert report.adopted == {(0, 2): 2}

    def test_dead_neighbourhood_widens_to_non_neighbours(self):
        """With every direct neighbour dead, salvage reaches the corners."""
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        neighbours = set(grid.neighbours(1, 1).values())
        for coord in neighbours:
            grid.kill_cell(*coord)
        grid.kill_cell(1, 1)
        reports = {r.failed_cell: r for r in watchdog.poll()}
        report = reports[(1, 1)]
        assert report.salvaged_words == 4
        assert report.lost_words == 0
        # Every adopter is a live *non-neighbour* (a corner of the 3x3).
        assert report.adopted
        assert not set(report.adopted) & neighbours
        assert all(grid.cell(*c).alive for c in report.adopted)

    def test_everything_full_loses_words(self):
        grid = NanoBoxGrid(1, 2, n_words=1)
        grid.cell(0, 0).store_instruction(1, 0, 0, 0)
        grid.cell(0, 1).store_instruction(2, 0b010, 1, 1)
        watchdog = Watchdog(grid)
        grid.kill_cell(0, 1)
        report = watchdog.poll()[0]
        assert report.lost_words == 1

    def test_reports_accumulate(self):
        grid = NanoBoxGrid(2, 2)
        watchdog = Watchdog(grid)
        grid.kill_cell(0, 0)
        watchdog.poll()
        grid.kill_cell(0, 1)
        watchdog.poll()
        assert len(watchdog.reports) == 2


def _pending_iids(grid):
    """Instruction IDs of every pending word, mapped to their cell."""
    homes = {}
    for cell in grid.cells():
        for index in cell.memory.pending_words():
            homes[cell.memory.read(index).instruction_id] = cell.cell_id
    return homes


class TestChainedFailover:
    """Words salvaged into a neighbour survive that neighbour failing too."""

    def test_adopted_words_resalvaged(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        grid.kill_cell(1, 1)
        first = watchdog.poll()[0]
        assert first.fully_salvaged

        # Pick the adopter holding the most of (1, 1)'s words and kill it.
        adopter = max(first.adopted, key=first.adopted.get)
        adopted_here = {
            iid
            for iid, home in _pending_iids(grid).items()
            if home == adopter
        }
        assert adopted_here
        grid.kill_cell(*adopter)
        second = watchdog.poll()[0]
        assert second.failed_cell == adopter
        assert second.fully_salvaged
        assert second.salvaged_words >= len(adopted_here)

        # Every original instruction is still pending somewhere alive --
        # nothing was stranded in the dead adopter.
        homes = _pending_iids(grid)
        assert set(homes) == {1, 2, 3, 4}
        for iid, home in homes.items():
            assert home not in (adopter, (1, 1))
            assert grid.cell(*home).alive

    def test_chain_never_resalvages_into_disabled_cells(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        grid.kill_cell(1, 1)
        first = watchdog.poll()[0]
        adopter = max(first.adopted, key=first.adopted.get)
        grid.kill_cell(*adopter)
        second = watchdog.poll()[0]
        # The first victim is disabled; it must never re-adopt its own
        # words even though its memory still has free slots.
        assert (1, 1) not in second.adopted
        assert not set(second.adopted) & set(watchdog.disabled_cells)

    def test_three_link_chain_preserves_all_words(self):
        grid = grid_with_work()
        watchdog = Watchdog(grid)
        chain = [(1, 1)]
        for _ in range(3):
            grid.kill_cell(*chain[-1])
            reports = watchdog.poll()
            report = next(r for r in reports if r.failed_cell == chain[-1])
            assert report.fully_salvaged
            adopter = max(report.adopted, key=report.adopted.get)
            chain.append(adopter)
        homes = _pending_iids(grid)
        assert set(homes) == {1, 2, 3, 4}
        assert all(grid.cell(*home).alive for home in homes.values())
