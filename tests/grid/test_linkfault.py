"""Unit tests for link-level fault injection and CRC framing."""

import numpy as np
import pytest

from repro.grid.bus import Bus
from repro.grid.linkfault import FaultEvent, FaultyBus, LinkFaultConfig
from repro.grid.packet import (
    InstructionPacket,
    ResultPacket,
    crc8,
    crc_valid,
    frame_flits,
)
from repro.grid.routing import Envelope


def instr(iid=1):
    return InstructionPacket(
        dest_row=1, dest_col=2, instruction_id=iid,
        opcode=0b010, operand1=0x3C, operand2=0x55,
    )


def envelope(packet=None):
    return Envelope(packet if packet is not None else instr())


def rng(seed=0):
    return np.random.default_rng(seed)


def bus(config, seed=0, crc_enabled=False, flit_overhead=0):
    return FaultyBus(
        "t", config, rng(seed),
        crc_enabled=crc_enabled, flit_overhead=flit_overhead,
    )


def deliver(faulty_bus, env, max_cycles=1000):
    """Tick until something comes off the link."""
    assert faulty_bus.try_send(env)
    for _ in range(max_cycles):
        out = faulty_bus.tick()
        if out is not None:
            return out
    raise AssertionError("nothing delivered within the cycle bound")


class TestLinkFaultConfig:
    def test_defaults_are_fault_free(self):
        config = LinkFaultConfig()
        assert not config.any_faults

    @pytest.mark.parametrize("field", ["bit_flip_rate", "drop_rate",
                                       "stall_rate"])
    def test_any_faults_per_field(self, field):
        assert LinkFaultConfig(**{field: 0.5}).any_faults

    @pytest.mark.parametrize("field,value", [
        ("bit_flip_rate", -0.1),
        ("bit_flip_rate", 1.1),
        ("drop_rate", -0.1),
        ("drop_rate", 1.1),
        ("stall_rate", -0.1),
        ("stall_rate", 1.0),  # must stay < 1 so transmission terminates
    ])
    def test_out_of_range_rates_rejected(self, field, value):
        with pytest.raises(ValueError):
            LinkFaultConfig(**{field: value})


class TestCRC8:
    def test_crc_flit_appended_and_valid(self):
        flits = frame_flits(instr(), with_crc=True)
        assert len(flits) == instr().flit_count + 1
        assert crc_valid(flits)

    def test_without_crc_is_raw_flits(self):
        assert frame_flits(instr(), with_crc=False) == instr().to_flits()

    def test_every_single_bit_flip_detected(self):
        """CRC-8 catches all single-bit errors, on every wire bit."""
        for packet in (instr(), ResultPacket(0x0102, 0xA5)):
            flits = frame_flits(packet, with_crc=True)
            for bit in range(len(flits) * 8):
                corrupted = list(flits)
                corrupted[bit // 8] ^= 1 << (bit % 8)
                assert not crc_valid(corrupted)

    def test_crc8_deterministic(self):
        assert crc8([0xA5, 0x01]) == crc8([0xA5, 0x01])
        assert crc8([]) == 0


class TestFaultyBus:
    def test_fault_free_config_behaves_like_bus(self):
        b = bus(LinkFaultConfig())
        env = envelope()
        out = deliver(b, env, max_cycles=env.flit_count)
        assert out is env
        assert b.delivered_count == 1

    def test_drop_rate_one_loses_every_packet(self):
        b = bus(LinkFaultConfig(drop_rate=1.0))
        env = envelope()
        out = deliver(b, env, max_cycles=env.flit_count)
        assert isinstance(out, FaultEvent)
        assert out.kind == "dropped"
        assert not out.detected  # invisible to the receiver
        assert out.envelope is env
        assert b.dropped_in_flight == 1
        # The link still burned its serialisation cycles and is free again.
        assert b.busy_cycles == env.flit_count
        assert not b.busy

    def test_stall_stretches_latency(self):
        b = bus(LinkFaultConfig(stall_rate=0.5), seed=3)
        env = envelope()
        assert b.try_send(env)
        cycles = 0
        while b.tick() is None:
            cycles += 1
            assert cycles < 1000
        total = cycles + 1
        assert total == env.flit_count + b.stalled_cycles
        assert b.stalled_cycles > 0

    def test_all_bits_flipped_without_crc_is_framing_reject(self):
        """Complementing every flit ruins the SOP/length: detected even
        without CRC, because the packet no longer parses."""
        b = bus(LinkFaultConfig(bit_flip_rate=1.0), crc_enabled=False)
        out = deliver(b, envelope())
        assert isinstance(out, FaultEvent)
        assert out.kind == "framing"
        assert out.detected
        assert b.framing_rejects == 1
        assert b.bit_flips == envelope().flit_count * 8

    def test_all_bits_flipped_with_crc_is_crc_reject(self):
        b = bus(LinkFaultConfig(bit_flip_rate=1.0), crc_enabled=True,
                flit_overhead=1)
        out = deliver(b, envelope())
        assert isinstance(out, FaultEvent)
        assert out.kind == "crc"
        assert out.detected
        assert b.crc_rejects == 1

    def test_fault_event_reports_original_payload(self):
        """The event carries the pre-corruption envelope, so the grid can
        account for exactly which packet was lost."""
        b = bus(LinkFaultConfig(bit_flip_rate=1.0), crc_enabled=True,
                flit_overhead=1)
        env = envelope(instr(iid=321))
        out = deliver(b, env)
        assert out.envelope.packet.instruction_id == 321

    def test_silent_corruption_without_crc(self):
        """At a low flip rate some corrupted packets still parse: they are
        delivered with flipped payload bits and nobody notices."""
        b = bus(LinkFaultConfig(bit_flip_rate=0.01), seed=5)
        silent = None
        for _ in range(400):
            out = deliver(b, envelope())
            if isinstance(out, Envelope) and out.packet != instr():
                silent = out
                break
        assert silent is not None
        assert b.silent_corruptions >= 1

    def test_crc_prevents_those_silent_corruptions(self):
        """The same channel with CRC on: every corrupted delivery in the
        same trial count is rejected, none slips through silently."""
        b = bus(LinkFaultConfig(bit_flip_rate=0.01), seed=5,
                crc_enabled=True, flit_overhead=1)
        for _ in range(400):
            out = deliver(b, envelope())
            if isinstance(out, Envelope):
                assert out.packet == instr()
        assert b.crc_rejects > 0
        assert b.silent_corruptions == 0

    def test_crc_flit_costs_one_cycle(self):
        clean = Bus("clean")
        framed = bus(LinkFaultConfig(), crc_enabled=True, flit_overhead=1)
        env = envelope()
        clean.try_send(env)
        framed.try_send(envelope())
        clean_cycles = 0
        while clean.tick() is None:
            clean_cycles += 1
        framed_cycles = 0
        while framed.tick() is None:
            framed_cycles += 1
        assert framed_cycles == clean_cycles + 1

    def test_busy_rejects_second_send_under_faults(self):
        b = bus(LinkFaultConfig(drop_rate=1.0))
        assert b.try_send(envelope())
        assert not b.try_send(envelope())


class TestGridIntegration:
    def test_detected_corruption_charges_receiver_heartbeat(self):
        """A CRC reject at a cell's inbox feeds its heartbeat error
        tally, closing the loop to the watchdog."""
        from repro.grid.grid import NanoBoxGrid

        grid = NanoBoxGrid(
            2, 2,
            link_fault_config=LinkFaultConfig(bit_flip_rate=1.0),
            crc_enabled=True,
        )
        packet = instr(iid=9)
        grid.cp_send(
            InstructionPacket(dest_row=0, dest_col=0, instruction_id=9,
                              opcode=0b000, operand1=1, operand2=2)
        )
        for _ in range(packet.flit_count + 1):
            grid.step()
        assert grid.corrupt_rejects == 1
        top = grid.cell(grid.top_row, 0)
        assert top.heartbeat.error_count == 1

    def test_cp_inbox_rejects_are_counted_separately(self):
        """Corruption on the upward edge bus lands in the CP tally, not a
        cell heartbeat."""
        from repro.grid.grid import NanoBoxGrid

        grid = NanoBoxGrid(
            1, 1,
            link_fault_config=LinkFaultConfig(bit_flip_rate=1.0),
            crc_enabled=True,
        )
        cell = grid.cell(0, 0)
        cell.store_instruction(5, 0b000, 1, 2)
        from repro.cell.cell import CellMode

        grid.set_mode(CellMode.COMPUTE)
        for _ in range(8):
            grid.step()
        grid.set_mode(CellMode.SHIFT_OUT)
        for _ in range(40):
            grid.step()
        assert grid.cp_corrupt_rejects >= 1
        assert not grid.cp_inbox

    def test_per_link_policy_callable(self):
        """A callable policy can make just one link faulty."""
        from repro.grid.grid import CONTROL_PROCESSOR, NanoBoxGrid

        def only_cp_downlink(src, dst):
            if src == CONTROL_PROCESSOR:
                return LinkFaultConfig(drop_rate=1.0)
            return None

        grid = NanoBoxGrid(2, 2, link_fault_config=only_cp_downlink)
        faulty = [
            b for b in grid._buses.values() if isinstance(b, FaultyBus)
        ]
        assert len(faulty) == 2  # one CP downlink per column
        packet = InstructionPacket(dest_row=0, dest_col=0,
                                   instruction_id=1, opcode=0b000,
                                   operand1=1, operand2=2)
        grid.cp_send(packet)
        for _ in range(packet.flit_count + 2):
            grid.step()
        assert grid.link_dropped == 1
        assert grid.link_fault_statistics().dropped == 1
