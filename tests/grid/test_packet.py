"""Unit tests for packet formats and flit serialisation."""

import pytest

from repro.grid.packet import (
    FLITS_PER_INSTRUCTION,
    FLITS_PER_RESULT,
    InstructionPacket,
    ResultPacket,
    parse_packet,
)


def instr(**overrides):
    fields = dict(
        dest_row=3, dest_col=2, instruction_id=0xBEEF,
        opcode=0b111, operand1=0x12, operand2=0x34,
    )
    fields.update(overrides)
    return InstructionPacket(**fields)


class TestInstructionPacket:
    def test_flit_roundtrip(self):
        packet = instr()
        flits = packet.to_flits()
        assert len(flits) == FLITS_PER_INSTRUCTION == packet.flit_count
        assert all(0 <= f <= 0xFF for f in flits)
        assert InstructionPacket.from_flits(flits) == packet

    def test_sixteen_bit_instruction_id(self):
        packet = instr(instruction_id=0xFFFF)
        assert InstructionPacket.from_flits(packet.to_flits()) == packet

    def test_field_validation(self):
        with pytest.raises(ValueError):
            instr(opcode=8)
        with pytest.raises(ValueError):
            instr(operand1=256)
        with pytest.raises(ValueError):
            instr(instruction_id=1 << 16)
        with pytest.raises(ValueError):
            instr(dest_row=-1)

    def test_bad_marker_rejected(self):
        flits = instr().to_flits()
        flits[0] = 0x00
        with pytest.raises(ValueError, match="SOP"):
            InstructionPacket.from_flits(flits)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError, match="flits"):
            InstructionPacket.from_flits([0xA5, 1, 2])


class TestResultPacket:
    def test_flit_roundtrip(self):
        packet = ResultPacket(instruction_id=0x0102, result=0x7E)
        flits = packet.to_flits()
        assert len(flits) == FLITS_PER_RESULT == packet.flit_count
        assert ResultPacket.from_flits(flits) == packet

    def test_results_shorter_than_instructions(self):
        # The asymmetric flit cost drives shift-out being faster per hop.
        assert FLITS_PER_RESULT < FLITS_PER_INSTRUCTION

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultPacket(instruction_id=-1, result=0)
        with pytest.raises(ValueError):
            ResultPacket(instruction_id=0, result=512)


class TestParsePacket:
    def test_dispatch(self):
        assert isinstance(parse_packet(instr().to_flits()), InstructionPacket)
        assert isinstance(
            parse_packet(ResultPacket(1, 2).to_flits()), ResultPacket
        )

    def test_empty(self):
        with pytest.raises(ValueError):
            parse_packet([])

    def test_unknown_marker(self):
        with pytest.raises(ValueError, match="unknown SOP"):
            parse_packet([0x42, 0, 0, 0])
