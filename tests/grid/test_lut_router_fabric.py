"""Tests for LUT routers embedded in the live fabric."""

import numpy as np
import pytest

from repro.faults.mask import ExactFractionMask
from repro.grid.control import ControlProcessor
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import Watchdog


def make_grid(scheme, fault_fraction=0.0, seed=0, **kwargs):
    if fault_fraction > 0:
        policy = ExactFractionMask(fault_fraction)

        def factory(coord):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, coord[0], coord[1], 7])
            )
            from repro.cell.lutrouter import LUTRouter

            sites = LUTRouter(scheme).site_count
            return lambda: policy.generate(sites, rng)

    else:
        factory = None
    return NanoBoxGrid(
        3, 3, lut_router_scheme=scheme,
        router_mask_source_factory=factory, n_words=8, **kwargs
    )


def run_job(grid, n=12):
    cp = ControlProcessor(grid, watchdog=Watchdog(grid))
    instructions = [(i, 0b111, (i * 23) & 0xFF, 9) for i in range(n)]
    return cp.run_job(instructions, max_rounds=3), instructions


class TestFaultFreeLUTRouting:
    @pytest.mark.parametrize("scheme", ["none", "tmr"])
    def test_job_completes_exactly(self, scheme):
        grid = make_grid(scheme)
        result, instructions = run_job(grid)
        assert result.complete
        assert grid.misroutes == 0
        assert grid.invalid_routes == 0
        for iid, op, a, b in instructions:
            assert result.results[iid] == (a + b) & 0xFF


class TestFaultyLUTRouting:
    def test_uncoded_router_misroutes_but_results_stay_correct(self):
        """Misdelivered packets carry their own operands, so whatever
        comes back is still arithmetically right -- faults cost
        placement and retries, not correctness."""
        grid = make_grid("none", fault_fraction=0.02, seed=3)
        result, instructions = run_job(grid)
        assert grid.misroutes > 0
        for iid, op, a, b in instructions:
            if iid in result.results:
                assert result.results[iid] == (a + b) & 0xFF

    def test_tmr_router_outmasks_uncoded(self):
        grid_n = make_grid("none", fault_fraction=0.02, seed=3)
        grid_t = make_grid("tmr", fault_fraction=0.02, seed=3)
        run_job(grid_n)
        run_job(grid_t)
        assert grid_t.misroutes <= grid_n.misroutes

    def test_dimension_guard(self):
        with pytest.raises(ValueError, match="4-bit"):
            NanoBoxGrid(17, 2, lut_router_scheme="tmr")
