"""Unit tests for the fault-adaptive routing extension."""

import pytest

from repro.cell.cell import CellMode
from repro.cell.router import Direction
from repro.grid.control import ControlProcessor
from repro.grid.grid import NanoBoxGrid
from repro.grid.packet import InstructionPacket, ResultPacket
from repro.grid.routing import (
    Envelope,
    choose_direction,
    default_hop_budget,
    instruction_candidates,
    result_candidates,
)
from repro.grid.watchdog import Watchdog


class TestEnvelope:
    def test_flit_count_delegates(self):
        env = Envelope(ResultPacket(1, 2))
        assert env.flit_count == 4

    def test_forwarded_tracks_hops_and_prev(self):
        env = Envelope(ResultPacket(1, 2))
        fwd = env.forwarded((2, 3))
        assert fwd.hops == 1
        assert fwd.prev == (2, 3)
        assert fwd.packet is env.packet


class TestCandidateOrders:
    def test_instruction_primary_first(self):
        # dest col > cell col -> LEFT primary; dest row below -> DOWN next.
        candidates = instruction_candidates(0, 5, 2, 3)
        assert candidates[0] is Direction.LEFT
        assert candidates[1] is Direction.DOWN
        assert len(candidates) == 4
        assert len(set(candidates)) == 4

    def test_instruction_at_destination_empty(self):
        assert instruction_candidates(2, 3, 2, 3) == []

    def test_result_up_first_down_last(self):
        for col in (0, 1, 2):
            candidates = result_candidates(1, col, top_row=3)
            assert candidates[0] is Direction.UP
            assert candidates[-1] is Direction.DOWN

    def test_result_lateral_parity_alternates(self):
        even = result_candidates(1, 2, top_row=3)
        odd = result_candidates(1, 3, top_row=3)
        assert even[1] is Direction.LEFT
        assert odd[1] is Direction.RIGHT


class TestChooseDirection:
    def test_takes_first_alive(self):
        picked = choose_direction(
            [Direction.UP, Direction.LEFT],
            (1, 1),
            prev=None,
            neighbour_alive=lambda d: d is Direction.LEFT,
        )
        assert picked is Direction.LEFT

    def test_avoids_backtrack(self):
        # UP leads to (2,1) which is where we came from; LEFT is alive.
        picked = choose_direction(
            [Direction.UP, Direction.LEFT],
            (1, 1),
            prev=(2, 1),
            neighbour_alive=lambda d: True,
        )
        assert picked is Direction.LEFT

    def test_backtrack_allowed_as_last_resort(self):
        picked = choose_direction(
            [Direction.UP],
            (1, 1),
            prev=(2, 1),
            neighbour_alive=lambda d: d is Direction.UP,
        )
        assert picked is Direction.UP

    def test_isolated_returns_none(self):
        assert choose_direction(
            [Direction.UP, Direction.DOWN],
            (1, 1),
            prev=None,
            neighbour_alive=lambda d: False,
        ) is None


class TestHopBudget:
    def test_scales_with_grid(self):
        assert default_hop_budget(4, 4) > default_hop_budget(2, 2)
        assert default_hop_budget(3, 3) >= 4 * 6


class TestAdaptiveDelivery:
    def test_instruction_detours_around_dead_cell(self):
        """Destination (0,1) with (1,1) dead: the straight column route
        is cut, but the packet detours through a neighbouring column."""
        grid = NanoBoxGrid(3, 3, adaptive_routing=True)
        grid.kill_cell(1, 1)
        grid.set_mode(CellMode.SHIFT_IN)
        grid.cp_send(InstructionPacket(
            dest_row=0, dest_col=1, instruction_id=9,
            opcode=0b010, operand1=1, operand2=2,
        ))
        for _ in range(200):
            grid.step()
        assert grid.cell(0, 1).memory.read(0).instruction_id == 9

    def test_deterministic_fabric_drops_same_packet(self):
        grid = NanoBoxGrid(3, 3, adaptive_routing=False)
        grid.kill_cell(1, 1)
        grid.set_mode(CellMode.SHIFT_IN)
        grid.cp_send(InstructionPacket(
            dest_row=0, dest_col=1, instruction_id=9,
            opcode=0b010, operand1=1, operand2=2,
        ))
        for _ in range(200):
            grid.step()
        assert grid.cell(0, 1).memory.occupancy() == 0
        assert grid.dropped_packets

    def test_result_detours_back_to_cp(self):
        grid = NanoBoxGrid(3, 3, adaptive_routing=True)
        grid.cell(0, 1).store_instruction(5, 0b111, 20, 30)
        grid.set_mode(CellMode.COMPUTE)
        for _ in range(10):
            grid.step()
        grid.kill_cell(1, 1)  # cut the return column
        grid.kill_cell(2, 1)
        grid.set_mode(CellMode.SHIFT_OUT)
        for _ in range(300):
            grid.step()
        results = {p.instruction_id: p.result for p in grid.cp_inbox}
        assert results == {5: 50}

    def test_dead_top_row_cell_injection_rerouted(self):
        grid = NanoBoxGrid(3, 3, adaptive_routing=True)
        grid.kill_cell(2, 1)  # top-row middle
        assert grid.injection_column(1) in (0, 2)
        assert grid.reachable(0, 1)

    def test_no_alive_top_row(self):
        grid = NanoBoxGrid(2, 2, adaptive_routing=True)
        grid.kill_cell(1, 0)
        grid.kill_cell(1, 1)
        assert grid.injection_column(0) is None
        with pytest.raises(RuntimeError):
            grid.cp_send(InstructionPacket(
                dest_row=0, dest_col=0, instruction_id=1,
                opcode=0, operand1=0, operand2=0,
            ))

    def test_reachability_bfs_blocked_pocket(self):
        """A cell walled off by dead cells is unreachable even adaptively."""
        grid = NanoBoxGrid(3, 3, adaptive_routing=True)
        # Isolate the bottom-left corner (0, 2): its neighbours are
        # (1, 2) and (0, 1) in paper coordinates.
        grid.kill_cell(1, 2)
        grid.kill_cell(0, 1)
        assert not grid.reachable(0, 2)
        assert grid.reachable(0, 0)


class TestAdaptiveEndToEnd:
    def test_job_completes_around_dead_top_row_cell(self):
        grid = NanoBoxGrid(3, 3, adaptive_routing=True, n_words=8)
        grid.kill_cell(2, 1)
        cp = ControlProcessor(grid, watchdog=Watchdog(grid))
        instructions = [(i, 0b111, (i * 31) & 0xFF, 5) for i in range(16)]
        result = cp.run_job(instructions, max_rounds=2)
        assert result.complete
        for iid, op, a, b in instructions:
            assert result.results[iid] == (a + b) & 0xFF

    def test_adaptive_uses_cells_deterministic_cannot(self):
        """With a dead top-row cell, the adaptive fabric can still place
        work in that column while the deterministic one cannot."""
        killed = (2, 1)
        det = NanoBoxGrid(3, 3, adaptive_routing=False)
        det.kill_cell(*killed)
        ada = NanoBoxGrid(3, 3, adaptive_routing=True)
        ada.kill_cell(*killed)
        det_reach = sum(det.reachable(r, c) for r in range(3) for c in range(3))
        ada_reach = sum(ada.reachable(r, c) for r in range(3) for c in range(3))
        assert ada_reach > det_reach
        assert ada_reach == 8
        assert det_reach == 6
