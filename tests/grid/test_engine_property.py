"""Property tests for the event-driven sparse grid core.

Three algebraic contracts keep :class:`~repro.grid.engine.SparseGrid`
honest at any scale:

* **Bulk advance**: skipping a quiescent cell for N ticks and crediting
  its beats in one lump must be indistinguishable from N scalar dense
  ticks -- the sparse engine's whole premise.  Randomised operation
  schedules (steps, watchdog polls, error bursts, kills, mode switches)
  drive a dense and a sparse grid in lockstep and compare full
  :class:`~repro.grid.engine.GridState` snapshots.
* **Beat crediting**: ``Heartbeat.credit_beats(N)`` equals N ``beat()``
  calls on a quiescent heartbeat, for any N and any decay.
* **Shard merging**: folding region outcomes and observability counter
  snapshots is permutation-invariant, and a sharded fleet soak equals
  the serial unsharded reference no matter how regions are grouped.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell.heartbeat import Heartbeat
from repro.experiments.fleet import (
    RegionOutcome,
    decode_outcome,
    encode_outcome,
    merge_outcomes,
    run_fleet_region,
    run_fleet_soak,
    shard_fleet,
)
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.engine import GridState, SparseGrid
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import LifecyclePolicy, Watchdog
from repro.obs.metrics import MetricsRegistry

#: One fabric op applied identically to both engines.  Coordinates are
#: factors in [0, 1) scaled to the grid under test.
fabric_ops = st.lists(
    st.one_of(
        st.tuples(st.just("step"), st.integers(min_value=1, max_value=50)),
        st.tuples(st.just("poll"), st.integers(min_value=1, max_value=5)),
        st.tuples(
            st.just("error"),
            st.tuples(
                st.floats(min_value=0.0, max_value=0.999),
                st.floats(min_value=0.0, max_value=0.999),
                st.integers(min_value=1, max_value=5),
            ),
        ),
        st.tuples(
            st.just("kill"),
            st.tuples(
                st.floats(min_value=0.0, max_value=0.999),
                st.floats(min_value=0.0, max_value=0.999),
            ),
        ),
        st.tuples(st.just("probe"), st.none()),
    ),
    min_size=1,
    max_size=30,
)


def apply_ops(grid, watchdog, ops):
    """Replay one op schedule against a grid/watchdog pair."""
    rows, cols = grid.rows, grid.cols
    for op, arg in ops:
        if op == "step":
            for _ in range(arg):
                grid.step()
        elif op == "poll":
            for _ in range(arg):
                watchdog.poll()
        elif op == "error":
            rf, cf, count = arg
            coord = (int(rf * rows), int(cf * cols))
            if grid._cell_alive(coord):
                grid.cell(*coord).heartbeat.record_error(count)
        elif op == "kill":
            rf, cf = arg
            grid.kill_cell(int(rf * rows), int(cf * cols))
        elif op == "probe":
            watchdog.probe_quarantined()


class TestBulkAdvanceEquivalence:
    """Quiescent bulk skip == scalar dense ticks, for any op schedule."""

    @settings(deadline=None, max_examples=60)
    @given(
        ops=fabric_ops,
        decay=st.sampled_from([0.0, 0.25, 1.0]),
        threshold=st.integers(min_value=1, max_value=4),
    )
    def test_random_schedules_stay_identical(self, ops, decay, threshold):
        states = []
        for grid_cls in (NanoBoxGrid, SparseGrid):
            grid = grid_cls(
                4, 4, heartbeat_decay=decay, error_threshold=threshold
            )
            watchdog = Watchdog(
                grid,
                policy=LifecyclePolicy(
                    suspect_polls=1, probing=True, readmit_clean_probes=1
                ),
            )
            apply_ops(grid, watchdog, ops)
            states.append(GridState.from_grid(grid, watchdog))
        assert states[0] == states[1], "\n".join(
            states[0].diff(states[1])[:10]
        )

    @settings(deadline=None, max_examples=30)
    @given(
        quiet=st.integers(min_value=0, max_value=500),
        polls=st.integers(min_value=0, max_value=50),
    )
    def test_pure_idle_advance(self, quiet, polls):
        """N idle ticks + M polls leave both engines bit-identical."""
        states = []
        for grid_cls in (NanoBoxGrid, SparseGrid):
            grid = grid_cls(3, 5, heartbeat_decay=0.5, error_threshold=2)
            watchdog = Watchdog(grid)
            for _ in range(quiet):
                grid.step()
            for _ in range(polls):
                watchdog.poll()
            states.append(GridState.from_grid(grid, watchdog))
        assert states[0] == states[1]


class TestBeatCrediting:
    @settings(deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=1000),
        decay=st.floats(min_value=0.0, max_value=2.0),
        threshold=st.integers(min_value=0, max_value=8),
    )
    def test_credit_equals_n_beats_when_quiescent(
        self, n, decay, threshold
    ):
        """A quiescent heartbeat credited N beats == N live beat() calls."""
        lively = Heartbeat(error_threshold=threshold, decay=decay)
        credited = Heartbeat(error_threshold=threshold, decay=decay)
        assert lively.quiescent() and credited.quiescent()
        for _ in range(n):
            lively.beat()
        credited.credit_beats(n)
        assert lively.beats_emitted == credited.beats_emitted == n
        assert lively.error_score == credited.error_score
        assert lively.healthy == credited.healthy

    @settings(deadline=None)
    @given(
        errors=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=50),
    )
    def test_score_decay_breaks_quiescence(self, errors, n):
        """A decaying score is live work -- never bulk-creditable."""
        hb = Heartbeat(error_threshold=errors + 1, decay=0.5)
        hb.record_error(errors)
        assert hb.healthy and not hb.quiescent()
        while not hb.quiescent():
            hb.beat()
        before = hb.beats_emitted
        hb.credit_beats(n)
        assert hb.beats_emitted == before + n
        assert hb.quiescent()


PROCESS = TemporalFaultProcess.transient(0.001, errors_per_cycle=3)
SOAK = dict(
    ticks=120,
    process=PROCESS,
    wave_period=30,
    error_threshold=2,
    probe_interval=32,
)


class TestShardMerge:
    @settings(deadline=None, max_examples=10)
    @given(perm=st.permutations(list(range(4))))
    def test_outcome_merge_permutation_invariant(self, perm):
        shards = shard_fleet(8, 8, 4, seed=5)
        outcomes = [run_fleet_region(s, **SOAK) for s in shards]
        base = merge_outcomes(8, 8, outcomes)
        shuffled = merge_outcomes(8, 8, [outcomes[i] for i in perm])
        assert shuffled == base

    @settings(deadline=None, max_examples=10)
    @given(perm=st.permutations(list(range(5))))
    def test_counter_snapshot_merge_permutation_invariant(self, perm):
        """merge_snapshot over counter snapshots commutes (integer adds)."""
        snaps = []
        for i in range(5):
            reg = MetricsRegistry()
            reg.counter("fleet.quarantines").inc(3 * i + 1)
            reg.counter("fleet.fault_events").inc(i)
            reg.counter(f"fleet.region{i}").inc()
            snaps.append(reg.snapshot())
        base = MetricsRegistry()
        for snap in snaps:
            base.merge_snapshot(snap)
        shuffled = MetricsRegistry()
        for i in perm:
            shuffled.merge_snapshot(snaps[i])
        assert (
            base.snapshot()["counters"] == shuffled.snapshot()["counters"]
        )

    @settings(deadline=None, max_examples=8)
    @given(regions=st.integers(min_value=1, max_value=6))
    def test_sharded_equals_unsharded_totals(self, regions):
        """Any region count folds to the same totals as the serial fold."""
        reference = run_fleet_soak(
            6, 12, regions=regions, jobs=1, seed=9, **SOAK
        )
        shards = shard_fleet(6, 12, regions, seed=9)
        refold = merge_outcomes(
            6, 12, [run_fleet_region(s, **SOAK) for s in shards]
        )
        assert reference == refold
        assert reference.cells == 6 * 12

    def test_region_outcome_engine_independent(self):
        """Each region outcome is identical under sparse and dense."""
        for shard in shard_fleet(6, 9, 3, seed=2):
            sparse = run_fleet_region(shard, grid_engine="sparse", **SOAK)
            dense = run_fleet_region(shard, grid_engine="dense", **SOAK)
            assert sparse == dense

    @settings(deadline=None)
    @given(
        fields=st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=10,
            max_size=10,
        )
    )
    def test_outcome_json_round_trip(self, fields):
        outcome = RegionOutcome(*fields)
        payload = encode_outcome(outcome)
        assert decode_outcome(payload) == outcome
        import json

        assert decode_outcome(json.loads(json.dumps(payload))) == outcome
