"""Differential suite pinning the sparse engine to the dense simulator.

The event-driven :class:`~repro.grid.engine.SparseGrid` claims *bit
identity* with :class:`~repro.grid.grid.NanoBoxGrid`: for equal
construction parameters and seeds, every observable -- watchdog
transitions, heartbeat scores and beat counts, delivery statistics,
memory images, bus statistics, dropped-packet sequences -- must match
tick for tick.  These tests drive both engines through identical
scenarios and compare full :class:`~repro.grid.engine.GridState`
snapshots, across all three temporal fault kinds, link faults, load
shedding, and a matrix of seeds and grid sizes.
"""

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults.temporal import TemporalFaultProcess
from repro.grid import (
    ControlProcessor,
    GridSimulator,
    GridState,
    LifecyclePolicy,
    LinkFaultConfig,
    NanoBoxGrid,
    SparseGrid,
    Watchdog,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def workload(n, seed=0):
    rnd = random.Random(seed)
    return [
        (
            i,
            rnd.choice([0b000, 0b001, 0b010, 0b111]),
            rnd.randrange(256),
            rnd.randrange(256),
        )
        for i in range(n)
    ]


def snapshots(sim_kwargs, run):
    """Run the same scenario on both engines; return their states."""
    states = []
    for engine in ("dense", "sparse"):
        sim = GridSimulator(grid_engine=engine, **sim_kwargs)
        observed = run(sim)
        states.append(
            (GridState.from_grid(sim.grid, sim.watchdog), observed)
        )
    return states


def assert_identical(sim_kwargs, run):
    (dense_state, dense_obs), (sparse_state, sparse_obs) = snapshots(
        sim_kwargs, run
    )
    assert dense_state == sparse_state, "\n".join(
        dense_state.diff(sparse_state)[:20]
    )
    assert dense_obs == sparse_obs


class TestTemporalFaultKinds:
    """Sparse == dense under each temporal fault taxonomy class."""

    @pytest.mark.parametrize(
        "process",
        [
            TemporalFaultProcess.transient(0.002, errors_per_cycle=2),
            TemporalFaultProcess.intermittent(0.001, burst_length=5),
            TemporalFaultProcess.stuck_at(0.0008),
        ],
        ids=["transient", "intermittent", "permanent"],
    )
    @pytest.mark.parametrize("seed", [0, 2004])
    def test_job_under_faults(self, process, seed):
        kwargs = dict(
            rows=6,
            cols=6,
            temporal_fault_process=process,
            heartbeat_decay=0.5,
            error_threshold=3,
            lifecycle_policy=LifecyclePolicy(suspect_polls=1, probing=True),
            seed=seed,
        )

        def run(sim):
            job = sim.run_instructions(workload(180, seed), max_rounds=3)
            return (job.results, job.delivery, job.rounds, sim.stats())

        assert_identical(kwargs, run)

    def test_multi_job_series_keeps_identity(self):
        """Identity survives job boundaries (probe rounds, re-admission)."""
        kwargs = dict(
            rows=5,
            cols=5,
            temporal_fault_process=TemporalFaultProcess.intermittent(
                0.003, burst_length=4, errors_per_cycle=3
            ),
            heartbeat_decay=1.0,
            error_threshold=2,
            lifecycle_policy=LifecyclePolicy(
                suspect_polls=2, probing=True, readmit_clean_probes=1
            ),
            seed=7,
        )

        def run(sim):
            observed = []
            for j in range(4):
                job = sim.run_instructions(
                    workload(60, j), max_rounds=2, shed_to_capacity=True
                )
                observed.append((job.results, job.delivery))
            return (observed, sim.stats())

        assert_identical(kwargs, run)


class TestLinkFaultsAndShedding:
    def test_link_faults_with_crc(self):
        kwargs = dict(
            rows=4,
            cols=4,
            link_fault_config=LinkFaultConfig(
                bit_flip_rate=0.004, drop_rate=0.01, stall_rate=0.02
            ),
            crc_enabled=True,
            seed=11,
        )

        def run(sim):
            job = sim.run_instructions(workload(120, 3), max_rounds=3)
            return (
                job.results,
                job.delivery,
                sim.stats(),
                sim.grid.bus_statistics(),
                sim.grid.link_fault_statistics(),
            )

        assert_identical(kwargs, run)

    def test_link_faults_without_crc(self):
        kwargs = dict(
            rows=4,
            cols=4,
            link_fault_config=LinkFaultConfig(
                bit_flip_rate=0.01, drop_rate=0.005, stall_rate=0.0
            ),
            crc_enabled=False,
            seed=4,
        )

        def run(sim):
            job = sim.run_instructions(workload(100, 9), max_rounds=2)
            return (job.results, job.delivery, sim.stats())

        assert_identical(kwargs, run)

    def test_load_shedding_on_shrunken_fleet(self):
        """shed_to_capacity with mid-run deaths: capacity math must agree."""
        kwargs = dict(
            rows=4,
            cols=4,
            n_words=4,
            kill_schedule={15: [(2, 1), (3, 3)], 60: [(0, 0)]},
            seed=21,
        )

        def run(sim):
            job = sim.run_instructions(
                workload(128, 5), max_rounds=3, shed_to_capacity=True
            )
            return (job.results, job.delivery, job.unassigned, sim.stats())

        assert_identical(kwargs, run)

    def test_adaptive_routing_with_dead_columns(self):
        kwargs = dict(
            rows=5,
            cols=5,
            adaptive_routing=True,
            kill_schedule={10: [(4, 2)], 30: [(2, 2), (3, 1)]},
            seed=13,
        )

        def run(sim):
            job = sim.run_instructions(workload(90, 2), max_rounds=3)
            return (job.results, job.delivery, sim.stats())

        assert_identical(kwargs, run)


class TestSizeSeedMatrix:
    """Identity over a matrix of grid sizes and seeds."""

    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (5, 1), (3, 7)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_shapes(self, rows, cols, seed):
        kwargs = dict(
            rows=rows,
            cols=cols,
            temporal_fault_process=TemporalFaultProcess.transient(0.004),
            heartbeat_decay=0.25,
            error_threshold=2,
            seed=seed,
        )

        def run(sim):
            job = sim.run_instructions(
                workload(40, seed), max_rounds=2
            )
            return (
                job.results,
                job.delivery,
                sim.stats(),
                sim.grid.bus_statistics(),
            )

        assert_identical(kwargs, run)

    def test_scrub_and_alu_faults(self):
        from repro.faults.mask import ExactFractionMask

        kwargs = dict(
            rows=4,
            cols=4,
            alu_fault_policy=ExactFractionMask(0.01),
            scrub_interval=32,
            heartbeat_decay=0.5,
            error_threshold=4,
            seed=6,
        )

        def run(sim):
            job = sim.run_instructions(workload(150, 8), max_rounds=3)
            return (job.results, job.delivery, sim.scrub_corrections)

        assert_identical(kwargs, run)


class TestWatchdogTransitionTrace:
    """Watchdog lifecycle transitions match poll for poll, not just at end."""

    def test_state_trace_matches(self):
        process = TemporalFaultProcess.intermittent(
            0.004, burst_length=6, errors_per_cycle=2
        )
        traces = []
        for grid_cls in (NanoBoxGrid, SparseGrid):
            grid = grid_cls(4, 4, heartbeat_decay=1.0, error_threshold=2)
            watchdog = Watchdog(
                grid,
                policy=LifecyclePolicy(
                    suspect_polls=1, probing=True, readmit_clean_probes=1
                ),
            )
            streams = {
                coord: process.attach(coord, 99)
                for coord in grid.all_coords()
            }
            trace = []
            for t in range(400):
                grid.step()
                for coord in sorted(streams):
                    if not grid._cell_alive(coord):
                        continue
                    event = streams[coord].sample()
                    if event.quiet:
                        continue
                    if event.kill:
                        grid.kill_cell(*coord)
                    elif event.errors:
                        grid.cell(*coord).heartbeat.record_error(
                            event.errors
                        )
                watchdog.poll()
                if t % 25 == 0:
                    watchdog.probe_quarantined()
                trace.append(
                    tuple(
                        watchdog.state(c).value for c in grid.all_coords()
                    )
                )
            traces.append(trace)
        assert traces[0] == traces[1]

    def test_per_tick_grid_state(self):
        """Full GridState equality sampled mid-run, not only at the end."""
        process = TemporalFaultProcess.transient(0.01, errors_per_cycle=3)
        samples = [[], []]
        for slot, grid_cls in enumerate((NanoBoxGrid, SparseGrid)):
            grid = grid_cls(3, 3, heartbeat_decay=0.5, error_threshold=2)
            watchdog = Watchdog(grid)
            streams = {
                coord: process.attach(coord, 5)
                for coord in grid.all_coords()
            }
            for t in range(120):
                grid.step()
                for coord in sorted(streams):
                    if not grid._cell_alive(coord):
                        continue
                    event = streams[coord].sample()
                    if event.quiet:
                        continue
                    if event.errors:
                        grid.cell(*coord).heartbeat.record_error(
                            event.errors
                        )
                watchdog.poll()
                if t % 10 == 0:
                    samples[slot].append(
                        GridState.from_grid(grid, watchdog).to_snapshot()
                    )
        assert samples[0] == samples[1]


class TestControlProcessorPath:
    """Raw ControlProcessor driving (no simulator hooks) stays identical."""

    def test_full_job_with_decay_and_kills(self):
        results = []
        for grid_cls in (NanoBoxGrid, SparseGrid):
            grid = grid_cls(6, 6, heartbeat_decay=0.5, error_threshold=4)
            watchdog = Watchdog(
                grid, policy=LifecyclePolicy(suspect_polls=2, probing=True)
            )
            control = ControlProcessor(grid, watchdog)
            kills = {30: (2, 3), 55: (5, 1), 90: (0, 0)}
            errors = {40: (4, 4), 41: (4, 4), 60: (1, 2)}

            def hook(grid=grid):
                cycle = grid.cycle
                if cycle in kills:
                    grid.kill_cell(*kills[cycle])
                if cycle in errors:
                    r, c = errors[cycle]
                    if grid.cell(r, c).alive:
                        grid.cell(r, c).heartbeat.record_error(3)

            control.add_tick_hook(hook)
            job = control.run_job(workload(200, 7), max_rounds=3)
            results.append(
                (
                    GridState.from_grid(grid, watchdog).to_snapshot(),
                    job.results,
                    job.delivery,
                    grid.bus_statistics(),
                )
            )
        assert results[0] == results[1]


class TestCliStdout:
    """`--grid-engine sparse` CLI stdout is byte-identical to dense."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    @pytest.mark.parametrize(
        "argv",
        [
            (
                "grid", "--rows", "5", "--cols", "5", "--fault-percent",
                "1", "--kill", "2,3@40", "--seed", "5",
            ),
            (
                "lifecycle", "--rows", "4", "--cols", "4", "--jobs", "2",
                "--instructions", "48",
            ),
        ],
        ids=["grid", "lifecycle"],
    )
    def test_stdout_identical(self, argv):
        dense = self._run(*argv, "--grid-engine", "dense")
        sparse = self._run(*argv, "--grid-engine", "sparse")
        assert dense.returncode == 0, dense.stderr
        assert sparse.returncode == 0, sparse.stderr
        assert dense.stdout == sparse.stdout
