"""Unit tests for the control processor's protocol."""

import pytest

from repro.alu.reference import reference_compute
from repro.cell.cell import CellMode
from repro.grid.control import (
    ControlProcessor,
    DeliveryStats,
    JobResult,
    PhaseStats,
)
from repro.grid.grid import NanoBoxGrid
from repro.grid.linkfault import LinkFaultConfig
from repro.grid.packet import ResultPacket
from repro.grid.watchdog import Watchdog


def job(n=8):
    instructions = []
    for iid in range(n):
        a, b = (iid * 31) & 0xFF, (iid * 17 + 5) & 0xFF
        instructions.append((iid, 0b111, a, b))
    return instructions


def expected_for(instructions):
    return {
        iid: reference_compute(op, a, b).value
        for iid, op, a, b in instructions
    }


class TestAssignment:
    def test_round_robin_over_cells(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        placement, unassigned = cp.assign(job(8))
        assert not unassigned
        # Four cells, eight instructions: two each.
        from collections import Counter

        counts = Counter(placement.values())
        assert all(v == 2 for v in counts.values())

    def test_capacity_respected(self):
        grid = NanoBoxGrid(1, 2, n_words=2)
        cp = ControlProcessor(grid)
        placement, unassigned = cp.assign(job(6))
        assert len(placement) == 4
        assert len(unassigned) == 2

    def test_dead_cells_excluded(self):
        grid = NanoBoxGrid(2, 2)
        grid.kill_cell(1, 0)  # top-row cell: column 0 fully unreachable
        cp = ControlProcessor(grid)
        placement, _ = cp.assign(job(8))
        assert all(coord[1] != 0 for coord in placement.values())


class TestRunJob:
    def test_fault_free_job_complete_and_correct(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        instructions = job(8)
        result = cp.run_job(instructions)
        assert result.complete
        assert result.rounds == 1
        assert result.results == expected_for(instructions)
        assert result.accuracy_against(expected_for(instructions)) == 1.0

    def test_phase_cycles_accounted(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        result = cp.run_job(job(4))
        assert result.cycles.shift_in > 0
        assert result.cycles.compute > 0
        assert result.cycles.shift_out > 0
        assert result.cycles.total == (
            result.cycles.shift_in
            + result.cycles.compute
            + result.cycles.shift_out
        )

    def test_duplicate_ids_rejected(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        with pytest.raises(ValueError, match="unique"):
            cp.run_job([(1, 0, 0, 0), (1, 0, 0, 0)])

    def test_retry_recovers_from_precomputed_failure(self):
        """Kill a cell before the job: round one misses its share, round
        two reassigns to surviving cells."""
        grid = NanoBoxGrid(2, 2)
        watchdog = Watchdog(grid)
        cp = ControlProcessor(grid, watchdog=watchdog)
        grid.kill_cell(0, 0)
        instructions = job(8)
        result = cp.run_job(instructions, max_rounds=3)
        assert result.complete
        assert result.results == expected_for(instructions)

    def test_single_round_budget_leaves_missing(self):
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        instructions = job(8)  # only 4 fit
        result = cp.run_job(instructions, max_rounds=1)
        assert not result.complete
        assert len(result.missing) == 4

    def test_multi_round_drains_overflow(self):
        """Work that exceeds total memory capacity completes over
        several submission rounds."""
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        instructions = job(8)
        result = cp.run_job(instructions, max_rounds=3)
        assert result.complete
        assert result.rounds == 2


class TestReliableTransport:
    def test_retry_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="retry_backoff"):
            ControlProcessor(NanoBoxGrid(1, 1), retry_backoff=0.5)

    def test_duplicate_results_collapse_last_writer_wins(self):
        """Duplicates are counted and the latest copy kept (a genuine
        recomputation must overwrite a memory-corruption forgery)."""
        grid = NanoBoxGrid(1, 1)
        cp = ControlProcessor(grid)
        grid.cp_inbox.extend(
            [ResultPacket(1, 5), ResultPacket(1, 9), ResultPacket(2, 4)]
        )
        results, delivery = {}, DeliveryStats()
        cp._drain_inbox(results, delivery, known_ids={1, 2})
        assert results == {1: 9, 2: 4}
        assert delivery.duplicates == 1
        assert delivery.spurious_results == 0

    def test_spurious_instruction_ids_rejected(self):
        """A result whose ID matches no submitted instruction (silent
        link corruption) must not pollute the job's results."""
        grid = NanoBoxGrid(1, 1)
        cp = ControlProcessor(grid)
        grid.cp_inbox.extend([ResultPacket(7, 1), ResultPacket(1, 2)])
        results, delivery = {}, DeliveryStats()
        cp._drain_inbox(results, delivery, known_ids={1})
        assert results == {1: 2}
        assert delivery.spurious_results == 1

    def test_unassigned_accumulates_across_rounds(self):
        """IDs unplaced in round one stay reported even when a later
        round assigns them but they never complete."""
        grid = NanoBoxGrid(1, 2, n_words=2)  # capacity 4 of 6
        state = {"prev": None, "rounds": 0, "killed": False}

        def killer():
            mode = grid.mode
            if mode is CellMode.SHIFT_IN and state["prev"] is not mode:
                state["rounds"] += 1
                if state["rounds"] == 2 and not state["killed"]:
                    state["killed"] = True
                    grid.kill_cell(0, 0)
                    grid.kill_cell(0, 1)
            state["prev"] = mode

        cp = ControlProcessor(grid, tick_hooks=(killer,))
        result = cp.run_job(job(6), max_rounds=2)
        assert sorted(result.results) == [0, 1, 2, 3]
        # IDs 4 and 5 had no capacity in round one; round two reassigned
        # them to cells that died before computing.  They must still be
        # reported as unassigned, not silently forgotten.
        assert result.unassigned == [4, 5]
        assert result.missing == [4, 5]

    def test_completed_ids_leave_unassigned(self):
        """An ID unplaced in one round but completed later is no longer
        unassigned in the final result."""
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        result = cp.run_job(job(8), max_rounds=3)  # two rounds of 4
        assert result.complete
        assert result.unassigned == []

    def test_undeliverable_when_no_injection_point(self):
        """Packets for placements with no alive top-row entry are counted
        undeliverable, and expected counts only track injected packets."""
        grid = NanoBoxGrid(2, 2, adaptive_routing=True)
        cp = ControlProcessor(grid)
        grid.kill_cell(grid.top_row, 0)
        grid.kill_cell(grid.top_row, 1)
        instructions = job(2)
        queues, skipped = cp._build_shift_in_queues(
            instructions, {0: (0, 0), 1: (0, 1)}
        )
        assert queues == {}
        assert sorted(skipped) == [0, 1]
        result = cp.run_job(instructions, max_rounds=2)
        assert result.results == {}
        assert result.delivery.enqueued == 0
        assert result.delivery.timed_out == 0  # nothing was ever sent

    def test_all_drop_fabric_degrades_gracefully(self):
        """run_job returns (never raises, never hangs) on a fabric that
        drops every packet, with per-cause accounting."""
        grid = NanoBoxGrid(
            2, 2, link_fault_config=LinkFaultConfig(drop_rate=1.0)
        )
        cp = ControlProcessor(grid)
        instructions = job(4)
        result = cp.run_job(instructions, max_rounds=2)
        assert result.results == {}
        assert not result.complete
        assert result.rounds == 2
        assert result.delivery.link_dropped > 0
        assert result.delivery.timed_out > 0
        assert result.delivery.retransmissions > 0  # round two resent
        assert result.missing == [0, 1, 2, 3]

    def test_corrupt_rejected_accounted_per_job(self):
        """CRC rejects during the job land in DeliveryStats, scoped to
        this job (not lifetime grid counters)."""
        grid = NanoBoxGrid(
            2, 2,
            link_fault_config=LinkFaultConfig(bit_flip_rate=1.0),
            crc_enabled=True,
        )
        cp = ControlProcessor(grid)
        result = cp.run_job(job(4), max_rounds=1)
        assert result.results == {}
        assert result.delivery.corrupt_rejected > 0
        assert result.delivery.corrupt_rejected == grid.corrupt_rejects

    def test_retransmissions_counted_not_first_sends(self):
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        result = cp.run_job(job(8), max_rounds=3)
        # Two rounds of four first-time sends each: no retransmissions.
        assert result.delivery.enqueued == 8
        assert result.delivery.retransmissions == 0


class TestJobResultHelpers:
    def test_accuracy_against_empty(self):
        result = JobResult(
            results={}, submitted=0, rounds=0, cycles=PhaseStats()
        )
        assert result.accuracy_against({}) == 1.0

    def test_accuracy_counts_wrong_values(self):
        result = JobResult(
            results={1: 5, 2: 9}, submitted=2, rounds=1, cycles=PhaseStats()
        )
        assert result.accuracy_against({1: 5, 2: 10}) == 0.5
