"""Unit tests for the control processor's protocol."""

import pytest

from repro.alu.reference import reference_compute
from repro.grid.control import ControlProcessor, JobResult, PhaseStats
from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import Watchdog


def job(n=8):
    instructions = []
    for iid in range(n):
        a, b = (iid * 31) & 0xFF, (iid * 17 + 5) & 0xFF
        instructions.append((iid, 0b111, a, b))
    return instructions


def expected_for(instructions):
    return {
        iid: reference_compute(op, a, b).value
        for iid, op, a, b in instructions
    }


class TestAssignment:
    def test_round_robin_over_cells(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        placement, unassigned = cp.assign(job(8))
        assert not unassigned
        # Four cells, eight instructions: two each.
        from collections import Counter

        counts = Counter(placement.values())
        assert all(v == 2 for v in counts.values())

    def test_capacity_respected(self):
        grid = NanoBoxGrid(1, 2, n_words=2)
        cp = ControlProcessor(grid)
        placement, unassigned = cp.assign(job(6))
        assert len(placement) == 4
        assert len(unassigned) == 2

    def test_dead_cells_excluded(self):
        grid = NanoBoxGrid(2, 2)
        grid.kill_cell(1, 0)  # top-row cell: column 0 fully unreachable
        cp = ControlProcessor(grid)
        placement, _ = cp.assign(job(8))
        assert all(coord[1] != 0 for coord in placement.values())


class TestRunJob:
    def test_fault_free_job_complete_and_correct(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        instructions = job(8)
        result = cp.run_job(instructions)
        assert result.complete
        assert result.rounds == 1
        assert result.results == expected_for(instructions)
        assert result.accuracy_against(expected_for(instructions)) == 1.0

    def test_phase_cycles_accounted(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        result = cp.run_job(job(4))
        assert result.cycles.shift_in > 0
        assert result.cycles.compute > 0
        assert result.cycles.shift_out > 0
        assert result.cycles.total == (
            result.cycles.shift_in
            + result.cycles.compute
            + result.cycles.shift_out
        )

    def test_duplicate_ids_rejected(self):
        grid = NanoBoxGrid(2, 2)
        cp = ControlProcessor(grid)
        with pytest.raises(ValueError, match="unique"):
            cp.run_job([(1, 0, 0, 0), (1, 0, 0, 0)])

    def test_retry_recovers_from_precomputed_failure(self):
        """Kill a cell before the job: round one misses its share, round
        two reassigns to surviving cells."""
        grid = NanoBoxGrid(2, 2)
        watchdog = Watchdog(grid)
        cp = ControlProcessor(grid, watchdog=watchdog)
        grid.kill_cell(0, 0)
        instructions = job(8)
        result = cp.run_job(instructions, max_rounds=3)
        assert result.complete
        assert result.results == expected_for(instructions)

    def test_single_round_budget_leaves_missing(self):
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        instructions = job(8)  # only 4 fit
        result = cp.run_job(instructions, max_rounds=1)
        assert not result.complete
        assert len(result.missing) == 4

    def test_multi_round_drains_overflow(self):
        """Work that exceeds total memory capacity completes over
        several submission rounds."""
        grid = NanoBoxGrid(1, 1, n_words=4)
        cp = ControlProcessor(grid)
        instructions = job(8)
        result = cp.run_job(instructions, max_rounds=3)
        assert result.complete
        assert result.rounds == 2


class TestJobResultHelpers:
    def test_accuracy_against_empty(self):
        result = JobResult(
            results={}, submitted=0, rounds=0, cycles=PhaseStats()
        )
        assert result.accuracy_against({}) == 1.0

    def test_accuracy_counts_wrong_values(self):
        result = JobResult(
            results={1: 5, 2: 9}, submitted=2, rounds=1, cycles=PhaseStats()
        )
        assert result.accuracy_against({1: 5, 2: 10}) == 0.5
