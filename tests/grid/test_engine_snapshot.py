"""Golden pin of ``GridState.to_snapshot()`` for both grid engines.

The snapshot schema is the currency of the whole differential suite: a
silent format change (renamed key, re-ordered tuple, dropped counter)
would let the sparse and dense engines drift apart while their snapshots
kept comparing "equal".  This pin freezes the *exact* literal snapshot
of one small deterministic scenario -- a 2x2 grid, a mid-run kill, a
salvage, a dropped-and-resubmitted instruction wave -- and requires both
engines to reproduce it verbatim.  If a legitimate schema change lands,
update the literal here deliberately, in the same commit.
"""

from repro.grid import GridState, GridSimulator

#: The scenario under pin: addition job with a mid-run kill of (1, 1).
SCENARIO = dict(
    rows=2,
    cols=2,
    n_words=4,
    heartbeat_decay=0.5,
    error_threshold=2,
    kill_schedule={6: [(1, 1)]},
    seed=42,
)
INSTRUCTIONS = [(i, 0b001, i + 1, 2 * i + 1) for i in range(6)]

#: Every instruction completes: the three dropped by the kill are
#: resubmitted and delivered in round two.
EXPECTED_RESULTS = {0: 1, 1: 3, 2: 7, 3: 7, 4: 13, 5: 15}

_HEALTHY = {
    "alive": True,
    "forced_silent": False,
    "errors": 0,
    "score": 0.0,
    "beats": 98,
    "computed": 0,
    "disagreements": 0,
    "rejected": 0,
    "words": (0, 0, 0, 0),
}

GOLDEN_SNAPSHOT = {
    "grid": (2, 2),
    "cycle": 98,
    "mode": "shift_out",
    "cells": {
        (0, 0): {**_HEALTHY, "computed": 4},
        (0, 1): dict(_HEALTHY),
        (1, 0): {**_HEALTHY, "computed": 2},
        (1, 1): {
            **_HEALTHY,
            "alive": False,
            "forced_silent": True,
            "beats": 5,
        },
    },
    "counters": {
        "misroutes": 0,
        "invalid_routes": 0,
        "corrupt_rejects": 0,
        "cp_corrupt_rejects": 0,
        "link_dropped": 0,
        "dropped_packets": [
            ("instruction", 1),
            ("instruction", 3),
            ("instruction", 5),
        ],
        "cp_inbox": [],
    },
    "watchdog": {
        "states": {(1, 1): "retired"},
        "disabled": ((1, 1),),
        "quarantines": 1,
        "readmissions": 0,
        "salvages": [((1, 1), 6, 0, 0)],
        "probes": 0,
    },
}


def run_scenario(engine):
    sim = GridSimulator(grid_engine=engine, **SCENARIO)
    job = sim.run_instructions(INSTRUCTIONS, max_rounds=2)
    return GridState.from_grid(sim.grid, sim.watchdog), job


class TestGoldenSnapshot:
    def test_dense_engine_matches_golden(self):
        state, job = run_scenario("dense")
        assert state.to_snapshot() == GOLDEN_SNAPSHOT
        assert job.results == EXPECTED_RESULTS

    def test_sparse_engine_matches_golden(self):
        state, job = run_scenario("sparse")
        assert state.to_snapshot() == GOLDEN_SNAPSHOT
        assert job.results == EXPECTED_RESULTS

    def test_snapshot_round_trips_through_gridstate(self):
        state, _ = run_scenario("dense")
        clone = GridState(state.to_snapshot())
        assert clone == state
        assert clone.to_snapshot() == GOLDEN_SNAPSHOT
        assert not state.diff(clone)

    def test_repr_embeds_snapshot(self):
        """repr() is the debugging surface -- it must show the snapshot."""
        state, _ = run_scenario("dense")
        assert repr(state) == f"GridState({state.to_snapshot()!r})"

    def test_diff_pinpoints_divergence(self):
        state, _ = run_scenario("dense")
        mutated = state.to_snapshot()
        mutated["cells"][(0, 0)] = {
            **mutated["cells"][(0, 0)],
            "computed": 99,
        }
        mutated["cycle"] = 97
        report = GridState(state.to_snapshot()).diff(GridState(mutated))
        assert any("cycle" in line for line in report)
        assert any("computed" in line for line in report)
