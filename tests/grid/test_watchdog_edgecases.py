"""Edge-case pins for the watchdog lifecycle, captured against the dense grid.

These tests freeze two under-specified interleavings before the sparse
engine refactor so both engines inherit the same semantics:

* a cell that crosses the silence threshold on the very tick a canary
  probe round is in flight (probe rounds only ever touch cells already
  QUARANTINED at round start, and a freshly re-admitted cell re-enters
  the SUSPECT grace window rather than being re-quarantined instantly);
* an external ``heartbeat.revive()`` while the cell is QUARANTINED (the
  watchdog keeps the cell disabled and un-polled, but the fabric sees it
  alive again until a probe round formally re-admits it).
"""

import pytest

from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import CellState, LifecyclePolicy, Watchdog


def _grid(**kwargs):
    defaults = dict(error_threshold=2, heartbeat_decay=1.0, n_words=8)
    defaults.update(kwargs)
    return NanoBoxGrid(3, 3, **defaults)


def _policy(**kwargs):
    defaults = dict(
        suspect_polls=2,
        probing=True,
        readmit_clean_probes=2,
        retire_failed_rounds=2,
    )
    defaults.update(kwargs)
    return LifecyclePolicy(**defaults)


def _drive_to_quarantine(grid, watchdog, coord, errors=50):
    """Push one cell over threshold and poll until it is quarantined."""
    grid.cell(*coord).heartbeat.record_error(errors)
    for _ in range(100):
        watchdog.poll()
        if watchdog.state(coord) is CellState.QUARANTINED:
            return
    raise AssertionError(f"{coord} never reached QUARANTINED")


class TestSuspectDuringProbeRound:
    def test_probe_round_ignores_cell_that_went_suspect_same_tick(self):
        """A probe round only touches cells QUARANTINED at round start.

        Cell A is quarantined; on the same tick a probe round runs, cell B
        crosses its error threshold.  The probe round must not see B: B
        takes the normal SUSPECT grace path on the next poll, and every
        probe report from the round names A.
        """
        grid = _grid()
        watchdog = Watchdog(grid, policy=_policy())
        a, b = (1, 0), (1, 1)
        _drive_to_quarantine(grid, watchdog, a)

        # Same tick: B goes over threshold just as the probe round fires.
        grid.cell(*b).heartbeat.record_error(50)
        reports = watchdog.probe_quarantined()
        assert reports, "quarantined cell A should have been probed"
        assert {r.cell for r in reports} == {a}
        # B was not probed and is not yet SUSPECT -- nothing has polled it.
        assert watchdog.state(b) is CellState.ACTIVE
        assert all(r.cell != b for r in watchdog.probe_reports)

        # The next poll starts B down the ordinary grace path.
        watchdog.poll()
        assert watchdog.state(b) is CellState.SUSPECT
        assert b not in watchdog.disabled_cells

    def test_readmitted_cell_going_silent_reenters_grace_window(self):
        """Re-admission resets the silent streak: a cell that fails the
        instant it returns is SUSPECT again, not instantly re-quarantined."""
        grid = _grid()
        watchdog = Watchdog(grid, policy=_policy())
        coord = (2, 2)
        _drive_to_quarantine(grid, watchdog, coord)
        assert watchdog.quarantines == 1

        # Fault-free ALUs pass canaries; two clean rounds re-admit.
        for _ in range(2):
            watchdog.probe_quarantined()
        assert watchdog.state(coord) is CellState.ACTIVE
        assert watchdog.readmissions == 1
        assert coord not in watchdog.disabled_cells

        # Same tick as re-admission: the cell goes silent again.
        grid.cell(*coord).heartbeat.record_error(50)
        watchdog.poll()
        assert watchdog.state(coord) is CellState.SUSPECT
        assert watchdog.quarantines == 1  # grace honoured, no new quarantine

        # suspect_polls=2 grants two graced polls before re-quarantine.
        watchdog.poll()
        assert watchdog.state(coord) is CellState.SUSPECT
        watchdog.poll()
        assert watchdog.state(coord) is CellState.QUARANTINED
        assert watchdog.quarantines == 2


class TestReviveDuringQuarantine:
    def test_external_revive_does_not_bypass_watchdog(self):
        """``revive()`` while QUARANTINED restores ``alive`` but the
        watchdog still treats the cell as disabled until probes clear it."""
        grid = _grid()
        watchdog = Watchdog(grid, policy=_policy())
        coord = (1, 2)
        _drive_to_quarantine(grid, watchdog, coord)
        cell = grid.cell(*coord)
        assert not cell.alive

        cell.heartbeat.revive()
        assert cell.alive  # the fabric sees the cell as healthy again...
        assert watchdog.state(coord) is CellState.QUARANTINED  # ...watchdog not
        assert coord in watchdog.disabled_cells

        # Polls keep skipping the disabled cell: no beats accrue.
        beats_before = cell.heartbeat.beats_emitted
        watchdog.poll()
        assert cell.heartbeat.beats_emitted == beats_before
        assert watchdog.state(coord) is CellState.QUARANTINED

        # The fabric, however, routes around the watchdog: the revived cell
        # is visible to alive-cell scans and reachability immediately.
        assert coord in grid.alive_cells()
        assert grid.reachable(2, 2) or grid.rows <= coord[0] + 1

    def test_revived_cell_still_needs_clean_probes_to_readmit(self):
        grid = _grid()
        watchdog = Watchdog(grid, policy=_policy())
        coord = (0, 1)
        _drive_to_quarantine(grid, watchdog, coord)
        grid.cell(*coord).heartbeat.revive()

        # One clean round is not enough (readmit_clean_probes=2).
        watchdog.probe_quarantined()
        assert watchdog.state(coord) is CellState.QUARANTINED
        assert watchdog.readmissions == 0

        watchdog.probe_quarantined()
        assert watchdog.state(coord) is CellState.ACTIVE
        assert watchdog.readmissions == 1
        assert coord not in watchdog.disabled_cells
        # revive() during quarantine is idempotent with re-admission's own
        # revive: the heartbeat is healthy and beats resume on poll.
        beats_before = grid.cell(*coord).heartbeat.beats_emitted
        watchdog.poll()
        assert grid.cell(*coord).heartbeat.beats_emitted == beats_before + 1

    def test_revive_without_probing_leaves_cell_retired(self):
        """With probing off, quarantine is terminal (RETIRED); an external
        revive brings the heartbeat back but never the lifecycle state."""
        grid = _grid()
        watchdog = Watchdog(grid, policy=LifecyclePolicy(suspect_polls=0))
        coord = (2, 0)
        grid.cell(*coord).heartbeat.record_error(50)
        watchdog.poll()
        assert watchdog.state(coord) is CellState.RETIRED
        assert coord in watchdog.disabled_cells

        grid.cell(*coord).heartbeat.revive()
        assert grid.cell(*coord).alive
        assert watchdog.probe_quarantined() == []  # probing disabled: no-op
        watchdog.poll()
        assert watchdog.state(coord) is CellState.RETIRED
        assert coord in watchdog.disabled_cells
