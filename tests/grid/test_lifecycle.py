"""Unit tests for the cell health lifecycle state machine.

Covers the extended watchdog of Section 2.3: suspect grace, quarantine
with salvage, canary probing, re-admission, retirement, and how the
lifecycle interacts with assignment and salvage target selection.
"""

import pytest

from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import (
    PROBE_CANARIES,
    CellState,
    LifecyclePolicy,
    ProbeReport,
    Watchdog,
)


def _healing_grid(**kwargs):
    defaults = dict(error_threshold=2, heartbeat_decay=1.0, n_words=8)
    defaults.update(kwargs)
    return NanoBoxGrid(3, 3, **defaults)


def _healing_policy(**kwargs):
    defaults = dict(
        suspect_polls=2,
        probing=True,
        readmit_clean_probes=2,
        retire_failed_rounds=2,
    )
    defaults.update(kwargs)
    return LifecyclePolicy(**defaults)


class TestPolicyValidation:
    def test_defaults_are_legacy(self):
        policy = LifecyclePolicy()
        assert policy.suspect_polls == 0
        assert not policy.probing

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(suspect_polls=-1),
            dict(readmit_clean_probes=0),
            dict(retire_failed_rounds=0),
            dict(max_readmissions=-1),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LifecyclePolicy(**kwargs)


class TestSuspectGrace:
    def test_burst_rides_out_grace_window(self):
        """A short burst trips SUSPECT, decays, and recovers to ACTIVE."""
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=3))
        grid.cell(1, 1).heartbeat.record_error(5)
        watchdog.poll()  # score 4 > 2: silent, grace 1
        assert watchdog.state((1, 1)) is CellState.SUSPECT
        watchdog.poll()  # score 3 > 2: silent, grace 2
        assert watchdog.state((1, 1)) is CellState.SUSPECT
        watchdog.poll()  # score 2 <= 2: beats again
        assert watchdog.state((1, 1)) is CellState.ACTIVE
        assert watchdog.disabled_cells == ()

    def test_grace_exhaustion_quarantines(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=1))
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.SUSPECT
        reports = watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.QUARANTINED
        assert [r.failed_cell for r in reports] == [(1, 1)]
        assert watchdog.disabled_cells == ((1, 1),)

    def test_no_grace_quarantines_first_poll(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=0))
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.QUARANTINED


class TestProbing:
    def test_clean_probes_readmit(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=0))
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        first = watchdog.probe_quarantined()
        assert [r.outcome for r in first] == [CellState.QUARANTINED]
        second = watchdog.probe_quarantined()
        assert [r.outcome for r in second] == [CellState.ACTIVE]
        assert watchdog.state((1, 1)) is CellState.ACTIVE
        assert watchdog.disabled_cells == ()
        assert watchdog.readmissions == 1
        assert grid.cell(1, 1).alive

    def test_hard_killed_cell_fails_probes_and_retires(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=0))
        grid.kill_cell(1, 1)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.QUARANTINED
        watchdog.probe_quarantined()
        assert watchdog.state((1, 1)) is CellState.QUARANTINED
        watchdog.probe_quarantined()
        assert watchdog.state((1, 1)) is CellState.RETIRED
        assert watchdog.disabled_cells == ((1, 1),)
        assert watchdog.readmissions == 0

    def test_failed_probe_resets_clean_streak(self):
        grid = _healing_grid()
        policy = _healing_policy(
            suspect_polls=0, readmit_clean_probes=2, retire_failed_rounds=5
        )
        watchdog = Watchdog(grid, policy=policy)
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        watchdog.probe_quarantined()  # clean streak 1
        # Simulate a flaky probe round by hard-silencing before probing.
        grid.cell(1, 1).heartbeat.silence()
        report = watchdog.probe_quarantined()[0]
        assert not report.passed
        assert report.clean_streak == 0
        grid.cell(1, 1).heartbeat.revive()
        watchdog.probe_quarantined()  # clean streak 1 again
        assert watchdog.state((1, 1)) is CellState.QUARANTINED
        report = watchdog.probe_quarantined()[0]
        assert report.outcome is CellState.ACTIVE

    def test_probing_disabled_is_noop(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=LifecyclePolicy())
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.RETIRED
        assert watchdog.probe_quarantined() == []
        assert watchdog.probe_reports == ()
        assert watchdog.state((1, 1)) is CellState.RETIRED

    def test_probe_reports_recorded(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=0))
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        watchdog.probe_quarantined()
        assert len(watchdog.probe_reports) == 1
        report = watchdog.probe_reports[0]
        assert isinstance(report, ProbeReport)
        assert report.cell == (1, 1)
        assert report.passed
        assert report.clean_streak == 1

    def test_canaries_cover_every_opcode(self):
        assert sorted(op for op, _, _ in PROBE_CANARIES) == [
            0b000,
            0b001,
            0b010,
            0b111,
        ]


class TestReadmissionBudget:
    def test_budget_exhaustion_retires_on_next_quarantine(self):
        grid = _healing_grid()
        policy = _healing_policy(
            suspect_polls=0, readmit_clean_probes=1, max_readmissions=1
        )
        watchdog = Watchdog(grid, policy=policy)
        cell = grid.cell(1, 1)
        cell.heartbeat.record_error(9)
        watchdog.poll()
        watchdog.probe_quarantined()
        assert watchdog.state((1, 1)) is CellState.ACTIVE
        # Second failure: the budget is spent, so quarantine -> RETIRED.
        cell.heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.RETIRED
        assert watchdog.probe_quarantined() == []

    def test_zero_budget_means_oneshot_even_with_probing(self):
        grid = _healing_grid()
        policy = _healing_policy(suspect_polls=0, max_readmissions=0)
        watchdog = Watchdog(grid, policy=policy)
        grid.cell(1, 1).heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((1, 1)) is CellState.RETIRED


class TestLifecycleIntegration:
    def test_quarantined_cells_excluded_from_salvage_targets(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy(suspect_polls=0))
        # Quarantine (0, 1) first.
        grid.cell(0, 1).heartbeat.record_error(9)
        watchdog.poll()
        assert watchdog.state((0, 1)) is CellState.QUARANTINED
        # Now fail its neighbour (1, 1), which holds pending work.
        for iid in range(4):
            grid.cell(1, 1).store_instruction(iid + 1, 0b010, iid, 0xFF)
        grid.cell(1, 1).heartbeat.record_error(9)
        report = watchdog.poll()[0]
        assert report.fully_salvaged
        assert (0, 1) not in report.adopted

    def test_readmitted_cell_can_adopt_again(self):
        grid = _healing_grid()
        watchdog = Watchdog(
            grid,
            policy=_healing_policy(suspect_polls=0, readmit_clean_probes=1),
        )
        grid.cell(0, 1).heartbeat.record_error(9)
        watchdog.poll()
        watchdog.probe_quarantined()
        assert watchdog.state((0, 1)) is CellState.ACTIVE
        for iid in range(8):
            grid.cell(1, 1).store_instruction(iid + 1, 0b010, iid, 0xFF)
        grid.cell(1, 1).heartbeat.record_error(9)
        report = watchdog.poll()[0]
        assert report.fully_salvaged
        # All four direct neighbours (including the readmitted cell)
        # share the adoption load round-robin.
        assert (0, 1) in report.adopted

    def test_lifecycle_counts_sum_to_grid_size(self):
        grid = _healing_grid()
        watchdog = Watchdog(grid, policy=_healing_policy())
        grid.kill_cell(0, 0)
        for _ in range(4):
            watchdog.poll()
        counts = watchdog.lifecycle_counts()
        assert sum(counts.values()) == 9
