"""Unit tests for the flit-serialised bus model."""

from repro.grid.bus import Bus
from repro.grid.packet import InstructionPacket, ResultPacket


def instr():
    return InstructionPacket(
        dest_row=0, dest_col=0, instruction_id=1,
        opcode=0, operand1=0, operand2=0,
    )


class TestBus:
    def test_latency_equals_flit_count(self):
        bus = Bus("b")
        packet = instr()
        assert bus.try_send(packet)
        deliveries = [bus.tick() for _ in range(packet.flit_count)]
        assert deliveries[:-1] == [None] * (packet.flit_count - 1)
        assert deliveries[-1] is packet

    def test_result_packets_faster(self):
        bus = Bus("b")
        packet = ResultPacket(1, 2)
        bus.try_send(packet)
        deliveries = [bus.tick() for _ in range(4)]
        assert deliveries[-1] is packet

    def test_busy_rejects_second_send(self):
        bus = Bus("b")
        assert bus.try_send(instr())
        assert not bus.try_send(instr())
        assert bus.busy

    def test_free_after_delivery(self):
        bus = Bus("b")
        packet = instr()
        bus.try_send(packet)
        for _ in range(packet.flit_count):
            bus.tick()
        assert not bus.busy
        assert bus.try_send(instr())

    def test_idle_tick_returns_none(self):
        bus = Bus("b")
        assert bus.tick() is None
        assert bus.busy_cycles == 0

    def test_counters(self):
        bus = Bus("b")
        packet = ResultPacket(1, 2)
        bus.try_send(packet)
        for _ in range(packet.flit_count):
            bus.tick()
        assert bus.delivered_count == 1
        assert bus.busy_cycles == packet.flit_count

    def test_drop_clears_link(self):
        bus = Bus("b")
        packet = instr()
        bus.try_send(packet)
        assert bus.drop() is packet
        assert not bus.busy
        assert bus.delivered_count == 0

    def test_drop_idle_returns_none(self):
        assert Bus("b").drop() is None
