"""Unit tests for the flit-serialised bus model."""

import pytest

from repro.grid.bus import Bus
from repro.grid.packet import InstructionPacket, ResultPacket


def instr():
    return InstructionPacket(
        dest_row=0, dest_col=0, instruction_id=1,
        opcode=0, operand1=0, operand2=0,
    )


class TestBus:
    def test_latency_equals_flit_count(self):
        bus = Bus("b")
        packet = instr()
        assert bus.try_send(packet)
        deliveries = [bus.tick() for _ in range(packet.flit_count)]
        assert deliveries[:-1] == [None] * (packet.flit_count - 1)
        assert deliveries[-1] is packet

    def test_result_packets_faster(self):
        bus = Bus("b")
        packet = ResultPacket(1, 2)
        bus.try_send(packet)
        deliveries = [bus.tick() for _ in range(4)]
        assert deliveries[-1] is packet

    def test_busy_rejects_second_send(self):
        bus = Bus("b")
        assert bus.try_send(instr())
        assert not bus.try_send(instr())
        assert bus.busy

    def test_free_after_delivery(self):
        bus = Bus("b")
        packet = instr()
        bus.try_send(packet)
        for _ in range(packet.flit_count):
            bus.tick()
        assert not bus.busy
        assert bus.try_send(instr())

    def test_idle_tick_returns_none(self):
        bus = Bus("b")
        assert bus.tick() is None
        assert bus.busy_cycles == 0

    def test_counters(self):
        bus = Bus("b")
        packet = ResultPacket(1, 2)
        bus.try_send(packet)
        for _ in range(packet.flit_count):
            bus.tick()
        assert bus.delivered_count == 1
        assert bus.busy_cycles == packet.flit_count

    def test_drop_clears_link(self):
        bus = Bus("b")
        packet = instr()
        bus.try_send(packet)
        assert bus.drop() is packet
        assert not bus.busy
        assert bus.delivered_count == 0

    def test_drop_idle_returns_none(self):
        assert Bus("b").drop() is None

    def test_drop_mid_flight_frees_link_immediately(self):
        """A partially-serialised packet is aborted, not delivered."""
        bus = Bus("b")
        packet = instr()
        bus.try_send(packet)
        ticks_before_drop = 3
        for _ in range(ticks_before_drop):
            assert bus.tick() is None
        assert bus.drop() is packet
        # The link is free right away and never delivers the victim.
        assert not bus.busy
        assert bus.in_flight is None
        assert bus.tick() is None
        assert bus.delivered_count == 0
        # Cycles already spent serialising still count as occupancy.
        assert bus.busy_cycles == ticks_before_drop

    def test_drop_mid_flight_then_resend_full_latency(self):
        """A new packet after a drop pays its full flit latency."""
        bus = Bus("b")
        bus.try_send(instr())
        bus.tick()
        bus.drop()
        replacement = ResultPacket(7, 9)
        assert bus.try_send(replacement)
        deliveries = [bus.tick() for _ in range(replacement.flit_count)]
        assert deliveries[:-1] == [None] * (replacement.flit_count - 1)
        assert deliveries[-1] is replacement
        assert bus.delivered_count == 1

    def test_flit_overhead_extends_occupancy(self):
        """CRC framing costs exactly flit_overhead extra cycles."""
        bus = Bus("b", flit_overhead=1)
        packet = ResultPacket(1, 2)
        bus.try_send(packet)
        deliveries = [bus.tick() for _ in range(packet.flit_count + 1)]
        assert deliveries[:-1] == [None] * packet.flit_count
        assert deliveries[-1] is packet

    def test_negative_flit_overhead_rejected(self):
        with pytest.raises(ValueError):
            Bus("b", flit_overhead=-1)
