"""JobSpec validation, canonical argv, and cache-key identity."""

import pytest

from repro.service.jobs import (
    JOB_KINDS,
    PARAM_SPECS,
    JobRecord,
    JobSpec,
    JobState,
    job_cache_key,
)


class TestJobSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec.from_request("shell", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            JobSpec.from_request("sweep", {"figure": 7, "argv": ["rm"]})

    def test_flag_injection_is_a_validation_error(self):
        # A client must never be able to smuggle argv through a value.
        with pytest.raises(ValueError, match="parameter 'scheme'"):
            JobSpec.from_request("grid", {"scheme": "--evil"})

    def test_type_errors_name_the_parameter(self):
        with pytest.raises(ValueError, match="parameter 'trials'"):
            JobSpec.from_request("sweep", {"trials": "ten"})
        with pytest.raises(ValueError, match="parameter 'quick'"):
            JobSpec.from_request("sweep", {"quick": 1})

    def test_range_limits_enforced(self):
        with pytest.raises(ValueError, match="must be <= 9"):
            JobSpec.from_request("sweep", {"figure": 12})
        with pytest.raises(ValueError, match="must be >= 1"):
            JobSpec.from_request("grid", {"rows": 0})

    def test_kill_spec_shape_enforced(self):
        with pytest.raises(ValueError, match="row,col@cycle"):
            JobSpec.from_request("grid", {"kill": ["1;1;40"]})

    def test_every_kind_has_a_param_table(self):
        assert set(PARAM_SPECS) == set(JOB_KINDS)


class TestCanonicalArgv:
    def test_fixed_parameter_order(self):
        spec = JobSpec.from_request(
            "grid", {"seed": 7, "rows": 4, "scheme": "tmr", "cols": 4}
        )
        assert spec.to_argv() == [
            "grid", "--rows", "4", "--cols", "4", "--scheme", "tmr",
            "--seed", "7",
        ]

    def test_true_boolean_lowers_to_bare_flag(self):
        spec = JobSpec.from_request("sweep", {"figure": 7, "quick": True})
        assert spec.to_argv() == ["sweep", "--figure", "7", "--quick"]

    def test_false_boolean_is_elided(self):
        explicit = JobSpec.from_request("sweep", {"figure": 7, "quick": False})
        default = JobSpec.from_request("sweep", {"figure": 7})
        assert explicit.to_argv() == default.to_argv()
        assert explicit.cache_key == default.cache_key

    def test_kill_flag_repeats_per_occurrence(self):
        spec = JobSpec.from_request(
            "grid", {"kill": ["1,1@40", "2,0@80"]}
        )
        assert spec.to_argv() == [
            "grid", "--kill", "1,1@40", "--kill", "2,0@80",
        ]

    def test_list_flag_takes_all_values(self):
        spec = JobSpec.from_request(
            "chaos", {"rates": [0.0, 0.001], "rounds": [1, 3]}
        )
        assert spec.to_argv() == [
            "chaos", "--rates", "0", "0.001", "--rounds", "1", "3",
        ]


class TestCacheKey:
    def test_key_independent_of_request_key_order(self):
        a = JobSpec.from_request("grid", {"rows": 4, "cols": 4, "seed": 9})
        b = JobSpec.from_request("grid", {"seed": 9, "cols": 4, "rows": 4})
        assert a.cache_key == b.cache_key

    def test_key_differs_across_parameters(self):
        a = JobSpec.from_request("grid", {"rows": 4, "cols": 4})
        b = JobSpec.from_request("grid", {"rows": 4, "cols": 5})
        assert a.cache_key != b.cache_key

    def test_key_differs_across_kinds(self):
        a = JobSpec.from_request("grid", {"seed": 7})
        b = JobSpec.from_request("chaos", {"seed": 7})
        assert a.cache_key != b.cache_key

    def test_key_is_a_16_hex_config_hash(self):
        key = job_cache_key(JobSpec.from_request("sweep", {"figure": 7}))
        assert len(key) == 16
        int(key, 16)  # hex


class TestRoundTrips:
    def test_spec_json_round_trip(self):
        spec = JobSpec.from_request(
            "lifecycle",
            {"processes": ["transient", "permanent"], "rate": 0.002},
        )
        again = JobSpec.from_json(spec.to_json())
        assert again == spec
        assert again.cache_key == spec.cache_key

    def test_record_json_round_trip(self):
        record = JobRecord(
            id="j000007",
            spec=JobSpec.from_request("grid", {"rows": 4}),
            cache_key="abc",
            state=JobState.PARTIAL,
            attempts=2,
            incomplete=True,
            requeues=1,
            stderr_tail="note",
        )
        again = JobRecord.from_json(record.to_json())
        assert again.id == record.id
        assert again.state == JobState.PARTIAL
        assert again.spec == record.spec
        assert again.incomplete and again.requeues == 1

    def test_terminal_and_resumable_partition_states(self):
        lifecycle = {
            JobState.QUEUED, JobState.RUNNING, JobState.DONE,
            JobState.PARTIAL, JobState.FAILED, JobState.CANCELLED,
        }
        assert set(JobState.TERMINAL) | set(JobState.RESUMABLE) == lifecycle
        assert not set(JobState.TERMINAL) & set(JobState.RESUMABLE)
