"""Bounded admission: shed past capacity, drain semantics, retry hints."""

import pytest

from repro.service.admission import AdmissionQueue


class TestOfferAndTake:
    def test_admits_up_to_capacity_then_sheds(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a").accepted
        assert queue.offer("b").accepted
        decision = queue.offer("c")
        assert not decision.accepted
        assert decision.reason == "overload"
        assert decision.retry_after >= 1
        assert queue.depth() == 2

    def test_take_is_fifo(self):
        queue = AdmissionQueue(capacity=4)
        for item in ("a", "b", "c"):
            queue.offer(item)
        assert [queue.take(0), queue.take(0), queue.take(0)] == [
            "a", "b", "c",
        ]

    def test_take_times_out_empty(self):
        queue = AdmissionQueue(capacity=1)
        assert queue.take(timeout=0.01) is None

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=1, workers=0)


class TestDrain:
    def test_drain_refuses_further_offers(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        left = queue.drain()
        assert left == 1
        decision = queue.offer("b")
        assert not decision.accepted
        assert decision.reason == "draining"

    def test_workers_still_take_after_drain(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        queue.drain()
        assert queue.take(0) == "a"

    def test_has_room_false_while_draining(self):
        queue = AdmissionQueue(capacity=4)
        queue.drain()
        assert not queue.has_room()


class TestRequeueAndRemove:
    def test_requeue_goes_to_the_front_and_bypasses_capacity(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer("a")
        queue.requeue("resumed")  # over capacity: still admitted
        assert queue.depth() == 2
        assert queue.take(0) == "resumed"

    def test_remove_by_predicate(self):
        queue = AdmissionQueue(capacity=4)
        for item in ("a", "bb", "c"):
            queue.offer(item)
        removed = queue.remove(lambda item: len(item) == 2)
        assert removed == ["bb"]
        assert queue.depth() == 2
        assert queue.take(0) == "a"


class TestRetryAfter:
    def test_estimate_scales_with_depth_and_duration(self):
        queue = AdmissionQueue(capacity=10, workers=1)
        for item in range(4):
            queue.offer(item)
        for _ in range(20):  # converge the EWMA near 10s
            queue.note_duration(10.0)
        assert queue.retry_after() >= 30  # ~4 jobs x ~10s / 1 worker

    def test_estimate_divides_by_workers(self):
        solo = AdmissionQueue(capacity=10, workers=1)
        pool = AdmissionQueue(capacity=10, workers=4)
        for queue in (solo, pool):
            for item in range(8):
                queue.offer(item)
            for _ in range(20):
                queue.note_duration(8.0)
        assert pool.retry_after() < solo.retry_after()

    def test_estimate_is_at_least_one_second(self):
        queue = AdmissionQueue(capacity=2)
        for _ in range(20):
            queue.note_duration(0.001)
        assert queue.retry_after() >= 1
        assert queue.offer("a").accepted
        assert queue.offer("b").accepted
        assert queue.offer("c").retry_after >= 1
