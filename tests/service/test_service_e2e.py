"""End-to-end: real server child, real CLI children, fast chaos modes.

The slow fault modes (overload/sigterm/kill9 interrupt ~8s jobs) run in
CI's ``service-chaos`` job; here we keep the sub-second modes so the
tier-1 suite still proves the single-flight and quarantine invariants
against real processes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.chaos import (
    SERVICE_CHAOS_MODES,
    ServiceChaosOutcome,
    _child_env,
    run_service_chaos_suite,
    service_chaos_report,
)


@pytest.fixture(scope="module")
def fast_outcomes(tmp_path_factory):
    """dup-storm + tamper against a real served child, run once."""
    workdir = tmp_path_factory.mktemp("service-chaos-fast")
    return run_service_chaos_suite(
        modes=("dup-storm", "tamper"), workdir=workdir, seed=11,
        timeout=120.0,
    )


class TestFastChaosModes:
    @pytest.mark.parametrize("mode", ["dup-storm", "tamper"])
    def test_mode_survived_byte_identically(self, fast_outcomes, mode):
        outcome = next(o for o in fast_outcomes if o.mode == mode)
        assert outcome.survived, outcome
        assert outcome.byte_identical, outcome

    def test_dup_storm_computed_exactly_once(self, fast_outcomes):
        dup = next(o for o in fast_outcomes if o.mode == "dup-storm")
        assert dup.detail.startswith("1 computation(s) for 12 submissions")

    def test_tamper_quarantined_both_cache_files(self, fast_outcomes):
        tamper = next(o for o in fast_outcomes if o.mode == "tamper")
        assert "2 corrupt file(s) quarantined" in tamper.detail

    def test_report_is_deterministic_text(self, fast_outcomes):
        report = service_chaos_report(fast_outcomes)
        assert report == service_chaos_report(list(fast_outcomes))
        assert "dup-storm" in report and "tamper" in report


class TestHarnessPlumbing:
    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown service chaos mode"):
            run_service_chaos_suite(modes=("meteor",), workdir=tmp_path)

    def test_cli_advertises_service_commands(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        assert "serve" in text
        assert "service-chaos" in text

    def test_report_renders_failures_loudly(self):
        outcome = ServiceChaosOutcome(
            mode="kill9", fault="f", survived=False, byte_identical=False,
            detail="d",
        )
        report = service_chaos_report([outcome])
        assert "NO" in report

    def test_mode_listing_is_stable(self):
        assert SERVICE_CHAOS_MODES == (
            "overload", "dup-storm", "sigterm", "kill9", "tamper",
        )


class TestServeChildEndToEnd:
    def test_served_artifact_matches_direct_cli_run(self, tmp_path):
        """Submit over HTTP to a real server child; the fetched artifact
        must be byte-identical to running the same campaign directly."""
        from repro.service.chaos import _Server, _fast_job, _job_argv

        job = _fast_job(23)
        direct = subprocess.run(
            [sys.executable, "-m", "repro.cli", *_job_argv(job)],
            env=_child_env(),
            capture_output=True,
            timeout=120.0,
        )
        assert direct.returncode == 0

        server = _Server(tmp_path / "state", workers=1, timeout=120.0)
        try:
            status, _, document = server.submit(job)
            assert status == 202
            job_id = document["job"]["id"]
            final = server.wait_state(job_id, ("done",), timeout=60.0)
            assert final is not None
            assert final["progress"]["total_chunks"] is not None
            status, headers, payload = server.request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 200
            assert payload == direct.stdout
            assert headers["X-Repro-Outcome"] == "fresh"
            # The journal survives on disk for the next incarnation.
            journal = json.loads(
                (tmp_path / "state" / "jobs" / f"{job_id}.json").read_text()
            )
            assert journal["state"] == "done"
        finally:
            server.shutdown()
