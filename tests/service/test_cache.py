"""Result cache: commit-point discipline, verification, LRU byte budget."""

import json

import pytest

from repro.service.cache import ResultCache


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = cache.put("k1", b"artifact bytes")
        assert cache.get("k1") == b"artifact bytes"
        assert len(digest) == 64
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_absent_key_is_a_clean_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1
        assert cache.stats.corruptions == 0

    def test_extra_meta_is_stored_verbatim(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"x", kind="grid", job_id="j000001")
        meta = json.loads(cache.meta_path("k1").read_text())
        assert meta["kind"] == "grid" and meta["job_id"] == "j000001"

    def test_restart_inherits_entries(self, tmp_path):
        ResultCache(tmp_path).put("k1", b"payload")
        reopened = ResultCache(tmp_path)
        assert reopened.get("k1") == b"payload"


class TestCorruptionIsNeverServed:
    def test_bit_flip_quarantined_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"payload-bytes")
        blob = bytearray(cache.payload_path("k1").read_bytes())
        blob[3] ^= 0x01
        cache.payload_path("k1").write_bytes(bytes(blob))
        assert cache.get("k1") is None
        assert cache.stats.corruptions == 1
        assert "integrity" in cache.stats.corrupt_reasons[0]
        corrupt = sorted(p.name for p in tmp_path.glob("*.corrupt*"))
        assert corrupt == ["k1.bin.corrupt", "k1.json.corrupt"]

    def test_truncated_payload_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"a longer payload to truncate")
        path = cache.payload_path("k1")
        path.write_bytes(path.read_bytes()[:5])
        assert cache.get("k1") is None
        assert "torn write" in cache.stats.corrupt_reasons[0]

    def test_missing_payload_with_meta_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"payload")
        cache.payload_path("k1").unlink()
        assert cache.get("k1") is None
        assert cache.stats.corruptions == 1

    def test_orphan_payload_without_meta_is_a_clean_miss(self, tmp_path):
        # The meta file is the commit point: a crash between payload and
        # meta writes leaves an orphan that must read as a miss.
        cache = ResultCache(tmp_path)
        cache.payload_path("k1").parent.mkdir(parents=True, exist_ok=True)
        cache.payload_path("k1").write_bytes(b"uncommitted")
        assert cache.get("k1") is None
        assert cache.stats.corruptions == 0

    def test_foreign_key_record_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"payload")
        # Copy k1's files under another key: the embedded key must trip.
        cache.payload_path("k2").write_bytes(
            cache.payload_path("k1").read_bytes()
        )
        cache.meta_path("k2").write_text(cache.meta_path("k1").read_text())
        assert cache.get("k2") is None
        assert "key mismatch" in cache.stats.corrupt_reasons[0]

    def test_recompute_after_quarantine_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", b"good")
        cache.payload_path("k1").write_bytes(b"evil")
        assert cache.get("k1") is None
        cache.put("k1", b"good")
        assert cache.get("k1") == b"good"


class TestLruByteBudget:
    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, byte_budget=-1)

    def test_oldest_evicted_beyond_budget(self, tmp_path):
        cache = ResultCache(tmp_path, byte_budget=25)
        cache.put("a", b"x" * 10)
        cache.put("b", b"y" * 10)
        cache.put("c", b"z" * 10)  # 30 bytes > 25: 'a' must go
        assert cache.get("a") is None
        assert cache.get("b") == b"y" * 10
        assert cache.get("c") == b"z" * 10
        assert cache.stats.evictions == 1
        assert cache.total_bytes() == 20

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, byte_budget=25)
        cache.put("a", b"x" * 10)
        cache.put("b", b"y" * 10)
        assert cache.get("a") == b"x" * 10  # 'a' is now most-recent
        cache.put("c", b"z" * 10)  # evicts 'b', not 'a'
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_just_written_entry_never_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, byte_budget=5)
        cache.put("big", b"n" * 50)  # alone over budget: still kept
        assert cache.get("big") == b"n" * 50
        cache.put("big2", b"m" * 50)  # now 'big' goes, 'big2' stays
        assert cache.get("big") is None
        assert cache.get("big2") == b"m" * 50

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(20):
            cache.put(f"k{index}", bytes([index]) * 100)
        assert cache.stats.evictions == 0
        assert len(cache.keys()) == 20

    def test_eviction_removes_files_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path, byte_budget=10)
        cache.put("a", b"x" * 10)
        cache.put("b", b"y" * 10)
        assert not cache.payload_path("a").exists()
        assert not cache.meta_path("a").exists()
