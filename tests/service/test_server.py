"""HTTP surface: routes, status codes, headers, shed/drain responses.

A fake executor keeps these fast and deterministic; the full child
process path over HTTP is covered by ``test_service_e2e``.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.runner import JobOutput
from repro.service.server import CampaignService, ServiceConfig


class EchoExecutor:
    def run(self, record, job_dir, checkpoint_dir):
        return JobOutput(b"artifact:" + record.cache_key.encode(), "", 0)


class GateExecutor:
    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.interrupted = set()
        self._lock = threading.Lock()

    def run(self, record, job_dir, checkpoint_dir):
        self.started.set()
        self.release.wait(timeout=30.0)
        with self._lock:
            if record.id in self.interrupted:
                return JobOutput(b"", "interrupted", exit_status=-2)
        return JobOutput(b"gated", "", 0)

    def interrupt(self, job_id):
        with self._lock:
            self.interrupted.add(job_id)
        self.release.set()
        return True


def _request(base, method, path, document=None, timeout=10.0):
    """(status, headers, body bytes) without raising on HTTP errors."""
    data = None
    headers = {}
    if document is not None:
        data = json.dumps(document).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        base + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _submit(base, document):
    status, headers, body = _request(base, "POST", "/v1/jobs", document)
    return status, headers, json.loads(body)


def _wait_state(base, job_id, states, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = _request(base, "GET", f"/v1/jobs/{job_id}")
        document = json.loads(body)
        if document.get("state") in states:
            return document
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {states}")


def _service(tmp_path, execute, **overrides):
    config = ServiceConfig(state_dir=tmp_path / "state", **overrides)
    service = CampaignService(config, execute=execute)
    host, port = service.start()
    return service, f"http://{host}:{port}"


class TestRoutes:
    @pytest.fixture()
    def base(self, tmp_path):
        service, base = _service(tmp_path, EchoExecutor(), workers=1)
        yield base
        service.drain_and_stop(grace=0.0)

    def test_healthz_and_readyz(self, base):
        assert _request(base, "GET", "/healthz")[0] == 200
        status, _, body = _request(base, "GET", "/readyz")
        assert status == 200
        assert json.loads(body) == {"status": "ready"}

    def test_unknown_route_404(self, base):
        assert _request(base, "GET", "/v2/nope")[0] == 404
        assert _request(base, "POST", "/v1/other")[0] == 404

    def test_submit_poll_fetch_result(self, base):
        status, headers, document = _submit(
            base, {"kind": "grid", "params": {"rows": 4, "cols": 4}}
        )
        assert status == 202
        assert document["status"] == "queued"
        job_id = document["job"]["id"]
        assert headers["Location"] == f"/v1/jobs/{job_id}"
        final = _wait_state(base, job_id, {"done"})
        assert final["outcome"] == "fresh"
        assert final["progress"]["completed_chunks"] is not None
        status, headers, payload = _request(
            base, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert status == 200
        assert headers["Content-Type"] == "application/octet-stream"
        assert headers["X-Repro-Outcome"] == "fresh"
        assert payload.startswith(b"artifact:")

    def test_resubmit_is_cached_and_byte_identical(self, base):
        job = {"kind": "grid", "params": {"rows": 4, "cols": 4, "seed": 3}}
        _, _, first = _submit(base, job)
        _wait_state(base, first["job"]["id"], {"done"})
        payload_a = _request(
            base, "GET", f"/v1/jobs/{first['job']['id']}/result"
        )[2]
        status, _, second = _submit(base, job)
        assert status == 200
        assert second["status"] == "cached"
        status, headers, payload_b = _request(
            base, "GET", f"/v1/jobs/{second['job']['id']}/result"
        )
        assert status == 200
        assert headers["X-Repro-Outcome"] == "cached"
        assert payload_a == payload_b

    def test_jobs_listing(self, base):
        _submit(base, {"kind": "sweep", "params": {"figure": 7}})
        _, _, body = _request(base, "GET", "/v1/jobs")
        listing = json.loads(body)["jobs"]
        assert len(listing) == 1
        assert listing[0]["spec"]["kind"] == "sweep"

    def test_metrics_snapshot(self, base):
        _submit(base, {"kind": "grid", "params": {}})
        _, _, body = _request(base, "GET", "/v1/metrics")
        snapshot = json.loads(body)
        assert snapshot["counters"]["service.jobs_submitted"] == 1


class TestValidation:
    @pytest.fixture()
    def base(self, tmp_path):
        service, base = _service(tmp_path, EchoExecutor(), workers=1)
        yield base
        service.drain_and_stop(grace=0.0)

    def test_invalid_json_400(self, base):
        req = urllib.request.Request(
            base + "/v1/jobs", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_kind_400(self, base):
        status, _, document = _submit(base, {"kind": "shell", "params": {}})
        assert status == 400
        assert "unknown job kind" in document["error"]

    def test_flag_injection_400(self, base):
        status, _, document = _submit(
            base, {"kind": "grid", "params": {"scheme": "--evil"}}
        )
        assert status == 400
        assert "scheme" in document["error"]

    def test_bad_deadline_400(self, base):
        for deadline in (0, -3, "soon", True):
            status, _, document = _submit(
                base, {"kind": "grid", "params": {}, "deadline": deadline}
            )
            assert status == 400
            assert "deadline" in document["error"]

    def test_missing_job_404(self, base):
        assert _request(base, "GET", "/v1/jobs/j999999")[0] == 404
        assert _request(base, "GET", "/v1/jobs/j999999/result")[0] == 404
        assert _request(base, "POST", "/v1/jobs/j999999/cancel")[0] == 404


class TestBackpressure:
    def test_overload_returns_429_with_retry_after(self, tmp_path):
        gate = GateExecutor()
        service, base = _service(
            tmp_path, gate, workers=1, queue_capacity=1
        )
        try:
            _submit(base, {"kind": "grid", "params": {"seed": 1}})
            assert gate.started.wait(5.0)
            _submit(base, {"kind": "grid", "params": {"seed": 2}})
            status, headers, document = _submit(
                base, {"kind": "grid", "params": {"seed": 3}}
            )
            assert status == 429
            assert document["status"] == "rejected-overload"
            assert int(headers["Retry-After"]) >= 1
            gate.release.set()
        finally:
            service.drain_and_stop(grace=1.0)

    def test_result_of_running_job_409(self, tmp_path):
        gate = GateExecutor()
        service, base = _service(tmp_path, gate, workers=1)
        try:
            _, _, document = _submit(base, {"kind": "grid", "params": {}})
            job_id = document["job"]["id"]
            assert gate.started.wait(5.0)
            status, _, body = _request(
                base, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 409
            assert json.loads(body)["error"] == "not-ready"
            gate.release.set()
        finally:
            service.drain_and_stop(grace=1.0)

    def test_cancel_running_job_over_http(self, tmp_path):
        gate = GateExecutor()
        service, base = _service(tmp_path, gate, workers=1)
        try:
            _, _, document = _submit(base, {"kind": "grid", "params": {}})
            job_id = document["job"]["id"]
            assert gate.started.wait(5.0)
            status, _, body = _request(
                base, "POST", f"/v1/jobs/{job_id}/cancel"
            )
            assert status == 202
            assert json.loads(body)["status"] == "cancelling"
            _wait_state(base, job_id, {"cancelled"})
        finally:
            service.drain_and_stop(grace=1.0)


class TestDraining:
    def test_draining_returns_503_everywhere_it_should(self, tmp_path):
        service, base = _service(tmp_path, EchoExecutor(), workers=1)
        try:
            service.manager.drain(grace=0.0)
            status, headers, _ = _request(base, "GET", "/readyz")
            assert status == 503
            assert headers["Retry-After"] == "1"
            status, headers, document = _submit(
                base, {"kind": "grid", "params": {}}
            )
            assert status == 503
            assert document["status"] == "rejected-draining"
            assert int(headers["Retry-After"]) >= 1
            # Liveness and reads keep answering during the drain window.
            assert _request(base, "GET", "/healthz")[0] == 200
            assert _request(base, "GET", "/v1/jobs")[0] == 200
        finally:
            service.drain_and_stop(grace=0.0)
