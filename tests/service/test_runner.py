"""JobManager: single-flight, supervision, breaker, drain, recovery.

Everything here runs against injected fake executors, so the
concurrency invariants are exercised in-process and fast; the real
child-process path is covered by ``test_service_e2e`` and the
``service-chaos`` harness.
"""

import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import JobSpec, JobState
from repro.service.runner import JobManager, JobOutput


def _spec(seed: int) -> JobSpec:
    return JobSpec.from_request("grid", {"rows": 4, "cols": 4, "seed": seed})


def _wait_terminal(manager: JobManager, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        records = manager.records()
        if records and all(
            r.state in JobState.TERMINAL for r in records
        ):
            return True
        time.sleep(0.005)
    return False


def _wait(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class CountingExecutor:
    """Deterministic artifact per cache key; thread-safe call counts."""

    def __init__(self, exit_status: int = 0, delay: float = 0.0):
        self.exit_status = exit_status
        self.delay = delay
        self.calls = {}
        self._lock = threading.Lock()

    def run(self, record, job_dir, checkpoint_dir):
        with self._lock:
            self.calls[record.cache_key] = (
                self.calls.get(record.cache_key, 0) + 1
            )
        if self.delay:
            time.sleep(self.delay)
        return JobOutput(
            stdout=b"artifact:" + record.cache_key.encode(),
            stderr="made by fake",
            exit_status=self.exit_status,
        )


class BlockingExecutor:
    """Holds jobs until released; supports checkpoint-style interrupt."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.interrupted = set()
        self._lock = threading.Lock()

    def run(self, record, job_dir, checkpoint_dir):
        self.started.set()
        self.release.wait(timeout=30.0)
        with self._lock:
            if record.id in self.interrupted:
                return JobOutput(b"", "interrupted", exit_status=-2)
        return JobOutput(
            b"slow:" + record.cache_key.encode(), "", exit_status=0
        )

    def interrupt(self, job_id):
        with self._lock:
            self.interrupted.add(job_id)
        self.release.set()
        return True


class FlakyExecutor:
    """Dies by signal N times per key, then succeeds (worker death)."""

    def __init__(self, deaths: int):
        self.deaths = deaths
        self.calls = {}

    def run(self, record, job_dir, checkpoint_dir):
        count = self.calls.get(record.cache_key, 0) + 1
        self.calls[record.cache_key] = count
        if count <= self.deaths:
            return JobOutput(b"", "killed", exit_status=-9)
        return JobOutput(b"ok:" + record.cache_key.encode(), "", 0)


class TestHappyPath:
    def test_done_then_cached(self, tmp_path):
        fake = CountingExecutor()
        manager = JobManager(tmp_path, execute=fake, workers=1)
        manager.start()
        try:
            first = manager.submit(_spec(1))
            assert first.status == "queued"
            assert _wait_terminal(manager)
            record = manager.get(first.record.id)
            assert record.state == JobState.DONE
            payload, reason = manager.result(record.id)
            assert reason == "ok" and payload == b"artifact:" + (
                record.cache_key.encode()
            )
            again = manager.submit(_spec(1))
            assert again.status == "cached"
            assert again.record.outcome == "cached"
            assert manager.result(again.record.id)[0] == payload
            assert fake.calls[record.cache_key] == 1
        finally:
            manager.drain(grace=0.0)

    def test_journal_written_per_transition(self, tmp_path):
        manager = JobManager(tmp_path, execute=CountingExecutor(), workers=1)
        manager.start()
        try:
            outcome = manager.submit(_spec(2))
            assert _wait_terminal(manager)
            journal = tmp_path / "jobs" / f"{outcome.record.id}.json"
            assert journal.is_file()
            assert b'"state": "done"' in journal.read_bytes()
        finally:
            manager.drain(grace=0.0)

    def test_status_document_shape(self, tmp_path):
        manager = JobManager(tmp_path, execute=CountingExecutor(), workers=1)
        manager.start()
        try:
            outcome = manager.submit(_spec(3))
            assert _wait_terminal(manager)
            document = manager.status(outcome.record.id)
            assert document["state"] == "done"
            assert set(document["progress"]) == {
                "completed_chunks", "total_chunks", "runs",
            }
            assert "counters" in document["metrics"]
            assert manager.status("j999999") is None
        finally:
            manager.drain(grace=0.0)


class TestSingleFlight:
    def test_concurrent_identical_submissions_attach(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(tmp_path, execute=blocking, workers=1)
        manager.start()
        try:
            first = manager.submit(_spec(1))
            assert blocking.started.wait(5.0)
            attached = [manager.submit(_spec(1)) for _ in range(5)]
            assert all(r.status == "deduplicated" for r in attached)
            assert all(
                r.record.id == first.record.id for r in attached
            )
            blocking.release.set()
            assert _wait_terminal(manager)
            assert (
                manager.metrics.counter("service.jobs_deduplicated").value
                == 5
            )
            assert manager.metrics.counter("service.executions").value == 1
        finally:
            manager.drain(grace=0.0)

    @settings(max_examples=10, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=1, max_value=3), min_size=1, max_size=12
        )
    )
    def test_any_interleaving_computes_each_key_once(self, tmp_path_factory, seeds):
        """K identical + M distinct submissions, any interleaving:
        exactly one computation per distinct spec, and every submission's
        result is byte-identical to that computation."""
        workdir = tmp_path_factory.mktemp("single-flight")
        fake = CountingExecutor(delay=0.002)
        manager = JobManager(workdir, execute=fake, workers=3)
        manager.start()
        try:
            outcomes = [manager.submit(_spec(seed)) for seed in seeds]
            assert all(o.accepted for o in outcomes)
            assert _wait_terminal(manager)
            assert fake.calls == {
                _spec(seed).cache_key: 1 for seed in set(seeds)
            }
            for seed, outcome in zip(seeds, outcomes):
                payload, reason = manager.result(outcome.record.id)
                assert reason == "ok"
                assert payload == b"artifact:" + (
                    _spec(seed).cache_key.encode()
                )
        finally:
            manager.drain(grace=0.0)


class TestPartialResults:
    def test_exit_3_is_partial_and_never_cached(self, tmp_path):
        manager = JobManager(
            tmp_path, execute=CountingExecutor(exit_status=3), workers=1
        )
        manager.start()
        try:
            outcome = manager.submit(_spec(1), deadline=0.5)
            assert _wait_terminal(manager)
            record = manager.get(outcome.record.id)
            assert record.state == JobState.PARTIAL
            assert record.incomplete
            payload, reason = manager.result(record.id)
            assert reason == "partial"
            assert payload.startswith(b"artifact:")
            # The partial artifact must not satisfy the result cache:
            # a new identical submission runs (and could complete) anew.
            again = manager.submit(_spec(1))
            assert again.status == "queued"
        finally:
            manager.drain(grace=0.0)


class TestSupervision:
    def test_worker_death_is_retried_to_success(self, tmp_path):
        flaky = FlakyExecutor(deaths=1)
        manager = JobManager(tmp_path, execute=flaky, workers=1)
        manager.start()
        try:
            outcome = manager.submit(_spec(1))
            assert _wait_terminal(manager)
            record = manager.get(outcome.record.id)
            assert record.state == JobState.DONE
            assert record.attempts == 2
            assert (
                manager.metrics.counter("service.worker_restarts").value == 1
            )
        finally:
            manager.drain(grace=0.0)

    def test_attempts_exhausted_fails_with_stderr_tail(self, tmp_path):
        manager = JobManager(
            tmp_path,
            execute=CountingExecutor(exit_status=7),
            workers=1,
            max_attempts=2,
        )
        manager.start()
        try:
            outcome = manager.submit(_spec(1))
            assert _wait_terminal(manager)
            record = manager.get(outcome.record.id)
            assert record.state == JobState.FAILED
            assert record.attempts == 2
            assert "failed after 2 attempt(s)" in record.error
            assert record.stderr_tail == "made by fake"
            assert manager.result(record.id) == (None, JobState.FAILED)
        finally:
            manager.drain(grace=0.0)

    def test_breaker_trips_after_consecutive_class_failures(self, tmp_path):
        fake = CountingExecutor(exit_status=7)
        manager = JobManager(
            tmp_path,
            execute=fake,
            workers=1,
            max_attempts=2,
            breaker_threshold=2,
        )
        manager.start()
        try:
            for seed in (1, 2):  # two grid failures trip the grid breaker
                manager.submit(_spec(seed))
                assert _wait_terminal(manager)
            assert manager.metrics.counter("service.breaker_trips").value == 1
            third = manager.submit(_spec(3))
            assert _wait_terminal(manager)
            record = manager.get(third.record.id)
            assert record.state == JobState.FAILED
            assert record.attempts == 1  # fast fail: one attempt, not two
            assert (
                manager.metrics.counter("service.breaker_fast_fails").value
                == 1
            )
            # A success closes the breaker again.
            fake.exit_status = 0
            manager.submit(_spec(4))
            assert _wait_terminal(manager)
            fake.exit_status = 7
            fifth = manager.submit(_spec(5))
            assert _wait_terminal(manager)
            assert manager.get(fifth.record.id).attempts == 2
        finally:
            manager.drain(grace=0.0)


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(tmp_path, execute=blocking, workers=1)
        manager.start()
        try:
            manager.submit(_spec(1))
            assert blocking.started.wait(5.0)
            queued = manager.submit(_spec(2))
            ok, reason = manager.cancel(queued.record.id)
            assert ok and reason == "cancelled"
            assert (
                manager.get(queued.record.id).state == JobState.CANCELLED
            )
            blocking.release.set()
            assert _wait_terminal(manager)
        finally:
            manager.drain(grace=0.0)

    def test_cancel_running_job_interrupts(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(tmp_path, execute=blocking, workers=1)
        manager.start()
        try:
            outcome = manager.submit(_spec(1))
            assert blocking.started.wait(5.0)
            ok, reason = manager.cancel(outcome.record.id)
            assert ok and reason == "cancelling"
            assert _wait_terminal(manager)
            assert (
                manager.get(outcome.record.id).state == JobState.CANCELLED
            )
        finally:
            manager.drain(grace=0.0)

    def test_cancel_unknown_and_terminal(self, tmp_path):
        manager = JobManager(tmp_path, execute=CountingExecutor(), workers=1)
        manager.start()
        try:
            assert manager.cancel("j999999") == (False, "not-found")
            outcome = manager.submit(_spec(1))
            assert _wait_terminal(manager)
            ok, reason = manager.cancel(outcome.record.id)
            assert not ok and "already" in reason
        finally:
            manager.drain(grace=0.0)


class TestDrainAndRecovery:
    def test_drain_requeues_interrupted_job(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(tmp_path, execute=blocking, workers=1)
        manager.start()
        outcome = manager.submit(_spec(1))
        assert blocking.started.wait(5.0)
        summary = manager.drain(grace=0.05)
        assert summary["interrupted"] == 1
        record = manager.get(outcome.record.id)
        assert record.state == JobState.QUEUED
        assert record.requeues == 1
        journal = (tmp_path / "jobs" / f"{record.id}.json").read_bytes()
        assert b'"state": "queued"' in journal

    def test_restart_resumes_journaled_jobs_byte_identically(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(tmp_path, execute=blocking, workers=1)
        manager.start()
        outcome = manager.submit(_spec(1))
        queued = manager.submit(_spec(2))
        assert blocking.started.wait(5.0)
        manager.drain(grace=0.05)
        # A fresh manager over the same state dir resumes both jobs.
        fake = CountingExecutor()
        revived = JobManager(tmp_path, execute=fake, workers=1)
        assert revived.get(outcome.record.id).outcome == "resumed"
        revived.start()
        try:
            assert _wait_terminal(revived)
            for job_id, seed in (
                (outcome.record.id, 1), (queued.record.id, 2),
            ):
                payload, reason = revived.result(job_id)
                assert reason == "ok"
                assert payload == b"artifact:" + _spec(seed).cache_key.encode()
            assert (
                revived.metrics.counter("service.jobs_recovered").value == 2
            )
        finally:
            revived.drain(grace=0.0)

    def test_drain_sheds_new_submissions(self, tmp_path):
        manager = JobManager(tmp_path, execute=CountingExecutor(), workers=1)
        manager.start()
        manager.drain(grace=0.0)
        outcome = manager.submit(_spec(9))
        assert outcome.status == "rejected-draining"
        assert outcome.retry_after >= 1

    def test_overload_sheds_with_retry_after(self, tmp_path):
        blocking = BlockingExecutor()
        manager = JobManager(
            tmp_path, execute=blocking, workers=1, queue_capacity=1
        )
        manager.start()
        try:
            manager.submit(_spec(1))
            assert blocking.started.wait(5.0)
            assert manager.submit(_spec(2)).status == "queued"
            shed = manager.submit(_spec(3))
            assert shed.status == "rejected-overload"
            assert shed.retry_after >= 1
            assert shed.record is None
            blocking.release.set()
            assert _wait_terminal(manager)
            assert (
                manager.metrics.counter(
                    "service.admission_shed_overload"
                ).value
                == 1
            )
        finally:
            manager.drain(grace=0.0)
