"""Tests for the crash-consistent write primitives."""

import json
import os

import pytest

from repro.ioutil import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)


class TestAtomicWriteBytes:
    def test_writes_new_file(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]

    def test_failed_write_leaves_destination_untouched(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "out.bin"
        path.write_bytes(b"precious")

        def boom(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_write_bytes(path, b"replacement")
        assert path.read_bytes() == b"precious"
        # ... and the temp file was cleaned up.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.bin"]


class TestAtomicWriteText:
    def test_round_trips_utf8(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo\nwörld\n")
        assert path.read_text() == "héllo\nwörld\n"


class TestAtomicWriteJson:
    def test_writes_sorted_indented_document(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text == '{\n  "a": 1,\n  "b": 2\n}\n'
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_unserialisable_document_never_touches_destination(
        self, tmp_path
    ):
        path = tmp_path / "doc.json"
        path.write_text("original")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert path.read_text() == "original"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]


class TestFsyncDir:
    def test_existing_directory_is_fine(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_missing_directory_degrades_silently(self, tmp_path):
        fsync_dir(tmp_path / "nope")  # must not raise
