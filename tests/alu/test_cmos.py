"""Unit tests for the CMOS baseline ALU."""

import pytest

from repro.alu.base import Opcode
from repro.alu.cmos import CMOSALU
from repro.alu.reference import reference_compute
from tests.conftest import OPERAND_CASES


class TestGeometry:
    def test_paper_site_count(self):
        assert CMOSALU().site_count == 192

    def test_single_gates_segment(self):
        alu = CMOSALU()
        assert [s.name for s in alu.site_space.segments] == ["gates"]


class TestCorrectness:
    def test_matches_reference(self):
        alu = CMOSALU()
        for op in Opcode:
            for a, b in OPERAND_CASES:
                got = alu.compute(int(op), a, b)
                want = reference_compute(int(op), a, b)
                assert (got.value, got.carry) == (want.value, want.carry)

    def test_invalid_opcode(self):
        with pytest.raises(ValueError):
            CMOSALU().compute(0b100, 0, 0)

    def test_operand_range(self):
        with pytest.raises(ValueError):
            CMOSALU().compute(0, 300, 0)


class TestFaultBehaviour:
    def test_output_gate_flip(self):
        alu = CMOSALU()
        # Find the slice-0 output gate by name and flip it.
        gates = alu.netlist.gates
        out0 = next(g for g in gates if g.name == "s0.out")
        clean = alu.compute(int(Opcode.AND), 0xFF, 0xFF).value
        faulty = alu.compute(
            int(Opcode.AND), 0xFF, 0xFF, fault_mask=1 << out0.index
        ).value
        assert faulty == clean ^ 0x01

    def test_decode_gate_flip_changes_operation(self):
        alu = CMOSALU()
        gates = alu.netlist.gates
        s_and = next(g for g in gates if g.name == "s3.s_and")
        # Killing slice 3's AND-select forces that slice's output to 0
        # (no mux leg selected) for an AND instruction with both bits set.
        faulty = alu.compute(
            int(Opcode.AND), 0xFF, 0xFF, fault_mask=1 << s_and.index
        ).value
        assert faulty == 0xFF ^ 0x08
