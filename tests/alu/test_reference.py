"""Unit tests for the golden reference ALU (paper Table 1 semantics)."""

import pytest

from repro.alu.base import Opcode
from repro.alu.reference import ReferenceALU, reference_compute
from tests.conftest import OPERAND_CASES


class TestReferenceCompute:
    @pytest.mark.parametrize("a,b", OPERAND_CASES)
    def test_and(self, a, b):
        assert reference_compute(0b000, a, b).value == a & b

    @pytest.mark.parametrize("a,b", OPERAND_CASES)
    def test_or(self, a, b):
        assert reference_compute(0b001, a, b).value == a | b

    @pytest.mark.parametrize("a,b", OPERAND_CASES)
    def test_xor(self, a, b):
        assert reference_compute(0b010, a, b).value == a ^ b

    @pytest.mark.parametrize("a,b", OPERAND_CASES)
    def test_add_truncates_and_carries(self, a, b):
        result = reference_compute(0b111, a, b)
        assert result.value == (a + b) & 0xFF
        assert result.carry == (a + b) >> 8

    def test_logical_ops_never_carry(self):
        for op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            assert reference_compute(int(op), 0xFF, 0xFF).carry == 0

    def test_add_carry_boundary(self):
        assert reference_compute(0b111, 0xFF, 0x01).carry == 1
        assert reference_compute(0b111, 0xFE, 0x01).carry == 0

    def test_invalid_opcode(self):
        with pytest.raises(ValueError):
            reference_compute(0b011, 0, 0)

    def test_operand_range(self):
        with pytest.raises(ValueError):
            reference_compute(0b000, 256, 0)
        with pytest.raises(ValueError):
            reference_compute(0b000, 0, -1)


class TestReferenceALU:
    def test_zero_sites(self):
        assert ReferenceALU().site_count == 0

    def test_compute_matches_function(self):
        alu = ReferenceALU()
        for a, b in OPERAND_CASES:
            for op in Opcode:
                assert alu.compute(int(op), a, b) == reference_compute(int(op), a, b)

    def test_rejects_fault_mask(self):
        with pytest.raises(ValueError):
            ReferenceALU().compute(0, 1, 2, fault_mask=1)
