"""Unit tests for ALU base types."""

import pytest

from repro.alu.base import (
    ALUResult,
    BUNDLE_BITS,
    INTERNAL_OPCODE,
    Opcode,
    RESULT_BITS,
)


class TestOpcode:
    def test_paper_encodings(self):
        assert Opcode.AND == 0b000
        assert Opcode.OR == 0b001
        assert Opcode.XOR == 0b010
        assert Opcode.ADD == 0b111

    def test_from_int_valid(self):
        for op in Opcode:
            assert Opcode.from_int(int(op)) is op

    @pytest.mark.parametrize("value", [0b011, 0b100, 0b101, 0b110, 8, -1])
    def test_from_int_invalid(self, value):
        with pytest.raises(ValueError, match="invalid opcode"):
            Opcode.from_int(value)

    def test_internal_encoding_is_2bit_and_distinct(self):
        values = set(INTERNAL_OPCODE.values())
        assert values == {0b00, 0b01, 0b10, 0b11}
        assert len(INTERNAL_OPCODE) == 4


class TestALUResult:
    def test_bundle_roundtrip(self):
        for value in (0, 0xFF, 0x5A):
            for carry in (0, 1):
                result = ALUResult(value, carry)
                assert ALUResult.from_bundle(result.bundle) == result

    def test_bundle_layout(self):
        assert ALUResult(0xFF, 1).bundle == 0x1FF
        assert ALUResult(0x01, 0).bundle == 0x001
        assert BUNDLE_BITS == RESULT_BITS + 1 == 9

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            ALUResult(256, 0)
        with pytest.raises(ValueError):
            ALUResult(-1, 0)

    def test_carry_range_enforced(self):
        with pytest.raises(ValueError):
            ALUResult(0, 2)

    def test_from_bundle_range(self):
        with pytest.raises(ValueError):
            ALUResult.from_bundle(1 << 9)
