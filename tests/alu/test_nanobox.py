"""Unit tests for the NanoBox lookup-table ALU."""

import itertools

import pytest

from repro.alu.base import Opcode
from repro.alu.nanobox import (
    NanoBoxALU,
    carry_truth_table,
    result_truth_table,
)
from repro.alu.reference import reference_compute
from tests.conftest import OPERAND_CASES


class TestSliceTruthTables:
    def test_result_function_all_ops(self):
        table = result_truth_table()
        for a, b, c in itertools.product((0, 1), repeat=3):
            addr = a | (b << 1) | (c << 2)
            assert table.lookup(addr | (0b00 << 3)) == a & b
            assert table.lookup(addr | (0b01 << 3)) == a | b
            assert table.lookup(addr | (0b10 << 3)) == a ^ b
            assert table.lookup(addr | (0b11 << 3)) == a ^ b ^ c

    def test_carry_function(self):
        table = carry_truth_table()
        for a, b, c in itertools.product((0, 1), repeat=3):
            addr = a | (b << 1) | (c << 2)
            for op in (0b00, 0b01, 0b10):
                assert table.lookup(addr | (op << 3)) == 0
            majority = 1 if a + b + c >= 2 else 0
            assert table.lookup(addr | (0b11 << 3)) == majority


class TestGeometry:
    @pytest.mark.parametrize(
        "scheme,expected",
        [("none", 512), ("hamming", 672), ("tmr", 1536)],
    )
    def test_paper_site_counts(self, scheme, expected):
        assert NanoBoxALU(scheme=scheme).site_count == expected

    def test_lut_count(self):
        assert NanoBoxALU().lut_count == 16

    def test_segments_cover_space(self):
        alu = NanoBoxALU(scheme="tmr")
        segments = alu.site_space.segments
        assert len(segments) == 16
        assert sum(s.size for s in segments) == alu.site_count

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            NanoBoxALU(width=0)


@pytest.mark.parametrize("scheme", ["none", "hamming", "hamming-sec", "tmr"])
class TestFaultFreeCorrectness:
    def test_matches_reference(self, scheme):
        alu = NanoBoxALU(scheme=scheme)
        for op in Opcode:
            for a, b in OPERAND_CASES:
                got = alu.compute(int(op), a, b)
                want = reference_compute(int(op), a, b)
                assert (got.value, got.carry) == (want.value, want.carry)


class TestFaultBehaviour:
    def test_addressed_result_bit_flip_corrupts_output(self):
        alu = NanoBoxALU(scheme="none")
        # For XOR 0x00 ^ 0x00, slice 0 reads result LUT at address
        # a=0,b=0,c=0,op=10 -> 0b10000 = 16.
        segment = alu.site_space.segment("slice0.result_lut")
        mask = segment.inject(1 << 0b10000)
        result = alu.compute(int(Opcode.XOR), 0, 0, fault_mask=mask)
        assert result.value == 0x01

    def test_non_addressed_fault_invisible_uncoded(self):
        alu = NanoBoxALU(scheme="none")
        segment = alu.site_space.segment("slice0.result_lut")
        # Flip every entry except the XOR a=0,b=0,c=0 address (16).
        local = ((1 << 32) - 1) ^ (1 << 16)
        mask = segment.inject(local)
        result = alu.compute(int(Opcode.XOR), 0, 0, fault_mask=mask)
        assert result.value == 0

    def test_tmr_masks_single_copy_fault(self):
        alu = NanoBoxALU(scheme="tmr")
        segment = alu.site_space.segment("slice0.result_lut")
        mask = segment.inject(1 << 16)  # copy 0 of the addressed bit
        result = alu.compute(int(Opcode.XOR), 0, 0, fault_mask=mask)
        assert result.value == 0

    def test_carry_lut_fault_breaks_ripple_add(self):
        alu = NanoBoxALU(scheme="none")
        # ADD 0x01 + 0x01: slice 0 reads carry LUT at a=1,b=1,c=0,op=11 ->
        # address 0b11011 = 27; the carry-out there is 1.  Flipping it
        # drops the carry into slice 1 and produces 0 instead of 2.
        segment = alu.site_space.segment("slice0.carry_lut")
        mask = segment.inject(1 << 0b11011)
        result = alu.compute(int(Opcode.ADD), 1, 1, fault_mask=mask)
        assert result.value == 0

    def test_carry_fault_invisible_to_logical_ops(self):
        alu = NanoBoxALU(scheme="none")
        segment = alu.site_space.segment("slice0.carry_lut")
        # Even if the carry LUT is fully corrupted, AND/OR results only
        # depend on result-LUT entries -- though the corrupted carry can
        # redirect later slices to different addresses, those addresses
        # hold the same value for carry-independent ops when only carry
        # LUT bits are faulted.
        mask = segment.inject((1 << 96) - 1 if segment.size == 96 else
                              (1 << segment.size) - 1)
        result = alu.compute(int(Opcode.AND), 0xAA, 0xCC, fault_mask=mask)
        assert result.value == 0xAA & 0xCC

    def test_distinct_slices_have_distinct_sites(self):
        alu = NanoBoxALU(scheme="none")
        s0 = alu.site_space.segment("slice0.result_lut")
        s7 = alu.site_space.segment("slice7.result_lut")
        assert s0.offset != s7.offset
        # A fault in slice 7's table cannot disturb bit 0 of the result.
        mask = s7.inject((1 << 32) - 1)
        result = alu.compute(int(Opcode.XOR), 0x01, 0x00, fault_mask=mask)
        assert result.value & 1 == 1


class TestOperandValidation:
    def test_range_checks(self):
        alu = NanoBoxALU()
        with pytest.raises(ValueError):
            alu.compute(0, 256, 0)
        with pytest.raises(ValueError):
            alu.compute(0b011, 0, 0)
