"""Property-based tests across the ALU family (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.cmos import CMOSALU
from repro.alu.reference import reference_compute
from repro.alu.variants import build_alu
from repro.coding.bits import random_word

operands = st.integers(min_value=0, max_value=255)
opcodes = st.sampled_from([int(op) for op in Opcode])


class TestFaultFreeEquivalence:
    @given(opcodes, operands, operands)
    def test_nanobox_schemes_match_reference(self, op, a, b):
        want = reference_compute(op, a, b)
        for scheme in ("none", "hamming", "tmr"):
            got = NanoBoxALU(scheme=scheme).compute(op, a, b)
            assert (got.value, got.carry) == (want.value, want.carry)

    @given(opcodes, operands, operands)
    def test_cmos_matches_reference(self, op, a, b):
        got = CMOSALU().compute(op, a, b)
        want = reference_compute(op, a, b)
        assert (got.value, got.carry) == (want.value, want.carry)


class TestRedundancyInvariants:
    @given(opcodes, operands, operands, st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_copy_corruption_always_masked_in_space_redundancy(
        self, op, a, b, copy, seed
    ):
        """Whatever faults land in ONE copy of alusn, the vote holds."""
        alu = build_alu("alusn")
        segment = alu.site_space.segment(f"copy{copy}")
        rng = np.random.default_rng(seed)
        local = random_word(segment.size, rng)
        result = alu.compute(op, a, b, fault_mask=segment.inject(local))
        want = reference_compute(op, a, b)
        assert (result.value, result.carry) == (want.value, want.carry)

    @given(opcodes, operands, operands, st.integers(min_value=0, max_value=2),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_pass_corruption_always_masked_in_time_redundancy(
        self, op, a, b, pass_index, seed
    ):
        alu = build_alu("alutn")
        segment = alu.site_space.segment(f"pass{pass_index}")
        rng = np.random.default_rng(seed)
        local = random_word(segment.size, rng)
        result = alu.compute(op, a, b, fault_mask=segment.inject(local))
        want = reference_compute(op, a, b)
        assert (result.value, result.carry) == (want.value, want.carry)

    @given(opcodes, operands, operands,
           st.integers(min_value=0, max_value=(1 << 9) - 1))
    @settings(max_examples=60, deadline=None)
    def test_single_storage_register_corruption_masked(self, op, a, b, flips):
        """Any corruption of ONE stored inter-operation result is voted
        away in the time-redundant configuration."""
        alu = build_alu("alutn")
        segment = alu.site_space.segment("stored1")
        result = alu.compute(op, a, b, fault_mask=segment.inject(flips))
        want = reference_compute(op, a, b)
        assert (result.value, result.carry) == (want.value, want.carry)


class TestMaskIsTransient:
    @given(opcodes, operands, operands,
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_no_state_leaks_between_computations(self, op, a, b, seed):
        """A faulted computation must not contaminate later fault-free
        ones -- transient faults are per-computation overlays."""
        alu = build_alu("aluns")
        rng = np.random.default_rng(seed)
        mask = random_word(alu.site_count, rng)
        alu.compute(op, a, b, fault_mask=mask)
        clean = alu.compute(op, a, b)
        want = reference_compute(op, a, b)
        assert (clean.value, clean.carry) == (want.value, want.carry)
