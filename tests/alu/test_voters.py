"""Unit tests for the module-level voters."""

import itertools

import pytest

from repro.alu.voters import CMOSVoter, LUTVoter, make_voter, voter_truth_table


class TestVoterTruthTable:
    def test_enabled_majority(self):
        table = voter_truth_table()
        for x, y, z in itertools.product((0, 1), repeat=3):
            addr = x | (y << 1) | (z << 2) | (1 << 3)
            assert table.lookup(addr) == (1 if x + y + z >= 2 else 0)

    def test_disabled_outputs_zero(self):
        table = voter_truth_table()
        for addr in range(8):
            assert table.lookup(addr) == 0


class TestLUTVoterGeometry:
    @pytest.mark.parametrize(
        "scheme,expected",
        [("none", 144), ("hamming", 189), ("tmr", 432)],
    )
    def test_paper_site_counts(self, scheme, expected):
        assert LUTVoter(scheme=scheme).site_count == expected

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            LUTVoter(width=0)


class TestCMOSVoterGeometry:
    def test_paper_site_count(self):
        assert CMOSVoter().site_count == 81


@pytest.mark.parametrize("voter", [LUTVoter("none"), LUTVoter("tmr"),
                                   LUTVoter("hamming"), CMOSVoter()],
                         ids=["lut-none", "lut-tmr", "lut-hamming", "cmos"])
class TestVoting:
    def test_unanimous(self, voter):
        for value in (0, 0x1FF, 0x0AB):
            assert voter.vote(value, value, value) == value

    def test_single_dissenter_outvoted(self, voter):
        good = 0x15A
        bad = good ^ 0x0FF
        assert voter.vote(bad, good, good) == good
        assert voter.vote(good, bad, good) == good
        assert voter.vote(good, good, bad) == good

    def test_bitwise_not_wordwise(self, voter):
        # Three different words still produce a per-bit majority.
        assert voter.vote(0b110000000, 0b101000000, 0b011000000) == 0b111000000


class TestVoterFaults:
    def test_lut_voter_fault_flips_voted_bit(self):
        voter = LUTVoter("none")
        # Address for bit 0 with x=y=z=1, enable=1 is 0b1111 = 15.
        segment = voter.site_space.segment("bit0")
        mask = segment.inject(1 << 0b1111)
        assert voter.vote(0x1FF, 0x1FF, 0x1FF, fault_mask=mask) == 0x1FE

    def test_tmr_voter_masks_its_own_single_fault(self):
        voter = LUTVoter("tmr")
        segment = voter.site_space.segment("bit0")
        mask = segment.inject(1 << 0b1111)  # copy 0 of the addressed bit
        assert voter.vote(0x1FF, 0x1FF, 0x1FF, fault_mask=mask) == 0x1FF

    def test_cmos_voter_fault(self):
        voter = CMOSVoter()
        out_gate = next(
            g for g in voter.netlist.gates if g.name == "v0.out"
        )
        got = voter.vote(0x1FF, 0x1FF, 0x1FF, fault_mask=1 << out_gate.index)
        assert got == 0x1FE


class TestMakeVoter:
    def test_cmos_kind(self):
        assert isinstance(make_voter("cmos"), CMOSVoter)

    def test_lut_kinds(self):
        for scheme in ("none", "hamming", "tmr"):
            voter = make_voter(scheme)
            assert isinstance(voter, LUTVoter)
            assert voter.scheme == scheme

    def test_bundle_range_check(self):
        with pytest.raises(ValueError):
            LUTVoter("none").vote(1 << 9, 0, 0)
