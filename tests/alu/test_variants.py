"""Unit tests for the Table 2 variant registry -- the calibration anchor."""

import pytest

from repro.alu.base import Opcode
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU, TimeRedundantALU
from repro.alu.reference import reference_compute
from repro.alu.variants import (
    TABLE2_SITE_COUNTS,
    build_alu,
    build_all,
    variant_names,
    variant_spec,
)
from tests.conftest import OPERAND_CASES


class TestTable2SiteCounts:
    """Every constructed variant must hit the paper's count exactly."""

    @pytest.mark.parametrize("name,expected", sorted(TABLE2_SITE_COUNTS.items()))
    def test_exact_site_count(self, name, expected):
        assert build_alu(name).site_count == expected

    def test_twelve_variants(self):
        assert len(variant_names()) == 12

    def test_decompositions(self):
        # The cross-variant arithmetic the paper's table implies.
        t = TABLE2_SITE_COUNTS
        assert t["aluns"] == 3 * t["alunn"]
        assert t["aluss"] - 3 * t["aluns"] == 432          # TMR voter
        assert t["alusn"] - 3 * t["alunn"] == 144          # uncoded voter
        assert t["alush"] - 3 * t["alunh"] == 189          # Hamming voter
        assert t["aluscmos"] - 3 * t["aluncmos"] == 81     # CMOS voter
        for bit in ("cmos", "h", "n", "s"):
            assert t[f"alut{bit}"] - t[f"alus{bit}"] == 27  # stored results


class TestVariantSpec:
    def test_spec_fields(self):
        spec = variant_spec("aluss")
        assert spec.bit_level == "tmr"
        assert spec.module_level == "s"
        assert spec.expected_sites == 5040
        assert spec.uses_lut
        assert spec.has_module_redundancy

    def test_cmos_spec(self):
        spec = variant_spec("aluncmos")
        assert spec.bit_level == "cmos"
        assert not spec.uses_lut
        assert not spec.has_module_redundancy

    @pytest.mark.parametrize("bad", ["alu", "aluxy", "aluzz", "nanobox", ""])
    def test_unknown_names(self, bad):
        with pytest.raises(KeyError):
            variant_spec(bad)
        with pytest.raises(KeyError):
            build_alu(bad)


class TestVariantStructure:
    def test_module_wrapper_types(self):
        assert isinstance(build_alu("alunn"), SimplexALU)
        assert isinstance(build_alu("alusn"), SpaceRedundantALU)
        assert isinstance(build_alu("alutn"), TimeRedundantALU)

    def test_build_all(self):
        alus = build_all()
        assert set(alus) == set(variant_names())


class TestVariantCorrectness:
    @pytest.mark.parametrize("name", sorted(TABLE2_SITE_COUNTS))
    def test_fault_free_matches_reference(self, name):
        alu = build_alu(name)
        for op in Opcode:
            for a, b in OPERAND_CASES:
                got = alu.compute(int(op), a, b)
                want = reference_compute(int(op), a, b)
                assert (got.value, got.carry) == (want.value, want.carry), (
                    f"{name} {op.name}({a:#x},{b:#x})"
                )
