"""Unit tests for the module-level redundancy wrappers."""

import pytest

from repro.alu.base import Opcode
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU, TimeRedundantALU
from repro.alu.reference import reference_compute
from repro.alu.voters import LUTVoter
from tests.conftest import OPERAND_CASES


def make_space(scheme="none", voter_scheme=None):
    return SpaceRedundantALU(
        lambda: NanoBoxALU(scheme=scheme),
        LUTVoter(voter_scheme or scheme),
    )


def make_time(scheme="none", voter_scheme=None):
    return TimeRedundantALU(
        lambda: NanoBoxALU(scheme=scheme),
        LUTVoter(voter_scheme or scheme),
    )


class TestSimplex:
    def test_site_count_passthrough(self):
        assert SimplexALU(NanoBoxALU("none")).site_count == 512

    def test_compute_delegates(self):
        alu = SimplexALU(NanoBoxALU("none"))
        for a, b in OPERAND_CASES:
            assert alu.compute(0b111, a, b) == reference_compute(0b111, a, b)

    def test_mask_reaches_core(self):
        alu = SimplexALU(NanoBoxALU("none"))
        # Same fault as the nanobox test: flip XOR(0,0) entry of slice 0.
        mask = 1 << 0b10000
        assert alu.compute(0b010, 0, 0, fault_mask=mask).value == 1


class TestSpaceRedundant:
    def test_layout(self):
        alu = make_space("tmr", "tmr")
        names = [s.name for s in alu.site_space.segments]
        assert names == ["copy0", "copy1", "copy2", "voter"]
        assert alu.site_count == 3 * 1536 + 432  # aluss = 5040

    def test_fault_free(self):
        alu = make_space()
        for op in Opcode:
            for a, b in OPERAND_CASES[:4]:
                assert alu.compute(int(op), a, b) == reference_compute(int(op), a, b)

    def test_single_copy_fully_corrupted_is_outvoted(self):
        alu = make_space("none")
        copy1 = alu.site_space.segment("copy1")
        mask = copy1.inject((1 << copy1.size) - 1)
        for a, b in OPERAND_CASES[:4]:
            assert alu.compute(0b010, a, b, fault_mask=mask).value == a ^ b

    def test_two_copies_corrupted_defeats_vote(self):
        alu = make_space("none")
        # Flip the XOR(0,0) addressed entry of slice 0 in two copies.
        local = 1 << 0b10000
        mask = alu.site_space.segment("copy0").inject(local)
        mask |= alu.site_space.segment("copy1").inject(local)
        assert alu.compute(0b010, 0, 0, fault_mask=mask).value == 1

    def test_voter_fault_corrupts_final_result(self):
        alu = make_space("none")
        voter_seg = alu.site_space.segment("voter")
        # Voter bit 0 LUT, address x=y=z=1 (since 0^0... choose operands
        # giving result bit0=1): use XOR(1,0) -> result bit0 = 1.
        mask = voter_seg.inject(1 << 0b1111)
        got = alu.compute(0b010, 0x01, 0x00, fault_mask=mask).value
        assert got == 0x00


class TestTimeRedundant:
    def test_layout(self):
        alu = make_time("tmr", "tmr")
        names = [s.name for s in alu.site_space.segments]
        assert names == ["pass0", "pass1", "pass2", "voter",
                         "stored0", "stored1", "stored2"]
        assert alu.site_count == 3 * 1536 + 432 + 27  # aluts = 5067

    def test_storage_sites(self):
        assert make_time().storage_sites == 27

    def test_fault_free(self):
        alu = make_time()
        for op in Opcode:
            for a, b in OPERAND_CASES[:4]:
                assert alu.compute(int(op), a, b) == reference_compute(int(op), a, b)

    def test_single_pass_fault_outvoted(self):
        alu = make_time("none")
        mask = alu.site_space.segment("pass2").inject(1 << 0b10000)
        assert alu.compute(0b010, 0, 0, fault_mask=mask).value == 0

    def test_storage_bit_flip_single_copy_outvoted(self):
        alu = make_time("none")
        mask = alu.site_space.segment("stored0").inject(1 << 0)
        assert alu.compute(0b010, 0, 0, fault_mask=mask).value == 0

    def test_storage_flips_in_two_copies_defeat_vote(self):
        alu = make_time("none")
        mask = alu.site_space.segment("stored0").inject(1 << 0)
        mask |= alu.site_space.segment("stored1").inject(1 << 0)
        assert alu.compute(0b010, 0, 0, fault_mask=mask).value == 1

    def test_carry_travels_through_bundle(self):
        alu = make_time("none")
        result = alu.compute(0b111, 0xFF, 0x01)
        assert result.value == 0x00
        assert result.carry == 1
