"""Command-line interface.

Everything the library can regenerate, from a shell::

    nanobox-repro table1                  # the ISA table
    nanobox-repro table2                  # variants + fault-site counts
    nanobox-repro area                    # ~9x overhead table
    nanobox-repro fit --variant aluss     # percent -> FIT translation
    nanobox-repro describe aluts          # NanoBox hierarchy tree
    nanobox-repro sweep --figure 7        # regenerate a figure (--quick)
    nanobox-repro grid --rows 4 --cols 4 --workload hue_shift \
        --kill 1,1@40 --fault-percent 1   # full-system run
    nanobox-repro yield --density 1e-3    # manufacturing-yield table
    nanobox-repro chaos --rates 0 0.003   # link-fault transport sweep
    nanobox-repro lifecycle --jobs 6      # self-healing policy sweep
    nanobox-repro report --quick          # the whole EXPERIMENTS report

The experiment-running subcommands (``sweep``, ``grid``, ``chaos``,
``lifecycle``, ``report``) also take observability flags::

    nanobox-repro lifecycle --metrics out.json --trace out.jsonl --obs-report
    nanobox-repro grid --kill 1,1@40 --chrome-trace trace.json
    nanobox-repro sweep --quick --manifest run.json
    nanobox-repro replay run.json

which install a :mod:`repro.obs` observer for the run, write the metrics
registry as JSON / the trace event log as JSON Lines / a
Perfetto-compatible Chrome trace (open it at ui.perfetto.dev), print the
ASCII observability summary, or record an exact-replay manifest.
Observability never changes results: the command's primary output is
bit-identical with or without these flags, which is exactly what
``replay`` asserts (byte-for-byte) against a recorded manifest.

The benchmark harness lives under ``bench``::

    nanobox-repro bench run --smoke --filter 'perf_*'
    nanobox-repro bench compare results/bench_baseline results/bench

emitting one schema-versioned ``BENCH_<name>.json`` per benchmark script
and diffing two artifact sets with per-metric regression thresholds.

``sweep``/``grid``/``chaos``/``lifecycle`` are additionally
crash-safe: ``--checkpoint-dir`` stores completed work chunks durably,
``--resume`` completes an interrupted run with byte-identical stdout,
and ``--deadline SECS`` degrades to an explicit partial report (exit
status 3) that a later ``--resume`` finishes::

    nanobox-repro sweep --checkpoint-dir ck            # interruptible
    nanobox-repro sweep --checkpoint-dir ck --resume   # finish the rest
    nanobox-repro chaos-exec                           # prove it: kill/hang/
                                                       # corrupt/disk-full/
                                                       # deadline child runs

Also available as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import io
import sys
from typing import Dict, List, Optional, Sequence, Tuple


class _Tee(io.TextIOBase):
    """Write-through stream: mirrors writes to every underlying stream."""

    def __init__(self, *streams) -> None:
        self._streams = streams

    def write(self, text: str) -> int:
        for stream in self._streams:
            stream.write(text)
        return len(text)

    def flush(self) -> None:
        for stream in self._streams:
            stream.flush()


#: Exit status for a well-formed partial result (deadline hit or chunks
#: dead-lettered): distinguishable from success (0) and real failure (1).
EXIT_INCOMPLETE = 3


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared crash-safety / budget flags."""
    group = parser.add_argument_group("resilience")
    group.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="durably checkpoint completed work chunks "
                            "under DIR (content-addressed by the run "
                            "configuration)")
    group.add_argument("--resume", action="store_true",
                       help="reuse valid checkpoints from --checkpoint-dir; "
                            "the resumed output is byte-identical to an "
                            "uninterrupted run")
    group.add_argument("--deadline", type=float, default=None, metavar="SECS",
                       help="wall-clock budget; on expiry the run stops "
                            "scheduling work and reports an explicit "
                            f"partial result (exit {EXIT_INCOMPLETE})")
    group.add_argument("--checkpoint-chunk-size", type=int, default=4,
                       metavar="N", help="tasks per checkpointed chunk")
    group.add_argument("--chunk-timeout", type=float, default=None,
                       metavar="SECS",
                       help="per-chunk hung-worker timeout (parallel "
                            "runs only): a wedged worker is killed and "
                            "its chunk re-run in a fresh pool")


def _runtime_from_args(args: argparse.Namespace):
    """The ResilientRuntime the flags ask for, or None for the
    plain (pre-existing, flag-free) execution path."""
    wanted = (
        args.checkpoint_dir is not None
        or args.resume
        or args.deadline is not None
        or args.chunk_timeout is not None
    )
    if not wanted:
        return None
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        raise SystemExit(2)
    from pathlib import Path

    from repro.perf import ResilientRuntime

    return ResilientRuntime(
        checkpoint_dir=(
            Path(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
        resume=args.resume,
        deadline=args.deadline,
        chunk_size=args.checkpoint_chunk_size,
        chunk_timeout=args.chunk_timeout,
    )


def _emit_resilience_note(outcome) -> None:
    """Recovery accounting goes to stderr: stdout stays byte-identical."""
    from repro.perf import resilience_note

    print(resilience_note(outcome), file=sys.stderr)


def _incomplete_banner(outcome) -> str:
    """The explicit partial-result banner (deterministic content)."""
    reasons = []
    if outcome.deadline_hit:
        reasons.append(
            f"deadline hit with {outcome.skipped_chunks} chunk(s) "
            f"unscheduled"
        )
    if outcome.dead_letters:
        reasons.append(f"{len(outcome.dead_letters)} chunk(s) dead-lettered")
    reason = "; ".join(reasons) or "some tasks missing"
    return (
        f"INCOMPLETE: {len(outcome.missing_tasks)} of "
        f"{len(outcome.results)} task(s) not computed ({reason}); "
        f"re-run with --resume and the same --checkpoint-dir to continue"
    )


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability / provenance flags."""
    group = parser.add_argument_group("observability")
    group.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the run's metrics registry as JSON")
    group.add_argument("--trace", default=None, metavar="PATH",
                       help="write the run's trace events as JSON Lines")
    group.add_argument("--chrome-trace", default=None, metavar="PATH",
                       help="write the run's trace as a Chrome trace "
                            "event file (open in ui.perfetto.dev)")
    group.add_argument("--obs-report", action="store_true",
                       help="print the ASCII observability summary "
                            "(top timers, counters, lifecycle timeline)")
    group.add_argument("--manifest", default=None, metavar="PATH",
                       help="record an exact-replay manifest (re-run and "
                            "verify with: nanobox-repro replay PATH)")


def _run_with_observability(args: argparse.Namespace) -> int:
    """Run the selected subcommand, observed if any obs flag was given.

    With no observability flags the command runs against the null
    observer -- the exact same code path and output as before the flags
    existed.  With flags, an observer is installed for the run and its
    registry/trace are exported afterwards; the command's own stdout is
    unchanged either way (observability never perturbs results).

    ``--manifest`` additionally tees the command's primary stdout into a
    buffer and records its SHA-256 (plus the exact argv and provenance)
    so ``nanobox-repro replay`` can later assert a byte-identical re-run.
    """
    wants_observer = (
        args.metrics or args.trace or args.chrome_trace or args.obs_report
    )
    if not (wants_observer or args.manifest):
        return args.fn(args)
    from contextlib import ExitStack, redirect_stdout

    capture = io.StringIO() if args.manifest else None
    with ExitStack() as stack:
        if wants_observer:
            from repro.obs import Observer, observing

            obs = Observer()
            stack.enter_context(observing(obs))
        if capture is not None:
            stack.enter_context(redirect_stdout(_Tee(sys.stdout, capture)))
        status = args.fn(args)
    if args.manifest:
        from repro.obs.manifest import build_manifest, write_manifest

        manifest = build_manifest(
            command=args.command,
            argv=getattr(args, "run_argv", []),
            output_text=capture.getvalue(),
            exit_status=status,
            seed=getattr(args, "seed", None),
        )
        write_manifest(manifest, args.manifest)
        print(f"wrote replay manifest to {args.manifest}")
    if args.metrics:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.metrics, obs.metrics.to_json() + "\n")
        print(f"wrote metrics JSON to {args.metrics}")
    if args.trace:
        written = obs.trace.to_jsonl(args.trace)
        print(f"wrote {written} trace event(s) to {args.trace}")
    if args.chrome_trace:
        from repro.obs.chrome import write_chrome_trace

        written = write_chrome_trace(obs.trace, args.chrome_trace)
        print(
            f"wrote {written} chrome trace event(s) to {args.chrome_trace} "
            f"(open in ui.perfetto.dev)"
        )
    if args.obs_report:
        from repro.obs import report_metrics

        print()
        print(report_metrics(obs), end="")
    return status


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table1_text

    print(table1_text())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table2_text

    text = table2_text()
    print(text)
    return 0 if "MISMATCH" not in text else 1


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.experiments.area import area_table_text

    print(area_table_text())
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.experiments.fit_table import fit_table_text

    print(fit_table_text(args.variant))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.alu.variants import build_alu, variant_spec
    from repro.core.hierarchy import describe_unit, render_tree

    spec = variant_spec(args.variant)
    print(f"{spec.name}: {spec.description}")
    print(f"fault-injection sites: {spec.expected_sites}")
    print()
    print(render_tree(describe_unit(build_alu(args.variant))))
    return 0


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    """Attach the evaluation-tier flag shared by the simulation commands.

    The default comes from the ``REPRO_BACKEND`` environment variable
    (unset means the command's legacy tier); an explicit flag wins.
    Every tier is bit-identical -- the choice only affects speed.
    """
    from repro.kernels import BACKENDS, backend_from_env

    parser.add_argument(
        "--backend", choices=BACKENDS, default=backend_from_env(),
        help="evaluation tier: scalar, batched (NumPy), compiled "
             "(native kernel; falls back with a warning if unavailable), "
             "or auto (fastest available); default honours $REPRO_BACKEND",
    )


def _add_grid_engine_arg(parser: argparse.ArgumentParser) -> None:
    """Attach the fabric-tier flag shared by the grid-simulation commands.

    The default comes from the ``REPRO_GRID_ENGINE`` environment variable
    (unset means dense); an explicit flag wins.  Both engines are
    bit-identical -- the choice only affects speed.
    """
    import os

    from repro.grid.simulator import GRID_ENGINES

    default = os.environ.get("REPRO_GRID_ENGINE", "dense")
    if default not in GRID_ENGINES:
        default = "dense"
    parser.add_argument(
        "--grid-engine", choices=GRID_ENGINES, default=default,
        help="fabric tier: dense (per-cell work every cycle), sparse "
             "(event-driven core for large, mostly quiescent fleets; "
             "falls back with a warning when unsupported), or auto "
             "(sparse when supported); default honours $REPRO_GRID_ENGINE",
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.figures import PAPER_FAULT_PERCENTAGES, run_figure

    percents: Sequence[float]
    if args.quick:
        percents = (0, 0.5, 1, 3, 9, 30, 75)
        trials = 2
    else:
        percents = PAPER_FAULT_PERCENTAGES
        trials = args.trials
    runtime = _runtime_from_args(args)
    if runtime is None:
        result = run_figure(
            f"figure{args.figure}",
            fault_percents=percents,
            trials_per_workload=trials,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
        )
    else:
        from repro.experiments.figures import (
            partial_figure_text,
            run_figure_resilient,
        )

        run = run_figure_resilient(
            f"figure{args.figure}",
            runtime,
            fault_percents=percents,
            trials_per_workload=trials,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
        )
        _emit_resilience_note(run.outcome)
        result = run.figure
        if result is None:
            print(partial_figure_text(run))
            print()
            print(_incomplete_banner(run.outcome))
            return EXIT_INCOMPLETE
    if args.chart:
        from repro.experiments.ascii_chart import figure_chart

        print(figure_chart(result))
    else:
        print(result.to_text())
    print(f"\nmax per-point stddev: {result.max_stddev():.2f} points")
    if args.json:
        from repro.experiments.export import figure_to_json
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.json, figure_to_json(result))
        print(f"wrote JSON export to {args.json}")
    return 0


def _parse_kill(spec: str) -> Tuple[int, Tuple[int, int]]:
    """Parse ``row,col@cycle`` into ``(cycle, (row, col))``."""
    try:
        coords, cycle = spec.split("@")
        row, col = coords.split(",")
        return int(cycle), (int(row), int(col))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --kill spec {spec!r}; expected row,col@cycle"
        ) from None


def _cmd_grid(args: argparse.Namespace) -> int:
    runtime = _runtime_from_args(args)
    if runtime is None:
        return _grid_run(args)
    from contextlib import redirect_stdout
    from dataclasses import replace

    from repro.perf import ResilientRunner

    # A grid run is one indivisible simulation, so the checkpoint unit
    # is the whole report: a single chunk whose payload is the exact
    # stdout plus the exit status.  Resuming replays those bytes.
    config = {
        "experiment": "grid-run",
        "rows": args.rows,
        "cols": args.cols,
        "scheme": args.scheme,
        "workload": args.workload,
        "image_size": args.image_size,
        "fault_percent": args.fault_percent,
        "kill": sorted(
            [cycle, list(coord)] for cycle, coord in (args.kill or [])
        ),
        "adaptive": args.adaptive,
        "rounds": args.rounds,
        "seed": args.seed,
        "show_grid": args.show_grid,
    }

    def run_chunk(_index: int, chunk) -> list:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            status = _grid_run(args)
        return [{"stdout": buffer.getvalue(), "exit_status": status}]

    runner = ResilientRunner(
        run_chunk,
        runtime=replace(runtime, chunk_size=1),
        config=config,
        kind="grid-stdout",
    )
    outcome = runner.run([0])
    _emit_resilience_note(outcome)
    if not outcome.complete:
        print(_incomplete_banner(outcome))
        return EXIT_INCOMPLETE
    payload = outcome.results[0]
    sys.stdout.write(payload["stdout"])
    return int(payload["exit_status"])


def _grid_run(args: argparse.Namespace) -> int:
    from repro.faults.mask import ExactFractionMask
    from repro.grid.simulator import GridSimulator
    from repro.workloads import bitmap as bitmaps
    from repro.workloads import imaging

    workload_factories = {
        "reverse_video": imaging.reverse_video,
        "hue_shift": imaging.hue_shift,
        "brightness_boost": imaging.brightness_boost,
        "threshold_mask": imaging.threshold_mask,
    }
    workload = workload_factories[args.workload]()

    kill_schedule: Dict[int, List[Tuple[int, int]]] = {}
    for cycle, coord in (args.kill or []):
        kill_schedule.setdefault(cycle, []).append(coord)

    sim = GridSimulator(
        rows=args.rows,
        cols=args.cols,
        alu_scheme=args.scheme,
        alu_fault_policy=(
            ExactFractionMask(args.fault_percent / 100)
            if args.fault_percent > 0
            else None
        ),
        kill_schedule=kill_schedule,
        adaptive_routing=args.adaptive,
        seed=args.seed,
        backend=args.backend,
        grid_engine=args.grid_engine,
    )
    image = bitmaps.gradient(args.image_size, args.image_size)
    outcome = sim.run_image_job(image, workload, max_rounds=args.rounds)

    cycles = outcome.job.cycles
    print(f"workload          : {workload.name} on "
          f"{image.width}x{image.height} pixels")
    print(f"grid              : {args.rows}x{args.cols}, scheme "
          f"{args.scheme}, adaptive={args.adaptive}")
    print(f"cycles            : shift-in {cycles.shift_in} + compute "
          f"{cycles.compute} + shift-out {cycles.shift_out} "
          f"= {cycles.total}")
    print(f"rounds            : {outcome.job.rounds}")
    print(f"failed cells      : {list(outcome.stats.failed_cells) or 'none'}")
    print(f"salvaged / lost   : {outcome.stats.salvaged_words} / "
          f"{outcome.stats.lost_words} words")
    print(f"dropped packets   : {outcome.stats.dropped_packets}")
    buses = sim.grid.bus_statistics()
    print(f"bus utilisation   : mesh {buses.mesh_utilisation * 100:.1f}%, "
          f"edge {buses.edge_utilisation * 100:.1f}%, peak "
          f"{buses.peak_utilisation * 100:.1f}% ({buses.busiest_link})")
    print(f"pixel accuracy    : {outcome.pixel_accuracy * 100:.1f}%")
    if args.show_grid:
        from repro.grid.display import (
            render_grid,
            render_lifecycle,
            render_reachability,
        )

        print()
        print(render_grid(sim.grid))
        print()
        print(render_lifecycle(sim.watchdog))
        print()
        print(render_reachability(sim.grid))
    return 0 if outcome.job.complete else 1


def _cmd_yield(args: argparse.Namespace) -> int:
    from repro.experiments.defect_yield import yield_sweep, yield_table_text

    points = yield_sweep(
        variants=tuple(args.variants),
        densities=tuple(args.density),
        n_parts=args.parts,
        seed=args.seed,
    )
    print(yield_table_text(points))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.design_space import fault_budget, fit_budget
    from repro.analysis.system import (
        disagreement_probability,
        expected_instructions_to_disable,
        grid_degradation_horizon,
    )
    from repro.experiments.report import format_table

    rows = []
    for scheme in ("none", "hamming", "tmr", "5mr", "7mr"):
        budget = fault_budget(scheme, args.target)
        detect = disagreement_probability(scheme, args.fault_percent / 100)
        rows.append(
            (
                scheme,
                f"{100 * budget:.3f}%",
                f"{fit_budget(scheme, args.target):.2e}",
                f"{detect:.4f}",
                f"{expected_instructions_to_disable(args.threshold, detect):.0f}",
                grid_degradation_horizon(
                    scheme, args.fault_percent / 100,
                    error_threshold=args.threshold,
                ),
            )
        )
    print(
        f"Closed-form analysis (target {args.target:g}% correct; "
        f"operating point {args.fault_percent:g}% injected; "
        f"watchdog threshold {args.threshold})"
    )
    print(format_table(
        ("scheme", "fault budget", "FIT budget", "P(detect)",
         "mean instr to disable", "90% survival horizon"),
        rows,
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_fabric import chaos_sweep, chaos_table_text

    runtime = _runtime_from_args(args)
    incomplete = None
    if runtime is None:
        points = chaos_sweep(
            link_rates=tuple(args.rates),
            retry_budgets=tuple(args.rounds),
            drop_rate=args.drop_rate,
            stall_rate=args.stall_rate,
            rows=args.rows,
            cols=args.cols,
            n_instructions=args.instructions,
            seed=args.seed,
            backend=args.backend,
            grid_engine=args.grid_engine,
        )
    else:
        from repro.experiments.chaos_fabric import chaos_sweep_resilient

        outcome = chaos_sweep_resilient(
            runtime,
            link_rates=tuple(args.rates),
            retry_budgets=tuple(args.rounds),
            drop_rate=args.drop_rate,
            stall_rate=args.stall_rate,
            rows=args.rows,
            cols=args.cols,
            n_instructions=args.instructions,
            seed=args.seed,
            backend=args.backend,
            grid_engine=args.grid_engine,
        )
        _emit_resilience_note(outcome)
        points = [p for p in outcome.results if p is not None]
        if not outcome.complete:
            incomplete = outcome
    print(
        f"Link-fault chaos sweep ({args.rows}x{args.cols} grid, "
        f"{args.instructions} instructions, drop {args.drop_rate:g}, "
        f"stall {args.stall_rate:g})"
    )
    print(chaos_table_text(points))
    if incomplete is not None:
        print()
        print(_incomplete_banner(incomplete))
        return EXIT_INCOMPLETE
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    from repro.experiments.lifecycle import (
        default_processes,
        lifecycle_sweep,
        lifecycle_table_text,
        permanent_policy,
        self_healing_policy,
    )
    from repro.faults.temporal import TemporalFaultProcess

    process_factories = {
        "transient": lambda: TemporalFaultProcess.transient(
            rate=args.rate, errors_per_cycle=2
        ),
        "intermittent": lambda: TemporalFaultProcess.intermittent(
            rate=args.rate, burst_length=args.burst_length, errors_per_cycle=3
        ),
        "permanent": lambda: TemporalFaultProcess.stuck_at(rate=args.rate / 10),
    }
    if args.processes:
        processes = [process_factories[name]() for name in args.processes]
    else:
        processes = list(default_processes())
    policies = (
        permanent_policy(),
        self_healing_policy(heartbeat_decay=args.decay),
    )
    runtime = _runtime_from_args(args)
    incomplete = None
    if runtime is None:
        points = lifecycle_sweep(
            processes,
            policies,
            jobs=args.jobs,
            n_instructions=args.instructions,
            rows=args.rows,
            cols=args.cols,
            seed=args.seed,
            backend=args.backend,
            grid_engine=args.grid_engine,
        )
    else:
        from repro.experiments.lifecycle import lifecycle_sweep_resilient

        outcome = lifecycle_sweep_resilient(
            runtime,
            processes,
            policies,
            jobs=args.jobs,
            n_instructions=args.instructions,
            rows=args.rows,
            cols=args.cols,
            seed=args.seed,
            backend=args.backend,
            grid_engine=args.grid_engine,
        )
        _emit_resilience_note(outcome)
        points = [p for p in outcome.results if p is not None]
        if not outcome.complete:
            incomplete = outcome
    print(
        f"Cell health lifecycle sweep ({args.rows}x{args.cols} grid, "
        f"{args.jobs} jobs x {args.instructions} instructions, "
        f"seed {args.seed})"
    )
    print(lifecycle_table_text(points))
    if incomplete is not None:
        print()
        print(_incomplete_banner(incomplete))
        return EXIT_INCOMPLETE
    return 0


def _cmd_chaos_exec(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf.chaos_exec import chaos_exec_report, run_chaos_suite

    outcomes = run_chaos_suite(
        modes=tuple(args.modes),
        workdir=Path(args.workdir) if args.workdir else None,
        seed=args.seed,
        chunk_size=args.chunk_size,
        timeout=args.timeout,
        echo=lambda line: print(line, file=sys.stderr),
    )
    print(chaos_exec_report(outcomes))
    failed = [
        o.mode for o in outcomes if not (o.recovered and o.byte_identical)
    ]
    print(
        f"{len(outcomes)} fault mode(s) injected, {len(failed)} violated "
        f"the recovery invariants"
    )
    if failed:
        print(f"violated: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import CampaignService, ServiceConfig

    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_budget=args.cache_budget,
        max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        chunk_size=args.chunk_size,
        chunk_timeout=args.chunk_timeout,
        job_timeout=args.job_timeout,
        default_deadline=args.default_deadline,
        drain_grace=args.drain_grace,
        verbose=args.verbose,
    )
    return CampaignService(config).serve()


def _cmd_service_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.chaos import (
        run_service_chaos_suite,
        service_chaos_report,
    )

    outcomes = run_service_chaos_suite(
        modes=tuple(args.modes),
        workdir=Path(args.workdir) if args.workdir else None,
        seed=args.seed,
        timeout=args.timeout,
        echo=lambda line: print(line, file=sys.stderr),
    )
    print(service_chaos_report(outcomes))
    failed = [o.mode for o in outcomes if not o.survived]
    print(
        f"{len(outcomes)} fault mode(s) injected, {len(failed)} violated "
        f"the service invariants"
    )
    if failed:
        print(f"violated: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.bench import run_benchmarks

    out_dir = Path(args.out) if args.out else None
    runs = run_benchmarks(
        filter_glob=args.filter,
        smoke=args.smoke,
        out_dir=out_dir,
        seed=args.seed,
        timeout=args.timeout,
        echo=print,
    )
    if not runs:
        print(f"no benchmarks match {args.filter!r}", file=sys.stderr)
        return 1
    failed = [run.name for run in runs if not run.passed]
    total = sum(run.wall_clock for run in runs)
    print(
        f"{len(runs)} benchmark(s), {len(failed)} failed, "
        f"{total:.1f}s total"
    )
    if failed:
        print(f"failed: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.compare import compare_paths

    def parse_specs(specs: List[str], flag: str) -> Dict[str, float]:
        parsed: Dict[str, float] = {}
        for spec in specs or []:
            try:
                pattern, _, ratio = spec.partition("=")
                parsed[pattern] = float(ratio)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"bad {flag} spec {spec!r}; expected GLOB=RATIO"
                ) from None
        return parsed

    thresholds = parse_specs(args.threshold_for, "--threshold-for")
    speedup_floors = parse_specs(args.speedup_floor, "--speedup-floor")
    comparisons, warnings, errors = compare_paths(
        Path(args.baseline),
        Path(args.current),
        only=args.only,
        threshold=args.threshold,
        thresholds=thresholds or None,
        min_time=args.min_time,
        speedup_floors=speedup_floors or None,
        require_complete=args.require_complete,
    )
    for comparison in comparisons:
        print(comparison.table_text())
        print()
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    regressions = [d for c in comparisons for d in c.regressions]
    improvements = [d for c in comparisons for d in c.improvements]
    print(
        f"{len(comparisons)} benchmark(s) compared: "
        f"{len(regressions)} regression(s), "
        f"{len(improvements)} improvement(s)"
    )
    for delta in regressions:
        print(
            f"REGRESSION: {delta.name} {delta.ratio:.2f}x "
            f"(limit {delta.threshold:.2f}x)",
            file=sys.stderr,
        )
    return 1 if (regressions or errors or not comparisons) else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.obs.manifest import load_manifest

    manifest = load_manifest(args.manifest_path)
    argv = list(manifest["argv"])
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as tmp:
        replay_manifest_path = str(Path(tmp) / "replay_manifest.json")
        status = main(argv + ["--manifest", replay_manifest_path])
        replayed = load_manifest(replay_manifest_path)
    matches = replayed["output_sha256"] == manifest["output_sha256"]
    same_status = status == manifest["exit_status"]
    if matches and same_status:
        print(
            f"replay OK: output byte-identical to manifest "
            f"(sha256 {manifest['output_sha256'][:16]}..., "
            f"{manifest['output_bytes']} bytes)",
            file=sys.stderr,
        )
        return 0
    if not matches:
        print(
            f"replay MISMATCH: manifest sha256 "
            f"{manifest['output_sha256'][:16]}... "
            f"({manifest['output_bytes']} bytes) vs replayed "
            f"{replayed['output_sha256'][:16]}... "
            f"({replayed['output_bytes']} bytes)",
            file=sys.stderr,
        )
    if not same_status:
        print(
            f"replay MISMATCH: exit status {status} vs recorded "
            f"{manifest['exit_status']}",
            file=sys.stderr,
        )
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import build_report

    report = build_report(quick=args.quick, seed=args.seed, jobs=args.jobs)
    print(report, end="")
    if args.out:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.out, report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nanobox-repro",
        description="Recursive NanoBox Processor Grid reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the ISA table").set_defaults(
        fn=_cmd_table1
    )
    sub.add_parser(
        "table2", help="print variants and fault-site counts"
    ).set_defaults(fn=_cmd_table2)
    sub.add_parser("area", help="print the area-overhead table").set_defaults(
        fn=_cmd_area
    )

    fit = sub.add_parser("fit", help="percent -> FIT translation")
    fit.add_argument("--variant", default="aluss")
    fit.set_defaults(fn=_cmd_fit)

    describe = sub.add_parser("describe", help="show a variant's hierarchy")
    describe.add_argument("variant")
    describe.set_defaults(fn=_cmd_describe)

    sweep = sub.add_parser("sweep", help="regenerate Figure 7, 8, or 9")
    sweep.add_argument("--figure", type=int, choices=(7, 8, 9), default=7)
    sweep.add_argument("--trials", type=int, default=5,
                       help="trials per workload (paper: 5)")
    sweep.add_argument("--quick", action="store_true")
    sweep.add_argument("--chart", action="store_true",
                       help="render as an ASCII chart instead of a table")
    sweep.add_argument("--json", default=None,
                       help="also write a JSON export to this path")
    sweep.add_argument("--seed", type=int, default=2004)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="campaign worker processes (1 = serial; "
                            "any value gives identical output)")
    _add_observability_args(sweep)
    _add_resilience_args(sweep)
    _add_backend_arg(sweep)
    sweep.set_defaults(fn=_cmd_sweep)

    grid = sub.add_parser("grid", help="run a full-system image job")
    grid.add_argument("--rows", type=int, default=4)
    grid.add_argument("--cols", type=int, default=4)
    grid.add_argument("--scheme", default="tmr",
                      help="cell ALU LUT coding scheme")
    grid.add_argument("--workload", default="reverse_video",
                      choices=("reverse_video", "hue_shift",
                               "brightness_boost", "threshold_mask"))
    grid.add_argument("--image-size", type=int, default=8)
    grid.add_argument("--fault-percent", type=float, default=0.0)
    grid.add_argument("--kill", type=_parse_kill, action="append",
                      metavar="ROW,COL@CYCLE")
    grid.add_argument("--adaptive", action="store_true",
                      help="route around dead cells")
    grid.add_argument("--rounds", type=int, default=3)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--show-grid", action="store_true",
                      help="render the final fabric state")
    _add_observability_args(grid)
    _add_resilience_args(grid)
    _add_backend_arg(grid)
    _add_grid_engine_arg(grid)
    grid.set_defaults(fn=_cmd_grid)

    yld = sub.add_parser("yield", help="manufacturing-yield table")
    yld.add_argument("--variants", nargs="+",
                     default=["alunn", "aluns"])
    yld.add_argument("--density", type=float, nargs="+",
                     default=[1e-3])
    yld.add_argument("--parts", type=int, default=10)
    yld.add_argument("--seed", type=int, default=0)
    yld.set_defaults(fn=_cmd_yield)

    analyze = sub.add_parser("analyze",
                             help="closed-form budgets and horizons")
    analyze.add_argument("--target", type=float, default=98.0,
                         help="target percent-correct")
    analyze.add_argument("--fault-percent", type=float, default=1.0,
                         help="operating injected-fault percentage")
    analyze.add_argument("--threshold", type=int, default=8,
                         help="watchdog error threshold")
    analyze.set_defaults(fn=_cmd_analyze)

    chaos = sub.add_parser(
        "chaos", help="link-fault chaos sweep of the transport fabric"
    )
    chaos.add_argument("--rates", type=float, nargs="+",
                       default=[0.0, 0.001, 0.003, 0.01],
                       help="link bit-flip rates to sweep")
    chaos.add_argument("--rounds", type=int, nargs="+", default=[1, 3],
                       help="retransmit budgets (submission rounds) to sweep")
    chaos.add_argument("--drop-rate", type=float, default=0.0,
                       help="whole-packet drop probability per link")
    chaos.add_argument("--stall-rate", type=float, default=0.0,
                       help="per-cycle link stall probability")
    chaos.add_argument("--rows", type=int, default=3)
    chaos.add_argument("--cols", type=int, default=3)
    chaos.add_argument("--instructions", type=int, default=48)
    chaos.add_argument("--seed", type=int, default=2004)
    _add_observability_args(chaos)
    _add_resilience_args(chaos)
    _add_backend_arg(chaos)
    _add_grid_engine_arg(chaos)
    chaos.set_defaults(fn=_cmd_chaos)

    chaos_exec = sub.add_parser(
        "chaos-exec",
        help="process-level chaos harness: inject crashes, hangs, and "
             "corruption into real child runs; assert recovery invariants",
    )
    chaos_exec.add_argument(
        "--modes", nargs="+",
        # mirrors repro.perf.chaos_exec.CHAOS_MODES (kept literal so the
        # parser builds without importing the perf package)
        choices=("kill", "hang", "corrupt", "disk-full", "deadline"),
        default=["kill", "hang", "corrupt", "disk-full", "deadline"],
        help="fault modes to inject (default: all)",
    )
    chaos_exec.add_argument("--workdir", default=None, metavar="DIR",
                            help="working directory for child runs "
                                 "(default: a fresh temp directory)")
    chaos_exec.add_argument("--seed", type=int, default=2004,
                            help="seed for the target sweep")
    chaos_exec.add_argument("--chunk-size", type=int, default=4,
                            help="checkpoint chunk size for the target")
    chaos_exec.add_argument("--timeout", type=float, default=300.0,
                            help="per-child wall-clock ceiling in seconds")
    chaos_exec.set_defaults(fn=_cmd_chaos_exec)

    serve = sub.add_parser(
        "serve",
        help="long-running HTTP job service: POST sweeps/grids/chaos/"
             "lifecycle runs, cached + crash-safe",
    )
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="service identity: journal, result cache, and "
                            "checkpoints live here across restarts")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port, reported on stdout")
    serve.add_argument("--workers", type=int, default=2,
                       help="supervised worker threads (one child job each)")
    serve.add_argument("--queue-capacity", type=int, default=16,
                       help="bounded admission depth; beyond it submissions "
                            "are shed with 429 + Retry-After")
    serve.add_argument("--cache-budget", type=int, default=None,
                       metavar="BYTES",
                       help="result-cache byte budget (LRU eviction beyond "
                            "it; default: unbounded)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="execution attempts per job before it fails")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive same-kind failures that trip the "
                            "job-class circuit breaker")
    serve.add_argument("--chunk-size", type=int, default=4,
                       help="checkpoint chunk size passed to job children")
    serve.add_argument("--chunk-timeout", type=float, default=None,
                       help="per-chunk hang budget passed to job children")
    serve.add_argument("--job-timeout", type=float, default=900.0,
                       help="wall-clock ceiling per job child")
    serve.add_argument("--default-deadline", type=float, default=None,
                       help="deadline applied to jobs that do not set one")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="seconds running jobs get to finish on SIGTERM "
                            "before a checkpoint-flushing interrupt")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(fn=_cmd_serve)

    service_chaos = sub.add_parser(
        "service-chaos",
        help="service-level chaos harness: overload, duplicate storms, "
             "SIGTERM and kill -9 against a real server; assert the "
             "service invariants",
    )
    service_chaos.add_argument(
        "--modes", nargs="+",
        # mirrors repro.service.chaos.SERVICE_CHAOS_MODES (kept literal so
        # the parser builds without importing the service package)
        choices=("overload", "dup-storm", "sigterm", "kill9", "tamper"),
        default=["overload", "dup-storm", "sigterm", "kill9", "tamper"],
        help="fault modes to inject (default: all)",
    )
    service_chaos.add_argument("--workdir", default=None, metavar="DIR",
                               help="working directory for server state "
                                    "(default: a fresh temp directory)")
    service_chaos.add_argument("--seed", type=int, default=2004,
                               help="seed for the target jobs")
    service_chaos.add_argument("--timeout", type=float, default=300.0,
                               help="per-child wall-clock ceiling in seconds")
    service_chaos.set_defaults(fn=_cmd_service_chaos)

    lifecycle = sub.add_parser(
        "lifecycle",
        help="self-healing sweep: fault processes x lifecycle policies",
    )
    lifecycle.add_argument("--processes", nargs="+", default=None,
                           choices=("transient", "intermittent", "permanent"),
                           help="temporal fault processes to sweep "
                                "(default: one of each class)")
    lifecycle.add_argument("--rate", type=float, default=0.0015,
                           help="per-cell per-cycle fault onset rate "
                                "(stuck-at uses rate/10)")
    lifecycle.add_argument("--burst-length", type=int, default=5,
                           help="cycles per intermittent burst")
    lifecycle.add_argument("--decay", type=float, default=0.1,
                           help="self-healing heartbeat score decay per cycle")
    lifecycle.add_argument("--jobs", type=int, default=6,
                           help="jobs run back-to-back per point")
    lifecycle.add_argument("--instructions", type=int, default=96,
                           help="instructions per job")
    lifecycle.add_argument("--rows", type=int, default=4)
    lifecycle.add_argument("--cols", type=int, default=4)
    lifecycle.add_argument("--seed", type=int, default=2004)
    _add_observability_args(lifecycle)
    _add_resilience_args(lifecycle)
    _add_backend_arg(lifecycle)
    _add_grid_engine_arg(lifecycle)
    lifecycle.set_defaults(fn=_cmd_lifecycle)

    bench = sub.add_parser(
        "bench", help="benchmark telemetry: run scripts, compare artifacts"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run",
        help="run benchmarks/bench_*.py and emit BENCH_<name>.json "
             "artifacts",
    )
    bench_run.add_argument("--smoke", action="store_true",
                           help="export REPRO_BENCH_SMOKE=1: shrunken "
                                "workloads, CI-fast")
    bench_run.add_argument("--filter", default=None, metavar="GLOB",
                           help="only scripts whose name matches "
                                "(e.g. 'perf_*', 'bench_fig7*')")
    bench_run.add_argument("--out", default=None, metavar="DIR",
                           help="artifact directory "
                                "(default: results/bench)")
    bench_run.add_argument("--seed", type=int, default=None,
                           help="harness-level seed recorded in provenance")
    bench_run.add_argument("--timeout", type=float, default=900.0,
                           help="per-script wall-clock ceiling in seconds")
    bench_run.set_defaults(fn=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json artifacts (or directories); exits "
             "non-zero on regression",
    )
    bench_compare.add_argument("baseline",
                               help="baseline artifact file or directory")
    bench_compare.add_argument("current",
                               help="current artifact file or directory")
    bench_compare.add_argument("--only", default=None, metavar="GLOB",
                               help="restrict to benchmarks matching GLOB")
    bench_compare.add_argument("--threshold", type=float, default=1.5,
                               help="default regression ratio "
                                    "(current/baseline mean)")
    bench_compare.add_argument("--threshold-for", action="append",
                               default=[], metavar="GLOB=RATIO",
                               help="per-metric threshold override "
                                    "(repeatable, first match wins)")
    bench_compare.add_argument("--min-time", type=float, default=1e-3,
                               help="ignore timers under this many "
                                    "seconds in both runs (noise floor)")
    bench_compare.add_argument("--speedup-floor", action="append",
                               default=[], metavar="GLOB=RATIO",
                               help="minimum value for derived speedups in "
                                    "the CURRENT artifact (repeatable); a "
                                    "matching speedup below RATIO fails the "
                                    "comparison")
    bench_compare.add_argument("--require-complete", action="store_true",
                               help="fail (exit non-zero) when the current "
                                    "run is missing artifacts the baseline "
                                    "has, instead of warning")
    bench_compare.set_defaults(fn=_cmd_bench_compare)

    replay = sub.add_parser(
        "replay",
        help="re-run a recorded manifest and assert byte-identical output",
    )
    replay.add_argument("manifest_path", metavar="MANIFEST",
                        help="manifest written by --manifest")
    replay.set_defaults(fn=_cmd_replay)

    report = sub.add_parser("report", help="full EXPERIMENTS report")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--seed", type=int, default=2004)
    report.add_argument("--jobs", type=int, default=1,
                        help="campaign worker processes (1 = serial; "
                             "any value gives identical output)")
    report.add_argument("--out", default=None)
    _add_observability_args(report)
    report.set_defaults(fn=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    run_argv = list(argv) if argv is not None else list(sys.argv[1:])
    args = parser.parse_args(run_argv)
    args.run_argv = run_argv
    if hasattr(args, "obs_report"):
        return _run_with_observability(args)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    raise SystemExit(main())
