"""Content-addressed result cache with an LRU byte budget.

One cache entry is one completed job artifact -- the child CLI's exact
stdout bytes -- stored under its job cache key as two files written
through :mod:`repro.ioutil` atomic writes::

    <key>.bin    the artifact payload
    <key>.json   the commit record: schema, key, SHA-256, byte count

The **meta file is the commit point**: it is written *after* the
payload, so a crash between the two leaves an orphan payload the next
:meth:`ResultCache.put` simply overwrites, and a reader that finds no
meta reports a clean miss.  Every :meth:`ResultCache.get` re-derives
the payload digest and cross-checks the meta record; any mismatch --
truncation, a flipped bit, a foreign key -- quarantines both files
(renamed ``*.corrupt``) and reports a miss, the exact discipline
:class:`repro.perf.checkpoint.CheckpointStore` applies to chunk
records.  **A corrupt or partial artifact is never served.**

Capacity is a byte budget, not an entry count: after every put the
least-recently-used entries are evicted until the total payload size
fits (the entry just written is never the one evicted).  Recency
survives restarts approximately via payload mtimes; within a process
it is exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.ioutil import atomic_write_bytes, atomic_write_json, fsync_dir

__all__ = ["CacheStats", "ResultCache"]

_SCHEMA = "repro.service.cache"
_SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Accounting for one cache's lifetime (mirrored into service.*)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corruptions: int = 0
    corrupt_reasons: List[str] = field(default_factory=list)


class ResultCache:
    """Disk-backed artifact cache keyed by canonical config hash.

    Args:
        root: cache directory (created on demand).
        byte_budget: total payload bytes to retain; least-recently-used
            entries are evicted beyond it.  ``None`` disables eviction.
    """

    def __init__(
        self, root: Union[str, Path], byte_budget: Optional[int] = None
    ) -> None:
        if byte_budget is not None and byte_budget < 0:
            raise ValueError(f"byte_budget must be >= 0, got {byte_budget}")
        self._root = Path(root)
        self._budget = byte_budget
        self._stats = CacheStats()
        self._lock = threading.Lock()
        # key -> payload bytes; insertion order == recency (oldest first).
        self._recency: Dict[str, int] = {}
        self._rescan()

    @property
    def root(self) -> Path:
        return self._root

    @property
    def stats(self) -> CacheStats:
        return self._stats

    @property
    def byte_budget(self) -> Optional[int]:
        return self._budget

    def payload_path(self, key: str) -> Path:
        return self._root / f"{key}.bin"

    def meta_path(self, key: str) -> Path:
        return self._root / f"{key}.json"

    def keys(self) -> List[str]:
        """Cached keys, least-recently-used first."""
        with self._lock:
            return list(self._recency)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._recency.values())

    def _rescan(self) -> None:
        """Rebuild the recency index from disk (mtime order, oldest first).

        Runs at construction so a restarted server inherits the previous
        process's cache; validity is still checked lazily per ``get``.
        """
        if not self._root.is_dir():
            return
        entries: List[Tuple[float, str, int]] = []
        for meta in self._root.glob("*.json"):
            key = meta.stem
            payload = self.payload_path(key)
            try:
                stat = payload.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, key, stat.st_size))
        for _, key, size in sorted(entries):
            self._recency[key] = size

    def get(self, key: str) -> Optional[bytes]:
        """The cached artifact, or ``None`` -- never corrupt bytes.

        A present-but-invalid entry (missing payload, truncation, digest
        mismatch, foreign key) is quarantined (both files renamed
        ``*.corrupt``) and reported as a miss so the caller recomputes.
        """
        with self._lock:
            meta_path = self.meta_path(key)
            try:
                raw_meta = meta_path.read_text()
            except FileNotFoundError:
                self._stats.misses += 1
                return None
            except OSError as exc:
                self._quarantine(key, f"unreadable meta: {exc!r}")
                return None
            reason, payload = self._validate(key, raw_meta)
            if reason is not None:
                self._quarantine(key, reason)
                return None
            self._touch(key, len(payload))
            self._stats.hits += 1
            return payload

    def _validate(
        self, key: str, raw_meta: str
    ) -> Tuple[Optional[str], bytes]:
        try:
            meta = json.loads(raw_meta)
        except json.JSONDecodeError as exc:
            return f"undecodable meta (truncated?): {exc.msg}", b""
        if not isinstance(meta, dict):
            return "meta is not a record object", b""
        if meta.get("schema") != _SCHEMA:
            return f"foreign schema {meta.get('schema')!r}", b""
        if meta.get("schema_version") != _SCHEMA_VERSION:
            return (
                f"stale schema version {meta.get('schema_version')!r}", b""
            )
        if meta.get("key") != key:
            return f"key mismatch: record {meta.get('key')!r}", b""
        try:
            payload = self.payload_path(key).read_bytes()
        except OSError as exc:
            return f"unreadable payload: {exc!r}", b""
        if meta.get("bytes") != len(payload):
            return (
                f"payload size {len(payload)} != recorded "
                f"{meta.get('bytes')!r} (torn write?)", b""
            )
        digest = hashlib.sha256(payload).hexdigest()
        if meta.get("sha256") != digest:
            return "payload integrity failure (bit flip?)", b""
        return None, payload

    def put(self, key: str, payload: bytes, **extra) -> str:
        """Durably store one artifact; returns its SHA-256.

        Payload first, meta (the commit point) second, both atomic;
        then evict least-recently-used entries beyond the byte budget.
        ``extra`` keys are stored in the meta record verbatim (job kind,
        exit status ... informational only, never validated).
        """
        digest = hashlib.sha256(payload).hexdigest()
        with self._lock:
            self._root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(self.payload_path(key), payload)
            meta = {
                "schema": _SCHEMA,
                "schema_version": _SCHEMA_VERSION,
                "key": key,
                "bytes": len(payload),
                "sha256": digest,
            }
            meta.update(extra)
            atomic_write_json(self.meta_path(key), meta)
            self._touch(key, len(payload))
            self._stats.puts += 1
            self._evict(keep=key)
        return digest

    def _touch(self, key: str, size: int) -> None:
        self._recency.pop(key, None)
        self._recency[key] = size
        try:
            os.utime(self.payload_path(key))
        except OSError:
            pass

    def _evict(self, keep: str) -> None:
        """Drop LRU entries until the budget fits (never ``keep``)."""
        if self._budget is None:
            return
        total = sum(self._recency.values())
        for key in list(self._recency):
            if total <= self._budget:
                break
            if key == keep:
                continue
            total -= self._recency.pop(key)
            for path in (self.payload_path(key), self.meta_path(key)):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._stats.evictions += 1
        fsync_dir(self._root)

    def _quarantine(self, key: str, reason: str) -> None:
        """Move an invalid entry aside; account as corrupt + miss."""
        for path in (self.payload_path(key), self.meta_path(key)):
            if not path.exists():
                continue
            target = path.with_suffix(path.suffix + ".corrupt")
            serial = 0
            while target.exists():
                serial += 1
                target = path.with_suffix(path.suffix + f".corrupt{serial}")
            try:
                os.replace(str(path), str(target))
            except OSError:
                pass
        fsync_dir(self._root)
        self._recency.pop(key, None)
        self._stats.corruptions += 1
        self._stats.misses += 1
        self._stats.corrupt_reasons.append(f"{key}: {reason}")
