"""Job model: what the service runs, keyed the way checkpoints are.

A :class:`JobSpec` is a *validated, whitelisted* description of one
CLI-equivalent run -- kind (``sweep``/``grid``/``chaos``/``lifecycle``)
plus parameters.  The whitelist matters: the HTTP boundary must never
let a client smuggle arbitrary argv into a child process, so every
parameter is declared in :data:`PARAM_SPECS` with a type, an optional
value domain, and the exact flag it lowers to.  Anything else is a
validation error (HTTP 400), not a shell opportunity.

The **cache key** is the canonical :func:`repro.obs.provenance.
config_hash` of ``{"service-job": kind, "argv": spec.to_argv()}`` --
the same provenance discipline PR 5 gave artifacts and PR 6 gave
checkpoint run keys.  Because the argv is derived in a fixed parameter
order with defaults elided, two requests that mean the same run hash
identically regardless of JSON key order or explicit-vs-default
booleans, which is what makes result caching and single-flight
deduplication collapse them.

Resilience flags (checkpoint dir, resume, deadline) are deliberately
*not* part of the spec or its key: they change how a run executes, not
what it computes, exactly as the PR 7 backend seam is excluded from
checkpoint run keys.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.provenance import config_hash

__all__ = [
    "JOB_KINDS",
    "PARAM_SPECS",
    "JobRecord",
    "JobSpec",
    "JobState",
    "job_cache_key",
]

#: Job kinds the service accepts, in documentation order.  Each maps to
#: the CLI subcommand of the same name (all four are crash-safe: they
#: accept ``--checkpoint-dir/--resume/--deadline``).
JOB_KINDS = ("sweep", "grid", "chaos", "lifecycle")

_KILL_RE = re.compile(r"^\d+,\d+@\d+$")


def _int(minimum: Optional[int] = None, maximum: Optional[int] = None):
    def convert(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"expected an integer, got {value!r}")
        if minimum is not None and value < minimum:
            raise ValueError(f"must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            raise ValueError(f"must be <= {maximum}, got {value}")
        return value

    return convert


def _float(minimum: Optional[float] = None):
    def convert(value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"expected a number, got {value!r}")
        if minimum is not None and value < minimum:
            raise ValueError(f"must be >= {minimum}, got {value}")
        return float(value)

    return convert


def _bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def _choice(*allowed: str):
    def convert(value: Any) -> str:
        if value not in allowed:
            raise ValueError(f"expected one of {allowed}, got {value!r}")
        return str(value)

    return convert


def _list_of(item: Callable[[Any], Any], max_items: int = 32):
    def convert(value: Any) -> List[Any]:
        if not isinstance(value, (list, tuple)) or not value:
            raise ValueError(f"expected a non-empty list, got {value!r}")
        if len(value) > max_items:
            raise ValueError(f"at most {max_items} items, got {len(value)}")
        return [item(v) for v in value]

    return convert


def _kill_spec(value: Any) -> str:
    if not isinstance(value, str) or not _KILL_RE.match(value):
        raise ValueError(
            f"expected 'row,col@cycle' (e.g. '1,1@40'), got {value!r}"
        )
    return value


_BACKEND = _choice("scalar", "batched", "compiled", "auto")

#: ``kind -> (param -> (flag, converter, multivalue))``, in the fixed
#: order the canonical argv is assembled.  ``multivalue`` flags take a
#: list and lower to ``--flag v1 v2 ...``; boolean params lower to the
#: bare flag when true and nothing when false.
PARAM_SPECS: Dict[str, Dict[str, Tuple[str, Callable[[Any], Any], bool]]] = {
    "sweep": {
        "figure": ("--figure", _int(7, 9), False),
        "quick": ("--quick", _bool, False),
        "trials": ("--trials", _int(1, 100), False),
        "seed": ("--seed", _int(), False),
        "jobs": ("--jobs", _int(1, 64), False),
        "backend": ("--backend", _BACKEND, False),
    },
    "grid": {
        "rows": ("--rows", _int(1, 64), False),
        "cols": ("--cols", _int(1, 64), False),
        "scheme": ("--scheme", _choice(
            "none", "parity", "hamming", "hsiao", "tmr", "5mr", "7mr"
        ), False),
        "workload": ("--workload", _choice(
            "reverse_video", "hue_shift", "brightness_boost", "threshold_mask"
        ), False),
        "image_size": ("--image-size", _int(1, 64), False),
        "fault_percent": ("--fault-percent", _float(0.0), False),
        "kill": ("--kill", _kill_spec, True),
        "adaptive": ("--adaptive", _bool, False),
        "rounds": ("--rounds", _int(1, 100), False),
        "seed": ("--seed", _int(), False),
        "backend": ("--backend", _BACKEND, False),
    },
    "chaos": {
        "rates": ("--rates", _list_of(_float(0.0)), False),
        "rounds": ("--rounds", _list_of(_int(1, 16)), False),
        "drop_rate": ("--drop-rate", _float(0.0), False),
        "stall_rate": ("--stall-rate", _float(0.0), False),
        "rows": ("--rows", _int(1, 64), False),
        "cols": ("--cols", _int(1, 64), False),
        "instructions": ("--instructions", _int(1, 10000), False),
        "seed": ("--seed", _int(), False),
        "backend": ("--backend", _BACKEND, False),
    },
    "lifecycle": {
        "processes": ("--processes", _list_of(_choice(
            "transient", "intermittent", "permanent"
        )), False),
        "rate": ("--rate", _float(0.0), False),
        "burst_length": ("--burst-length", _int(1, 1000), False),
        "decay": ("--decay", _float(0.0), False),
        "jobs": ("--jobs", _int(1, 64), False),
        "instructions": ("--instructions", _int(1, 10000), False),
        "rows": ("--rows", _int(1, 64), False),
        "cols": ("--cols", _int(1, 64), False),
        "seed": ("--seed", _int(), False),
        "backend": ("--backend", _BACKEND, False),
    },
}

#: The ``--kill`` flag repeats per occurrence rather than taking a list.
_REPEATED_FLAGS = {"--kill"}


@dataclass(frozen=True)
class JobSpec:
    """One validated, cache-keyable job description.

    Build through :meth:`from_request` at the HTTP boundary (raises
    ``ValueError`` with a client-presentable message on anything off
    the whitelist); construct directly only from trusted code.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_request(
        cls, kind: Any, params: Optional[Mapping[str, Any]] = None
    ) -> "JobSpec":
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r}; valid kinds: {list(JOB_KINDS)}"
            )
        specs = PARAM_SPECS[kind]
        params = dict(params or {})
        normalized: List[Tuple[str, Any]] = []
        for name in specs:  # fixed declaration order => canonical argv
            if name not in params:
                continue
            _, convert, multivalue = specs[name]
            raw = params.pop(name)
            try:
                if multivalue:
                    value = _list_of(convert)(raw)
                else:
                    value = convert(raw)
            except ValueError as exc:
                raise ValueError(f"parameter {name!r}: {exc}") from None
            if value is False:
                continue  # an absent boolean flag, canonically
            if isinstance(value, list):
                value = tuple(value)
            normalized.append((name, value))
        if params:
            raise ValueError(
                f"unknown parameter(s) for {kind!r}: {sorted(params)}; "
                f"allowed: {sorted(specs)}"
            )
        return cls(kind=kind, params=tuple(normalized))

    def param_dict(self) -> Dict[str, Any]:
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.params
        }

    def to_argv(self) -> List[str]:
        """The exact child CLI argv this spec lowers to (canonical)."""
        argv: List[str] = [self.kind]
        specs = PARAM_SPECS[self.kind]
        for name, value in self.params:
            flag = specs[name][0]
            if value is True:
                argv.append(flag)
            elif isinstance(value, tuple):
                if flag in _REPEATED_FLAGS:
                    for item in value:
                        argv.extend((flag, _argv_str(item)))
                else:
                    argv.append(flag)
                    argv.extend(_argv_str(item) for item in value)
            else:
                argv.extend((flag, _argv_str(value)))
        return argv

    @property
    def cache_key(self) -> str:
        return job_cache_key(self)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.param_dict()}

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "JobSpec":
        return cls.from_request(
            document.get("kind"), document.get("params") or {}
        )


def _argv_str(value: Any) -> str:
    """Canonical string form of one argv value (floats via ``repr``-g)."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def job_cache_key(spec: JobSpec) -> str:
    """Content address of a job's result: canonical config hash.

    Derived from the canonical argv, so any two requests that lower to
    the same child command share one key -- the property the result
    cache, single-flight dedup, and checkpoint-directory sharing all
    rely on.
    """
    return config_hash({"service-job": spec.kind, "argv": spec.to_argv()})


class JobState:
    """The job lifecycle (string constants; journaled verbatim)::

        QUEUED ──► RUNNING ──► DONE       (artifact cached)
           │          │  ├───► PARTIAL    (deadline; artifact job-local)
           │          │  ├───► FAILED     (attempts exhausted / breaker)
           │          │  └───► QUEUED     (drain / worker death: requeued)
           └──────────┴──────► CANCELLED
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    PARTIAL = "partial"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job never leaves.
    TERMINAL = (DONE, PARTIAL, FAILED, CANCELLED)

    #: States the startup recovery scan re-enqueues.
    RESUMABLE = (QUEUED, RUNNING)


@dataclass
class JobRecord:
    """One job's full service-side history (journaled on every change).

    Timestamps are wall-clock (``time.time``) because they must stay
    meaningful across a server restart; everything latency-sensitive
    uses the manager's injected monotonic clock instead.
    """

    id: str
    spec: JobSpec
    cache_key: str
    state: str = JobState.QUEUED
    outcome: str = "fresh"  # "fresh" | "cached" | "resumed"
    attempts: int = 0
    deadline: Optional[float] = None
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    exit_status: Optional[int] = None
    error: Optional[str] = None
    result_bytes: Optional[int] = None
    result_sha256: Optional[str] = None
    incomplete: bool = False
    requeues: int = 0
    stderr_tail: str = ""

    def to_json(self) -> Dict[str, Any]:
        document = {
            "schema": "repro.service.job",
            "schema_version": 1,
            "id": self.id,
            "spec": self.spec.to_json(),
            "cache_key": self.cache_key,
            "state": self.state,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "deadline": self.deadline,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "exit_status": self.exit_status,
            "error": self.error,
            "result_bytes": self.result_bytes,
            "result_sha256": self.result_sha256,
            "incomplete": self.incomplete,
            "requeues": self.requeues,
            "stderr_tail": self.stderr_tail,
        }
        return document

    @classmethod
    def from_json(cls, document: Mapping[str, Any]) -> "JobRecord":
        spec = JobSpec.from_json(document["spec"])
        record = cls(
            id=str(document["id"]),
            spec=spec,
            cache_key=str(document.get("cache_key") or spec.cache_key),
        )
        for name in (
            "state", "outcome", "attempts", "deadline", "submitted_at",
            "started_at", "finished_at", "exit_status", "error",
            "result_bytes", "result_sha256", "incomplete", "requeues",
            "stderr_tail",
        ):
            if name in document:
                setattr(record, name, document[name])
        return record
