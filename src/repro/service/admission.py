"""Bounded admission: backpressure instead of unbounded memory.

The service's first line of overload defence is refusing work it cannot
hold.  :class:`AdmissionQueue` is a fixed-capacity FIFO guarded by a
condition variable; an :meth:`AdmissionQueue.offer` that finds the
queue full is **rejected immediately** with an honest ``Retry-After``
estimate rather than blocking the HTTP thread or growing a backlog.
The estimate is queue depth times a decaying average of recent job
durations divided by the worker count -- coarse, but it turns a thundering
herd into a spread-out retry schedule.

Draining is a queue state: once :meth:`AdmissionQueue.drain` is called
every further offer is rejected with ``reason="draining"`` (HTTP 503)
while workers keep taking what was already admitted.  This is the
"stop admitting, finish in-flight" half of graceful shutdown.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, TypeVar

__all__ = ["AdmissionDecision", "AdmissionQueue"]

T = TypeVar("T")


@dataclass(frozen=True)
class AdmissionDecision:
    """The admission verdict for one offered job.

    ``accepted`` jobs are in the queue; rejected ones carry the reason
    (``"overload"`` -> 429, ``"draining"`` -> 503) and a ``retry_after``
    hint in whole seconds.
    """

    accepted: bool
    reason: Optional[str] = None
    retry_after: Optional[int] = None
    depth: int = 0


class AdmissionQueue:
    """Fixed-capacity FIFO with load-shedding and drain semantics."""

    def __init__(self, capacity: int, workers: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._capacity = capacity
        self._workers = workers
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._draining = False
        # Decaying average of observed job durations, seeded with a
        # deliberately conservative guess so the very first Retry-After
        # is not zero.
        self._avg_duration = 5.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def draining(self) -> bool:
        return self._draining

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def has_room(self) -> bool:
        with self._lock:
            return not self._draining and len(self._items) < self._capacity

    def note_duration(self, seconds: float) -> None:
        """Feed one completed job's duration into the retry estimator."""
        with self._lock:
            self._avg_duration = 0.7 * self._avg_duration + 0.3 * max(
                0.1, seconds
            )

    def retry_after(self, extra_depth: int = 0) -> int:
        """Whole-second wait hint for a shed client (>= 1)."""
        with self._lock:
            depth = len(self._items) + extra_depth
            return max(
                1, math.ceil(depth * self._avg_duration / self._workers)
            )

    def offer(self, item: T) -> AdmissionDecision:
        """Admit one job or shed it -- never blocks, never grows unbounded."""
        with self._lock:
            if self._draining:
                return AdmissionDecision(
                    accepted=False,
                    reason="draining",
                    retry_after=max(
                        1,
                        math.ceil(
                            (len(self._items) + 1)
                            * self._avg_duration
                            / self._workers
                        ),
                    ),
                    depth=len(self._items),
                )
            if len(self._items) >= self._capacity:
                return AdmissionDecision(
                    accepted=False,
                    reason="overload",
                    retry_after=max(
                        1,
                        math.ceil(
                            (len(self._items) + 1)
                            * self._avg_duration
                            / self._workers
                        ),
                    ),
                    depth=len(self._items),
                )
            self._items.append(item)
            self._not_empty.notify()
            return AdmissionDecision(accepted=True, depth=len(self._items))

    def requeue(self, item: T) -> None:
        """Put a drained/supervised job back at the *front* of the queue.

        Requeues bypass the capacity check: the job was already admitted
        once, and dropping it now would turn recovery into data loss.
        """
        with self._lock:
            self._items.appendleft(item)
            self._not_empty.notify()

    def take(self, timeout: Optional[float] = None) -> Optional[T]:
        """Pop the oldest admitted job, waiting up to ``timeout``."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def remove(self, predicate: Callable[[T], bool]) -> List[T]:
        """Remove and return every queued item matching ``predicate``."""
        with self._lock:
            kept: Deque[T] = deque()
            removed: List[T] = []
            for item in self._items:
                (removed if predicate(item) else kept).append(item)
            self._items = kept
            return removed

    def drain(self) -> int:
        """Stop admitting; returns the depth still queued for workers."""
        with self._lock:
            self._draining = True
            self._not_empty.notify_all()
            return len(self._items)
