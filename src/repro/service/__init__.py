"""Campaign-as-a-service: an overload-tolerant HTTP job runtime.

The paper builds a reliable grid out of unreliable cells by layering
defect tolerance at every level; this package applies the same
philosophy one level up, at the process/service tier.  A long-running
stdlib-only HTTP front end (:mod:`repro.service.server`) accepts
sweep/grid/chaos/lifecycle jobs and keeps the *service* degrading
gracefully the way a NanoBox cell does:

* **Bounded admission** (:mod:`repro.service.admission`): a fixed-size
  queue sheds load with ``429``/``503`` + ``Retry-After`` instead of
  growing without bound.
* **Content-addressed result cache** (:mod:`repro.service.cache`):
  completed artifacts live on disk keyed by the canonical
  ``config_hash`` of the job, verified by SHA-256 on every read so a
  corrupt or torn artifact is quarantined and recomputed, never served.
* **Single-flight deduplication** (:mod:`repro.service.runner`):
  N identical concurrent submissions collapse onto one computation.
* **Worker supervision**: jobs run as supervised child processes under
  the PR 6 crash-safe runtime (``--checkpoint-dir --resume``); a dead
  worker is requeued and resumed, a consecutively failing job class
  trips a circuit breaker.
* **Graceful drain**: SIGTERM stops admission, finishes or checkpoints
  in-flight jobs, and exits clean; a restarted server resumes them from
  its journal and checkpoint store.

``nanobox-repro service-chaos`` (:mod:`repro.service.chaos`) hammers a
real child server with overload bursts, duplicate storms, SIGTERM and
``kill -9`` and asserts the invariants above end to end.
"""

from repro.service.admission import AdmissionDecision, AdmissionQueue
from repro.service.cache import CacheStats, ResultCache
from repro.service.jobs import (
    JOB_KINDS,
    JobRecord,
    JobSpec,
    JobState,
    job_cache_key,
)
from repro.service.runner import ChildCliExecutor, JobManager, JobOutput
from repro.service.server import CampaignService, ServiceConfig

__all__ = [
    "JOB_KINDS",
    "AdmissionDecision",
    "AdmissionQueue",
    "CacheStats",
    "CampaignService",
    "ChildCliExecutor",
    "JobManager",
    "JobOutput",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ResultCache",
    "ServiceConfig",
    "job_cache_key",
]
