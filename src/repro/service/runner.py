"""Supervised job execution: single-flight, retries, breaker, drain.

:class:`JobManager` is the service's engine room, deliberately free of
any HTTP so the concurrency invariants are testable in-process:

* **Single-flight dedup.**  Submission checks the result cache, then an
  in-flight index keyed by the job's canonical cache key: N identical
  concurrent submissions yield one computation -- later ones attach to
  the running job, and once it completes they hit the cache.  K
  identical + M distinct submissions perform exactly M+1 computations
  under *any* interleaving (property-tested).
* **Worker supervision.**  Jobs execute through an injected executor
  (production: :class:`ChildCliExecutor`, a real ``nanobox-repro``
  child under the PR 6 crash-safe runtime).  A worker that dies by
  signal or wedges past its timeout is counted, and the job retried --
  its checkpoints make the retry a cheap resume.  A job class failing
  ``breaker_threshold`` consecutive times trips a circuit breaker:
  further jobs of that class get a single fast-fail attempt until one
  succeeds (the same half-open policy as
  :class:`repro.perf.resilient.ResilientRunner`).
* **Deadlines and cancellation.**  A per-job deadline rides into the
  child as ``--deadline`` and reuses the resilient runner's machinery
  wholesale: expiry yields the explicit partial report (exit 3), which
  the service surfaces as a ``partial`` job whose artifact is served
  but *never cached*.  Cancelling a running job interrupts the child
  (SIGINT -> checkpoint flush) exactly like Ctrl-C.
* **Graceful drain.**  :meth:`JobManager.drain` stops workers taking
  new work, gives running jobs a grace period, then interrupts them and
  requeues -- every non-terminal job is journaled, so a restarted
  manager (same state directory) re-enqueues them and their checkpoints
  turn the re-run into a resume with byte-identical output.

Every state transition is journaled to ``<state_dir>/jobs/<id>.json``
via atomic writes; the journal plus the checkpoint store is the entire
recovery story after ``kill -9``.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.perf.checkpoint import scan_run_states
from repro.service.admission import AdmissionQueue
from repro.service.cache import ResultCache
from repro.service.jobs import JobRecord, JobSpec, JobState

__all__ = [
    "EXIT_INCOMPLETE",
    "ChildCliExecutor",
    "JobManager",
    "JobOutput",
    "SubmitResult",
]

#: The CLI's well-formed-partial exit status (deadline / dead letters).
EXIT_INCOMPLETE = 3

_STDERR_TAIL = 2000


@dataclass(frozen=True)
class JobOutput:
    """One execution attempt's observable outcome.

    ``exit_status`` follows ``subprocess`` conventions: negative means
    killed by that signal number (worker death), ``EXIT_INCOMPLETE``
    means an explicit partial report, zero a complete artifact.
    """

    stdout: bytes
    stderr: str = ""
    exit_status: int = 0


@dataclass(frozen=True)
class SubmitResult:
    """What one submission got: a job, a cached artifact, or shed."""

    status: str  # queued | cached | deduplicated | rejected-overload
    #              | rejected-draining
    record: Optional[JobRecord] = None
    retry_after: Optional[int] = None

    @property
    def accepted(self) -> bool:
        return self.record is not None


class ChildCliExecutor:
    """Runs one job as a real ``nanobox-repro`` child process.

    The child always gets ``--checkpoint-dir <root>/<cache_key>
    --resume``: a first attempt finds no records and computes, any
    retry/restart resumes from whatever chunks survived, and stdout is
    byte-identical either way (the PR 6 guarantee).  The child's pid is
    journaled to ``<job_dir>/child.pid`` so a supervisor -- or the
    chaos harness simulating power loss -- can find it.
    """

    def __init__(
        self,
        chunk_size: int = 4,
        job_timeout: float = 900.0,
        chunk_timeout: Optional[float] = None,
    ) -> None:
        self._chunk_size = chunk_size
        self._job_timeout = job_timeout
        self._chunk_timeout = chunk_timeout
        self._children: Dict[str, subprocess.Popen] = {}
        self._lock = threading.Lock()

    def _argv(self, record: JobRecord, checkpoint_dir: Path) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            *record.spec.to_argv(),
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--resume",
            "--checkpoint-chunk-size",
            str(self._chunk_size),
        ]
        if self._chunk_timeout is not None:
            argv.extend(("--chunk-timeout", str(self._chunk_timeout)))
        if record.deadline is not None:
            argv.extend(("--deadline", str(record.deadline)))
        return argv

    @staticmethod
    def _child_env() -> Dict[str, str]:
        env = {
            key: value
            for key, value in os.environ.items()
            if not key.startswith("REPRO_CHAOS_")
        }
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else src
        )
        return env

    def run(
        self, record: JobRecord, job_dir: Path, checkpoint_dir: Path
    ) -> JobOutput:
        job_dir.mkdir(parents=True, exist_ok=True)
        proc = subprocess.Popen(
            self._argv(record, checkpoint_dir),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=self._child_env(),
        )
        with self._lock:
            self._children[record.id] = proc
        try:
            atomic_write_text(job_dir / "child.pid", f"{proc.pid}\n")
        except OSError:
            pass
        try:
            stdout, stderr = proc.communicate(timeout=self._job_timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            stdout, stderr = proc.communicate()
            stderr = (stderr or b"") + (
                f"\nservice: child exceeded job timeout "
                f"{self._job_timeout}s and was killed\n".encode()
            )
        finally:
            with self._lock:
                self._children.pop(record.id, None)
        return JobOutput(
            stdout=stdout or b"",
            stderr=(stderr or b"").decode("utf-8", "replace"),
            exit_status=proc.returncode,
        )

    def interrupt(self, job_id: str) -> bool:
        """SIGINT a running child (checkpoint-flushing cancellation)."""
        with self._lock:
            proc = self._children.get(job_id)
        if proc is None or proc.poll() is not None:
            return False
        try:
            proc.send_signal(signal.SIGINT)
        except OSError:
            return False
        return True

    def living_children(self) -> List[int]:
        """Pids of children still running (drain's no-orphan check)."""
        with self._lock:
            return [
                proc.pid
                for proc in self._children.values()
                if proc.poll() is None
            ]


class JobManager:
    """The HTTP-free service core: admission -> supervision -> cache.

    Args:
        state_dir: root for the journal (``jobs/``), result cache
            (``cache/``) and checkpoint store (``checkpoints/``); one
            directory is one service identity across restarts.
        execute: executor with ``run(record, job_dir, checkpoint_dir)``
            and optionally ``interrupt(job_id)`` /
            ``living_children()``; default is a :class:`ChildCliExecutor`.
        workers: supervised worker thread count.
        queue_capacity: bounded admission depth (beyond it: shed).
        cache_budget: result-cache byte budget (None: unbounded).
        max_attempts: execution attempts per job before it fails.
        breaker_threshold: consecutive same-kind failures that trip the
            class circuit breaker.
        metrics: the service :class:`MetricsRegistry` (owns one by
            default); all ``service.*`` instruments land here.
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        execute=None,
        workers: int = 2,
        queue_capacity: int = 16,
        cache_budget: Optional[int] = None,
        max_attempts: int = 3,
        breaker_threshold: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._state_dir = Path(state_dir)
        self._jobs_dir = self._state_dir / "jobs"
        self._checkpoint_root = self._state_dir / "checkpoints"
        self._execute = (
            execute if execute is not None else ChildCliExecutor()
        )
        self._workers_n = workers
        self._max_attempts = max_attempts
        self._breaker_threshold = breaker_threshold
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._wall_clock = wall_clock
        self._poll = poll_interval
        self.cache = ResultCache(
            self._state_dir / "cache", byte_budget=cache_budget
        )
        self.queue = AdmissionQueue(queue_capacity, workers=workers)
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}  # cache_key -> job id
        self._job_metrics: Dict[str, MetricsRegistry] = {}
        self._running: Dict[str, float] = {}  # job id -> start (monotonic)
        self._cancel_requested: set = set()
        self._breaker_failures: Dict[str, int] = {}
        self._breaker_open: Dict[str, bool] = {}
        self._seq = 0
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = False
        self._recover()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spin up the supervised worker threads."""
        for index in range(self._workers_n):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, grace: float = 30.0) -> Dict[str, int]:
        """Stop admitting, finish or checkpoint in-flight jobs, stop.

        Running jobs get ``grace`` seconds to complete; survivors are
        interrupted (their children flush checkpoints on SIGINT) and
        requeued, so a restarted manager resumes them.  Returns a
        summary: jobs finished during the grace window, jobs requeued,
        jobs left queued for the next incarnation.
        """
        self._draining = True
        queued_left = self.queue.drain()
        self.metrics.counter("service.drains").inc()
        deadline = self._clock() + max(0.0, grace)
        while self._running_ids() and self._clock() < deadline:
            time.sleep(self._poll)
        interrupted = list(self._running_ids())
        for job_id in interrupted:
            self._interrupt_child(job_id)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._threads = []
        leftover = self._execute_living_children()
        for pid in leftover:  # pragma: no cover - defensive
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        with self._lock:
            requeued = sum(
                1
                for record in self._records.values()
                if record.state == JobState.QUEUED and record.requeues
            )
        return {
            "queued_left": queued_left,
            "interrupted": len(interrupted),
            "requeued": requeued,
            "orphans_killed": len(leftover),
        }

    def _running_ids(self) -> List[str]:
        with self._lock:
            return list(self._running)

    def _interrupt_child(self, job_id: str) -> None:
        interrupt = getattr(self._execute, "interrupt", None)
        if interrupt is not None:
            interrupt(job_id)

    def _execute_living_children(self) -> List[int]:
        living = getattr(self._execute, "living_children", None)
        return list(living()) if living is not None else []

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Reload the journal; requeue every non-terminal job in order."""
        if not self._jobs_dir.is_dir():
            return
        recovered: List[JobRecord] = []
        for path in sorted(self._jobs_dir.glob("*.json")):
            try:
                import json

                record = JobRecord.from_json(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError):
                continue  # an unreadable journal entry is not a job
            self._records[record.id] = record
            if record.id.startswith("j") and record.id[1:].isdigit():
                self._seq = max(self._seq, int(record.id[1:]))
            recovered.append(record)
        resumable = [
            record
            for record in recovered
            if record.state in JobState.RESUMABLE
        ]
        for record in resumable:
            record.state = JobState.QUEUED
            record.outcome = "resumed"
            record.requeues += 1
            self._journal(record)
            self._inflight[record.cache_key] = record.id
            self.metrics.counter("service.jobs_recovered").inc()
        # requeue() stacks at the front, so walk newest-first to leave
        # the queue in original submission order.
        for record in sorted(resumable, key=lambda r: r.id, reverse=True):
            self.queue.requeue(record)

    # -- submission ----------------------------------------------------

    def submit(
        self, spec: JobSpec, deadline: Optional[float] = None
    ) -> SubmitResult:
        """Admit one job: cache hit, single-flight attach, queue, or shed."""
        key = spec.cache_key
        with self._lock:
            cached = self.cache.get(key)
            if cached is not None:
                record = self._new_record(spec, deadline=None)
                record.state = JobState.DONE
                record.outcome = "cached"
                record.result_bytes = len(cached)
                record.result_sha256 = hashlib.sha256(cached).hexdigest()
                record.finished_at = self._wall_clock()
                self._records[record.id] = record
                self._journal(record)
                self.metrics.counter("service.jobs_cached").inc()
                self._sync_cache_counters()
                return SubmitResult(status="cached", record=record)
            inflight_id = self._inflight.get(key)
            if inflight_id is not None:
                existing = self._records.get(inflight_id)
                if existing is not None and existing.state not in (
                    JobState.TERMINAL
                ):
                    self.metrics.counter("service.jobs_deduplicated").inc()
                    return SubmitResult(
                        status="deduplicated", record=existing
                    )
            record = self._new_record(spec, deadline=deadline)
            decision = self.queue.offer(record)
            if not decision.accepted:
                self.metrics.counter(
                    f"service.admission_shed_{decision.reason}"
                ).inc()
                self._seq -= 1  # id never materialised
                return SubmitResult(
                    status=f"rejected-{decision.reason}",
                    retry_after=decision.retry_after,
                )
            self._records[record.id] = record
            self._inflight[key] = record.id
            self._journal(record)
            self.metrics.counter("service.jobs_submitted").inc()
            return SubmitResult(status="queued", record=record)

    def _new_record(
        self, spec: JobSpec, deadline: Optional[float]
    ) -> JobRecord:
        self._seq += 1
        return JobRecord(
            id=f"j{self._seq:06d}",
            spec=spec,
            cache_key=spec.cache_key,
            deadline=deadline,
            submitted_at=self._wall_clock(),
        )

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.id)

    def job_dir(self, job_id: str) -> Path:
        return self._jobs_dir / job_id

    def checkpoint_dir(self, cache_key: str) -> Path:
        return self._checkpoint_root / cache_key

    def progress(self, record: JobRecord) -> Dict[str, Any]:
        """Chunk-level progress from the job's checkpoint run states."""
        states = scan_run_states(self.checkpoint_dir(record.cache_key))
        completed = sum(int(s.get("completed_chunks") or 0) for s in states)
        total = sum(int(s.get("total_chunks") or 0) for s in states)
        return {
            "completed_chunks": completed,
            "total_chunks": total,
            "runs": len(states),
        }

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The status document: record + progress + metrics snapshot."""
        record = self.get(job_id)
        if record is None:
            return None
        progress = self.progress(record)
        registry = self._job_registry(job_id)
        registry.gauge("service.job.attempts").set(record.attempts)
        registry.gauge("service.job.requeues").set(record.requeues)
        registry.gauge("service.job.completed_chunks").set(
            progress["completed_chunks"]
        )
        registry.gauge("service.job.total_chunks").set(
            progress["total_chunks"]
        )
        document = record.to_json()
        document["progress"] = progress
        document["metrics"] = registry.snapshot()
        return document

    def _job_registry(self, job_id: str) -> MetricsRegistry:
        with self._lock:
            return self._job_metrics.setdefault(job_id, MetricsRegistry())

    def result(self, job_id: str) -> Tuple[Optional[bytes], str]:
        """``(artifact, reason)``; artifact ``None`` when unavailable.

        Serves only verified bytes: done jobs come from the cache (which
        re-checks SHA-256 on read), partial jobs from the job-local
        artifact cross-checked against the journaled digest.
        """
        record = self.get(job_id)
        if record is None:
            return None, "not-found"
        if record.state in (JobState.QUEUED, JobState.RUNNING):
            return None, "not-ready"
        if record.state == JobState.DONE:
            payload = self.cache.get(record.cache_key)
            self._sync_cache_counters()
            if payload is None:
                return None, "evicted"
            return payload, "ok"
        if record.state == JobState.PARTIAL:
            path = self.job_dir(job_id) / "output.bin"
            try:
                payload = path.read_bytes()
            except OSError:
                return None, "evicted"
            if (
                record.result_sha256 is not None
                and hashlib.sha256(payload).hexdigest() != record.result_sha256
            ):
                return None, "corrupt"
            return payload, "partial"
        return None, record.state

    def service_snapshot(self) -> Dict[str, Any]:
        """The service registry snapshot (``/v1/metrics`` body)."""
        self._sync_cache_counters()
        self.metrics.gauge("service.queue_depth").set(self.queue.depth())
        self.metrics.gauge("service.cache_bytes").set(
            self.cache.total_bytes()
        )
        return self.metrics.snapshot()

    def _sync_cache_counters(self) -> None:
        stats = self.cache.stats
        for name, value in (
            ("service.cache_hits", stats.hits),
            ("service.cache_misses", stats.misses),
            ("service.cache_evictions", stats.evictions),
            ("service.cache_corruptions", stats.corruptions),
        ):
            counter = self.metrics.counter(name)
            if value > counter.value:
                counter.inc(value - counter.value)

    # -- cancellation --------------------------------------------------

    def cancel(self, job_id: str) -> Tuple[bool, str]:
        """Cancel a queued job outright or interrupt a running one."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return False, "not-found"
            if record.state in JobState.TERMINAL:
                return False, f"already {record.state}"
            if record.state == JobState.QUEUED:
                removed = self.queue.remove(lambda r: r.id == job_id)
                if removed:
                    self._finish(record, JobState.CANCELLED)
                    return True, "cancelled"
                # A worker picked it up between our check and the sweep.
            self._cancel_requested.add(job_id)
        self._interrupt_child(job_id)
        self.metrics.counter("service.cancel_requests").inc()
        return True, "cancelling"

    # -- the worker loop ----------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if self._draining:
                return
            record = self.queue.take(timeout=self._poll)
            if record is None:
                continue
            try:
                self._run_job(record)
            except Exception as exc:  # noqa: BLE001 - supervisor boundary
                # The supervisor itself must never die on a job.
                with self._lock:
                    record.error = f"internal: {exc!r}"
                    self._finish(record, JobState.FAILED)

    def _run_job(self, record: JobRecord) -> None:
        with self._lock:
            if record.id in self._cancel_requested:
                self._finish(record, JobState.CANCELLED)
                return
            record.state = JobState.RUNNING
            record.started_at = self._wall_clock()
            self._running[record.id] = self._clock()
            self._journal(record)
        breaker_open = self._breaker_open.get(record.spec.kind, False)
        attempts_allowed = 1 if breaker_open else self._max_attempts
        if breaker_open:
            self.metrics.counter("service.breaker_fast_fails").inc()
        try:
            self._attempt_loop(record, attempts_allowed)
        finally:
            with self._lock:
                self._running.pop(record.id, None)

    def _attempt_loop(self, record: JobRecord, attempts_allowed: int) -> None:
        last_output: Optional[JobOutput] = None
        while record.attempts < attempts_allowed:
            record.attempts += 1
            started = self._clock()
            self.metrics.counter("service.executions").inc()
            with self.metrics.time("service.job_run"):
                output = self._execute.run(
                    record,
                    self.job_dir(record.id),
                    self.checkpoint_dir(record.cache_key),
                )
            self.queue.note_duration(self._clock() - started)
            last_output = output
            record.exit_status = output.exit_status
            record.stderr_tail = output.stderr[-_STDERR_TAIL:]
            if self._settle_attempt(record, output):
                return
        # Attempts exhausted: the job failed, and its class inches the
        # breaker toward open.
        with self._lock:
            record.error = (
                f"failed after {record.attempts} attempt(s); last exit "
                f"{last_output.exit_status if last_output else '?'}"
            )
            self._finish(record, JobState.FAILED)
        self._note_class_failure(record.spec.kind)

    def _settle_attempt(self, record: JobRecord, output: JobOutput) -> bool:
        """Interpret one attempt; True when the job reached a final state."""
        cancelled = record.id in self._cancel_requested
        if output.exit_status == 0:
            sha = self.cache.put(
                record.cache_key,
                output.stdout,
                kind=record.spec.kind,
                job_id=record.id,
            )
            with self._lock:
                record.result_bytes = len(output.stdout)
                record.result_sha256 = sha
                self._finish(record, JobState.DONE)
            self._reset_class(record.spec.kind)
            self._sync_cache_counters()
            return True
        if output.exit_status == EXIT_INCOMPLETE:
            # The resilient runtime's explicit partial report: served,
            # never cached -- a later identical submission resumes from
            # the checkpoints and completes it.
            sha = hashlib.sha256(output.stdout).hexdigest()
            job_dir = self.job_dir(record.id)
            job_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(job_dir / "output.bin", output.stdout)
            with self._lock:
                record.result_bytes = len(output.stdout)
                record.result_sha256 = sha
                record.incomplete = True
                self._finish(record, JobState.PARTIAL)
            self._reset_class(record.spec.kind)
            self.metrics.counter("service.jobs_partial").inc()
            return True
        if cancelled:
            with self._lock:
                record.error = "cancelled by request"
                self._finish(record, JobState.CANCELLED)
            return True
        if self._draining:
            # Interrupted for shutdown: the child flushed checkpoints;
            # requeue so the next incarnation resumes it.
            with self._lock:
                record.state = JobState.QUEUED
                record.requeues += 1
                record.error = None
                self._journal(record)
                self.queue.requeue(record)
            self.metrics.counter("service.jobs_requeued").inc()
            return True
        if output.exit_status < 0:
            # The worker died under the job (OOM kill, segfault ...):
            # supervision retries, and the checkpoints make it a resume.
            self.metrics.counter("service.worker_restarts").inc()
        return False

    def _finish(self, record: JobRecord, state: str) -> None:
        """Terminal transition; caller holds the lock."""
        record.state = state
        record.finished_at = self._wall_clock()
        self._journal(record)
        if self._inflight.get(record.cache_key) == record.id:
            del self._inflight[record.cache_key]
        self._cancel_requested.discard(record.id)
        self.metrics.counter(
            {
                JobState.DONE: "service.jobs_completed",
                JobState.PARTIAL: "service.jobs_completed",
                JobState.FAILED: "service.jobs_failed",
                JobState.CANCELLED: "service.jobs_cancelled",
            }.get(state, "service.jobs_finished_other")
        ).inc()

    def _note_class_failure(self, kind: str) -> None:
        with self._lock:
            failures = self._breaker_failures.get(kind, 0) + 1
            self._breaker_failures[kind] = failures
            if (
                failures >= self._breaker_threshold
                and not self._breaker_open.get(kind, False)
            ):
                self._breaker_open[kind] = True
                self.metrics.counter("service.breaker_trips").inc()

    def _reset_class(self, kind: str) -> None:
        with self._lock:
            self._breaker_failures[kind] = 0
            self._breaker_open[kind] = False

    def _journal(self, record: JobRecord) -> None:
        try:
            self._jobs_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_json(
                self._jobs_dir / f"{record.id}.json", record.to_json()
            )
        except OSError:
            # A journal write failure degrades restart fidelity, never
            # the in-memory run (same policy as checkpoint saves).
            self.metrics.counter("service.journal_write_errors").inc()
