"""The stdlib HTTP front end: ``nanobox-repro serve``.

A :class:`CampaignService` wraps one :class:`repro.service.runner.
JobManager` in a ``ThreadingHTTPServer`` (stdlib only -- the repo adds
no dependencies for this tier).  The API surface:

========================== ===========================================
``POST /v1/jobs``          submit ``{"kind", "params", "deadline"}``;
                           202 queued, 200 cached/deduplicated,
                           429 overload / 503 draining + ``Retry-After``
``GET /v1/jobs``           list job records
``GET /v1/jobs/<id>``      status: record + checkpoint progress +
                           per-job ``MetricsRegistry`` snapshot
``GET /v1/jobs/<id>/result`` the artifact bytes (verified; partials
                           flagged ``X-Repro-Incomplete: 1``)
``POST /v1/jobs/<id>/cancel`` cancel queued / interrupt running
``GET /v1/metrics``        the ``service.*`` registry snapshot
``GET /healthz``           liveness (always 200 while the process runs)
``GET /readyz``            readiness (503 once draining)
========================== ===========================================

Shutdown discipline: SIGTERM or SIGINT flips the service into drain
mode -- admission refuses with 503, running children get a grace period
then a checkpoint-flushing interrupt, every non-terminal job stays
journaled -- and the process exits 0.  A restarted server on the same
state directory re-enqueues those jobs and their checkpoints make the
re-run a resume.

Stdout carries exactly one line (``service: listening on ...``) so
wrappers can parse the bound port; everything else goes to stderr,
keeping the artifact-bytes-on-stdout convention of the rest of the CLI.
"""

from __future__ import annotations

import json
import re
import signal
import sys
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import JobSpec
from repro.service.runner import ChildCliExecutor, JobManager

__all__ = ["CampaignService", "ServiceConfig"]

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)$")
_RESULT_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/result$")
_CANCEL_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)/cancel$")
_MAX_BODY = 1 << 20  # a job request is a small JSON document


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``serve`` needs to stand up one service instance."""

    state_dir: Union[str, Path]
    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, reported on stdout
    workers: int = 2
    queue_capacity: int = 16
    cache_budget: Optional[int] = None
    max_attempts: int = 3
    breaker_threshold: int = 3
    chunk_size: int = 4
    chunk_timeout: Optional[float] = None
    job_timeout: float = 900.0
    default_deadline: Optional[float] = None
    drain_grace: float = 30.0
    verbose: bool = False


class CampaignService:
    """One HTTP front end over one :class:`JobManager`.

    Args:
        config: the service configuration.
        execute: optional executor override (tests inject fakes); the
            default is a :class:`ChildCliExecutor` built from ``config``.
        metrics: optional shared :class:`MetricsRegistry`.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        execute=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        if execute is None:
            execute = ChildCliExecutor(
                chunk_size=config.chunk_size,
                job_timeout=config.job_timeout,
                chunk_timeout=config.chunk_timeout,
            )
        self.manager = JobManager(
            config.state_dir,
            execute=execute,
            workers=config.workers,
            queue_capacity=config.queue_capacity,
            cache_budget=config.cache_budget,
            max_attempts=config.max_attempts,
            breaker_threshold=config.breaker_threshold,
            metrics=metrics,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start workers and the HTTP thread; returns (host, port)."""
        service = self

        class Handler(_ServiceHandler):
            pass

        Handler.service = service
        httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        httpd.daemon_threads = True
        self._httpd = httpd
        self.manager.start()
        self._http_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-http",
            daemon=True,
        )
        self._http_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("service is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def request_shutdown(self) -> None:
        """Flag the blocking :meth:`serve` loop to drain and exit."""
        self._shutdown.set()

    def drain_and_stop(self, grace: Optional[float] = None) -> Dict[str, int]:
        """Drain the manager, then tear the HTTP listener down."""
        summary = self.manager.drain(
            self.config.drain_grace if grace is None else grace
        )
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
            self._http_thread = None
        return summary

    def serve(self) -> int:
        """Run until SIGTERM/SIGINT, drain gracefully, exit 0.

        The one stdout line announces the bound address; drain progress
        goes to stderr like every other operational note.
        """
        host, port = self.start()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: self._shutdown.set()
            )
        print(f"service: listening on http://{host}:{port}", flush=True)
        try:
            self._shutdown.wait()
            print(
                "service: draining (admission closed, checkpointing "
                "in-flight jobs)",
                file=sys.stderr,
                flush=True,
            )
            summary = self.drain_and_stop()
            print(
                "service: drained "
                f"(finished grace window, interrupted "
                f"{summary['interrupted']}, requeued {summary['requeued']}, "
                f"queued for restart {summary['queued_left']})",
                file=sys.stderr,
                flush=True,
            )
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 0


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the bound :class:`CampaignService`."""

    service: CampaignService  # bound by CampaignService.start
    protocol_version = "HTTP/1.1"
    server_version = "nanobox-repro-service/1"
    sys_version = ""

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.service.config.verbose:
            sys.stderr.write(
                f"service: {self.address_string()} {fmt % args}\n"
            )

    def _send_json(
        self,
        status: int,
        document: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(
        self, status: int, payload: bytes, headers: Dict[str, str]
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY:
            return None
        return self.rfile.read(length) if length else b""

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        manager = self.service.manager
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if path == "/readyz":
            if manager.draining:
                self._send_json(
                    503, {"status": "draining"}, {"Retry-After": "1"}
                )
            else:
                self._send_json(200, {"status": "ready"})
            return
        if path == "/v1/metrics":
            self._send_json(200, manager.service_snapshot())
            return
        if path == "/v1/jobs":
            self._send_json(
                200,
                {"jobs": [record.to_json() for record in manager.records()]},
            )
            return
        match = _JOB_PATH.match(path)
        if match:
            document = manager.status(match.group(1))
            if document is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, document)
            return
        match = _RESULT_PATH.match(path)
        if match:
            self._get_result(match.group(1))
            return
        self._send_json(404, {"error": f"no route for {path}"})

    def _get_result(self, job_id: str) -> None:
        manager = self.service.manager
        payload, reason = manager.result(job_id)
        if payload is not None:
            record = manager.get(job_id)
            headers = {
                "X-Repro-Job": job_id,
                "X-Repro-Outcome": record.outcome if record else "unknown",
            }
            if record is not None and record.result_sha256:
                headers["X-Repro-Sha256"] = record.result_sha256
            if reason == "partial":
                headers["X-Repro-Incomplete"] = "1"
            self._send_bytes(200, payload, headers)
            return
        status = {
            "not-found": 404,
            "not-ready": 409,
            "evicted": 410,
            "corrupt": 500,
        }.get(reason, 409)
        self._send_json(status, {"error": reason, "job": job_id})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/v1/jobs":
            self._post_job()
            return
        match = _CANCEL_PATH.match(path)
        if match:
            ok, reason = self.service.manager.cancel(match.group(1))
            if ok:
                self._send_json(202, {"status": reason})
            else:
                status = 404 if reason == "not-found" else 409
                self._send_json(status, {"error": reason})
            return
        self._send_json(404, {"error": f"no route for {path}"})

    def _post_job(self) -> None:
        body = self._read_body()
        if body is None:
            self._send_json(400, {"error": "bad or oversized request body"})
            return
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(request, dict):
            self._send_json(400, {"error": "request must be a JSON object"})
            return
        deadline = request.get("deadline", self.service.config.default_deadline)
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            self._send_json(
                400, {"error": f"deadline must be > 0, got {deadline!r}"}
            )
            return
        try:
            spec = JobSpec.from_request(
                request.get("kind"), request.get("params")
            )
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        outcome = self.service.manager.submit(
            spec, deadline=float(deadline) if deadline is not None else None
        )
        if not outcome.accepted:
            status = 429 if outcome.status == "rejected-overload" else 503
            self._send_json(
                status,
                {"status": outcome.status, "retry_after": outcome.retry_after},
                {"Retry-After": str(outcome.retry_after or 1)},
            )
            return
        record = outcome.record
        http_status = 202 if outcome.status == "queued" else 200
        self._send_json(
            http_status,
            {"status": outcome.status, "job": record.to_json()},
            {"Location": f"/v1/jobs/{record.id}"},
        )
