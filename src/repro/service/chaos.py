"""Service-level chaos harness: prove the HTTP job runtime survives.

:mod:`repro.perf.chaos_exec` kills individual campaign *runs*; this
module hammers a real ``nanobox-repro serve`` child process end to end
and asserts the service invariants:

==========  =====================================  ======================
mode        injected fault                         asserted invariant
==========  =====================================  ======================
overload    submission burst past queue capacity   bounded admission: the
                                                   excess is shed with 429
                                                   + ``Retry-After``, the
                                                   admitted jobs complete
dup-storm   concurrent identical submissions       single-flight: exactly
                                                   one computation, every
                                                   response byte-identical
                                                   to a direct CLI run
sigterm     SIGTERM mid-job (grace 0)              clean drain exit 0; the
                                                   restarted server resumes
                                                   the job to an artifact
                                                   byte-identical to an
                                                   uninterrupted run
kill9       SIGKILL server *and* its child         journal + checkpoints
            (simulated power loss)                 recover the job; resumed
                                                   output byte-identical
tamper      a cached artifact bit-flipped on disk  never served: the entry
                                                   is quarantined and the
                                                   artifact recomputed,
                                                   byte-identical
==========  =====================================  ======================

The report contains only deterministic facts (booleans and counts with
hard timing margins), so two harness runs produce byte-identical
reports -- the same two-run determinism gate ``chaos-exec`` carries.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SERVICE_CHAOS_MODES",
    "ServiceChaosOutcome",
    "run_service_chaos_suite",
    "service_chaos_report",
]

#: Every fault mode the harness can inject, in report order.
SERVICE_CHAOS_MODES = ("overload", "dup-storm", "sigterm", "kill9", "tamper")

_LISTEN_PREFIX = "service: listening on "


@dataclass(frozen=True)
class ServiceChaosOutcome:
    """What one injected fault did, and whether the service survived it.

    Attributes:
        mode: the fault mode injected.
        fault: human description of the injection.
        survived: every invariant for the mode held.
        byte_identical: artifacts served match the direct-CLI reference
            byte for byte (modes without an artifact check report True).
        detail: deterministic one-line postscript for the report.
    """

    mode: str
    fault: str
    survived: bool
    byte_identical: bool
    detail: str


def _src_path() -> str:
    return str(Path(__file__).resolve().parents[2])


def _child_env() -> Dict[str, str]:
    env = {
        key: value
        for key, value in os.environ.items()
        if not key.startswith("REPRO_CHAOS_")
    }
    existing = env.get("PYTHONPATH")
    src = _src_path()
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _run_cli(argv: Sequence[str], timeout: float) -> Tuple[int, bytes, str]:
    """Run ``nanobox-repro`` directly: (rc, stdout bytes, stderr text)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=_child_env(),
        capture_output=True,
        timeout=timeout,
    )
    return (
        proc.returncode,
        proc.stdout,
        proc.stderr.decode("utf-8", "replace"),
    )


class _Server:
    """One ``nanobox-repro serve`` child and an HTTP client onto it."""

    def __init__(
        self,
        state_dir: Path,
        *,
        workers: int = 1,
        queue_capacity: int = 4,
        drain_grace: float = 0.0,
        chunk_size: int = 1,
        timeout: float = 300.0,
    ) -> None:
        self.state_dir = state_dir
        self.timeout = timeout
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--state-dir",
                str(state_dir),
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--workers",
                str(workers),
                "--queue-capacity",
                str(queue_capacity),
                "--chunk-size",
                str(chunk_size),
                "--drain-grace",
                str(drain_grace),
            ],
            env=_child_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stdout.readline()
        if not line.startswith(_LISTEN_PREFIX):
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError(
                f"server failed to start: {line!r} / "
                f"{self.proc.stderr.read()[:500]}"
            )
        self.base = line[len(_LISTEN_PREFIX):].strip()

    def request(
        self,
        method: str,
        path: str,
        document: Optional[Dict[str, Any]] = None,
        timeout: float = 30.0,
    ) -> Tuple[int, Dict[str, str], bytes]:
        data = (
            json.dumps(document).encode("utf-8")
            if document is not None
            else None
        )
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def submit(self, job: Dict[str, Any]) -> Tuple[int, Dict[str, str], Dict]:
        status, headers, body = self.request("POST", "/v1/jobs", job)
        return status, headers, json.loads(body or b"{}")

    def wait_state(
        self, job_id: str, states: Sequence[str], timeout: float
    ) -> Optional[Dict[str, Any]]:
        """Poll until the job reaches one of ``states`` (None: timed out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, _, body = self.request("GET", f"/v1/jobs/{job_id}")
            if status == 200:
                document = json.loads(body)
                if document["state"] in states:
                    return document
            time.sleep(0.05)
        return None

    def wait_progress(self, job_id: str, chunks: int, timeout: float) -> bool:
        """Poll until >= ``chunks`` checkpoints landed while still running."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, _, body = self.request("GET", f"/v1/jobs/{job_id}")
            if status != 200:
                return False
            document = json.loads(body)
            if document["state"] not in ("queued", "running"):
                return False  # finished before the fault window opened
            if document["progress"]["completed_chunks"] >= chunks:
                return True
            time.sleep(0.02)
        return False

    def sigterm(self, timeout: float = 60.0) -> Tuple[int, str]:
        """SIGTERM the server; returns (exit status, stderr text)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            _, stderr = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            _, stderr = self.proc.communicate()
            return -9, stderr or ""
        return self.proc.returncode, stderr or ""

    def kill9(self) -> List[int]:
        """SIGKILL the server *and* its job children (power loss)."""
        self.proc.kill()
        self.proc.communicate()
        killed: List[int] = []
        for pid_file in sorted(self.state_dir.glob("jobs/*/child.pid")):
            try:
                pid = int(pid_file.read_text().strip())
                os.kill(pid, signal.SIGKILL)
                killed.append(pid)
            except (ValueError, OSError):
                continue
        return killed

    def shutdown(self) -> None:
        if self.proc.poll() is None:
            self.sigterm()


def _slow_job(seed: int) -> Dict[str, Any]:
    """A multi-chunk job slow enough to interrupt mid-run (~8s, 12 chunks
    at chunk size 1)."""
    return {
        "kind": "chaos",
        "params": {
            "rates": [0.0, 0.001, 0.002, 0.003, 0.005, 0.01],
            "rounds": [1, 3],
            "rows": 4,
            "cols": 4,
            "instructions": 600,
            "seed": seed,
        },
    }


def _fast_job(seed: int) -> Dict[str, Any]:
    """A sub-second job for cache/dedup modes."""
    return {
        "kind": "grid",
        "params": {"rows": 4, "cols": 4, "scheme": "hamming", "seed": seed},
    }


def _job_argv(job: Dict[str, Any]) -> List[str]:
    from repro.service.jobs import JobSpec

    return JobSpec.from_request(job["kind"], job["params"]).to_argv()


class _ChaosContext:
    """Shared per-suite state: workdir, seed, and reference artifacts."""

    def __init__(self, workdir: Path, seed: int, timeout: float) -> None:
        self.workdir = workdir
        self.seed = seed
        self.timeout = timeout
        self._references: Dict[str, bytes] = {}

    def reference(self, job: Dict[str, Any]) -> bytes:
        """The direct (service-free) CLI run's stdout for ``job``."""
        key = json.dumps(job, sort_keys=True)
        if key not in self._references:
            rc, stdout, stderr = _run_cli(
                _job_argv(job), timeout=self.timeout
            )
            if rc != 0:
                raise RuntimeError(
                    f"reference run failed (rc {rc}): {stderr.strip()[:500]}"
                )
            self._references[key] = stdout
        return self._references[key]


def _mode_overload(ctx: _ChaosContext) -> ServiceChaosOutcome:
    """Burst past capacity: the excess is shed, the admitted complete."""
    server = _Server(
        ctx.workdir / "overload", workers=1, queue_capacity=1,
        timeout=ctx.timeout,
    )
    try:
        # Occupy the single worker with a slow job ...
        status, _, first = server.submit(_slow_job(ctx.seed))
        if status != 202:
            return _failed("overload", f"setup submit got HTTP {status}")
        if server.wait_state(
            first["job"]["id"], ("running",), timeout=30.0
        ) is None:
            return _failed("overload", "setup job never started running")
        # ... then burst 5 distinct fast jobs at a queue of capacity 1.
        accepted, shed, retry_after_ok = 0, 0, True
        for offset in range(5):
            status, headers, body = server.submit(
                _fast_job(ctx.seed + 100 + offset)
            )
            if status == 202:
                accepted += 1
            elif status == 429:
                shed += 1
                retry_after_ok &= int(headers.get("Retry-After", "0")) >= 1
            else:
                return _failed("overload", f"burst got HTTP {status}")
        # The shed clients backing off must eventually get through: the
        # admitted jobs all finish.
        documents = [
            document
            for document in (
                server.wait_state(record["id"], ("done",), timeout=60.0)
                for record in _job_list(server)
            )
            if document is not None
        ]
        all_done = len(documents) == 1 + accepted
        survived = (
            accepted == 1 and shed == 4 and retry_after_ok and all_done
        )
        return ServiceChaosOutcome(
            mode="overload",
            fault="burst of 5 submissions at queue capacity 1",
            survived=survived,
            byte_identical=True,
            detail=(
                f"{accepted} admitted, {shed} shed with 429 + Retry-After, "
                f"admitted jobs all completed: "
                f"{'yes' if all_done else 'NO'}"
            ),
        )
    finally:
        server.shutdown()


def _job_list(server: _Server) -> List[Dict[str, Any]]:
    _, _, body = server.request("GET", "/v1/jobs")
    return json.loads(body)["jobs"]


def _mode_dup_storm(ctx: _ChaosContext) -> ServiceChaosOutcome:
    """Concurrent identical submissions: one computation, equal bytes."""
    server = _Server(
        ctx.workdir / "dup-storm", workers=2, queue_capacity=8,
        timeout=ctx.timeout,
    )
    try:
        job = _fast_job(ctx.seed + 1)
        results: List[Dict[str, Any]] = []
        lock = threading.Lock()

        def fire() -> None:
            _, _, document = server.submit(job)
            with lock:
                results.append(document)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        job_ids = {doc["job"]["id"] for doc in results if "job" in doc}
        first_id = sorted(job_ids)[0] if job_ids else None
        if first_id is None or server.wait_state(
            first_id, ("done",), timeout=60.0
        ) is None:
            return _failed("dup-storm", "no submission produced a job")
        # A late wave after completion must be served from the cache.
        late = [server.submit(job)[2] for _ in range(4)]
        job_ids.update(doc["job"]["id"] for doc in late)
        cached = sum(1 for doc in late if doc.get("status") == "cached")
        # Every job id's artifact must equal the direct-CLI reference.
        reference = ctx.reference(job)
        artifacts = []
        for job_id in sorted(job_ids):
            status, _, payload = server.request(
                "GET", f"/v1/jobs/{job_id}/result"
            )
            artifacts.append((status, payload))
        identical = all(
            status == 200 and payload == reference
            for status, payload in artifacts
        )
        _, _, metrics_body = server.request("GET", "/v1/metrics")
        executions = json.loads(metrics_body)["counters"].get(
            "service.executions", -1
        )
        survived = executions == 1 and identical and cached == 4
        return ServiceChaosOutcome(
            mode="dup-storm",
            fault="8 concurrent + 4 late identical submissions",
            survived=survived,
            byte_identical=identical,
            detail=(
                f"{executions} computation(s) for 12 submissions, "
                f"{cached} late hit(s) served from cache"
            ),
        )
    finally:
        server.shutdown()


def _mode_sigterm(ctx: _ChaosContext) -> ServiceChaosOutcome:
    """SIGTERM mid-job: clean drain, restart resumes byte-identically."""
    state_dir = ctx.workdir / "sigterm"
    server = _Server(state_dir, workers=1, timeout=ctx.timeout)
    job = _slow_job(ctx.seed + 2)
    status, _, document = server.submit(job)
    if status != 202:
        server.shutdown()
        return _failed("sigterm", f"submit got HTTP {status}")
    job_id = document["job"]["id"]
    if not server.wait_progress(job_id, chunks=1, timeout=30.0):
        server.shutdown()
        return _failed("sigterm", "no checkpoint landed before the fault")
    rc, stderr = server.sigterm()
    drained = rc == 0 and "service: drained" in stderr
    # A restarted server on the same state dir must resume the job.
    server2 = _Server(state_dir, workers=1, timeout=ctx.timeout)
    try:
        final = server2.wait_state(job_id, ("done",), timeout=60.0)
        resumed = final is not None and final["requeues"] >= 1
        status, _, payload = server2.request(
            "GET", f"/v1/jobs/{job_id}/result"
        )
        identical = status == 200 and payload == ctx.reference(job)
        return ServiceChaosOutcome(
            mode="sigterm",
            fault="SIGTERM mid-job (drain grace 0)",
            survived=drained and resumed and identical,
            byte_identical=identical,
            detail=(
                f"drain exit clean: {'yes' if drained else 'NO'}, "
                f"restart resumed the job: {'yes' if resumed else 'NO'}"
            ),
        )
    finally:
        server2.shutdown()


def _mode_kill9(ctx: _ChaosContext) -> ServiceChaosOutcome:
    """SIGKILL server + child (power loss): journal/checkpoints recover."""
    state_dir = ctx.workdir / "kill9"
    server = _Server(state_dir, workers=1, timeout=ctx.timeout)
    job = _slow_job(ctx.seed + 3)
    status, _, document = server.submit(job)
    if status != 202:
        server.shutdown()
        return _failed("kill9", f"submit got HTTP {status}")
    job_id = document["job"]["id"]
    if not server.wait_progress(job_id, chunks=1, timeout=30.0):
        server.shutdown()
        return _failed("kill9", "no checkpoint landed before the fault")
    killed = server.kill9()
    server2 = _Server(state_dir, workers=1, timeout=ctx.timeout)
    try:
        final = server2.wait_state(job_id, ("done",), timeout=90.0)
        resumed = final is not None and final["outcome"] == "resumed"
        status, _, payload = server2.request(
            "GET", f"/v1/jobs/{job_id}/result"
        )
        identical = status == 200 and payload == ctx.reference(job)
        return ServiceChaosOutcome(
            mode="kill9",
            fault="SIGKILL of server and job child mid-run",
            survived=resumed and identical and bool(killed),
            byte_identical=identical,
            detail=(
                f"child killed too: {'yes' if killed else 'NO'}, "
                f"journal recovery resumed the job: "
                f"{'yes' if resumed else 'NO'}"
            ),
        )
    finally:
        server2.shutdown()


def _mode_tamper(ctx: _ChaosContext) -> ServiceChaosOutcome:
    """A bit-flipped cached artifact is quarantined, never served."""
    state_dir = ctx.workdir / "tamper"
    server = _Server(state_dir, workers=1, timeout=ctx.timeout)
    try:
        job = _fast_job(ctx.seed + 4)
        status, _, document = server.submit(job)
        if status != 202:
            return _failed("tamper", f"submit got HTTP {status}")
        if server.wait_state(
            document["job"]["id"], ("done",), timeout=60.0
        ) is None:
            return _failed("tamper", "setup job never completed")
        # Flip one bit in the cached payload on disk.
        payloads = sorted(state_dir.glob("cache/*.bin"))
        if len(payloads) != 1:
            return _failed(
                "tamper", f"expected 1 cached payload, found {len(payloads)}"
            )
        blob = bytearray(payloads[0].read_bytes())
        blob[len(blob) // 2] ^= 0x01
        payloads[0].write_bytes(bytes(blob))
        # A new identical submission must detect the corruption and
        # recompute rather than serve the tampered bytes.
        status, _, redo = server.submit(job)
        if redo.get("status") == "cached":
            return _failed("tamper", "tampered artifact served from cache")
        redo_id = redo["job"]["id"]
        if server.wait_state(redo_id, ("done",), timeout=60.0) is None:
            return _failed("tamper", "recompute job never completed")
        status, _, payload = server.request(
            "GET", f"/v1/jobs/{redo_id}/result"
        )
        identical = status == 200 and payload == ctx.reference(job)
        quarantined = len(list(state_dir.glob("cache/*.corrupt*")))
        survived = identical and quarantined >= 1
        return ServiceChaosOutcome(
            mode="tamper",
            fault="one bit flipped in a cached artifact",
            survived=survived,
            byte_identical=identical,
            detail=(
                f"{quarantined} corrupt file(s) quarantined, artifact "
                f"recomputed: {'yes' if identical else 'NO'}"
            ),
        )
    finally:
        server.shutdown()


def _failed(mode: str, detail: str) -> ServiceChaosOutcome:
    return ServiceChaosOutcome(
        mode=mode,
        fault="(setup)",
        survived=False,
        byte_identical=False,
        detail=detail,
    )


_MODE_RUNNERS = {
    "overload": _mode_overload,
    "dup-storm": _mode_dup_storm,
    "sigterm": _mode_sigterm,
    "kill9": _mode_kill9,
    "tamper": _mode_tamper,
}


def run_service_chaos_suite(
    modes: Sequence[str] = SERVICE_CHAOS_MODES,
    workdir: Optional[Path] = None,
    seed: int = 2004,
    timeout: float = 300.0,
    echo=None,
) -> List[ServiceChaosOutcome]:
    """Run several service fault modes, each against a fresh server."""
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-service-chaos-"))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ctx = _ChaosContext(workdir, seed=seed, timeout=timeout)
    outcomes: List[ServiceChaosOutcome] = []
    for mode in modes:
        try:
            runner = _MODE_RUNNERS[mode]
        except KeyError:
            raise ValueError(
                f"unknown service chaos mode {mode!r}; "
                f"valid: {SERVICE_CHAOS_MODES}"
            ) from None
        outcome = runner(ctx)
        outcomes.append(outcome)
        if echo is not None:
            status = "SURVIVED" if outcome.survived else "FAILED"
            echo(f"{mode:>10}  {status:<9} {outcome.detail}")
    return outcomes


def service_chaos_report(outcomes: Sequence[ServiceChaosOutcome]) -> str:
    """The deterministic fixed-width report CI byte-compares."""
    from repro.experiments.report import format_table

    rows = [
        (
            o.mode,
            o.fault,
            "yes" if o.survived else "NO",
            "yes" if o.byte_identical else "NO",
            o.detail,
        )
        for o in outcomes
    ]
    return format_table(
        ("mode", "injected fault", "survived", "identical", "detail"),
        rows,
    )
