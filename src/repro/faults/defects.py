"""Permanent manufacturing-defect modeling.

The paper's premise covers two threat classes: transient noise-induced
errors *and* "large numbers of inherent device defects" baked in at
manufacture (abstract, Section 1).  The evaluation section exercises the
transients; this module supplies the defect half: stuck-at faults fixed at
construction time, so the same recursive masking hierarchy can be scored
on *yield* -- the fraction of manufactured parts that still compute
correctly -- and on graceful degradation when defects and transients
strike together.

Model: each fault site is independently defective with probability
``density``; a defective site is stuck at 0 or stuck at 1 (equally likely
by default).  For lookup-table storage a stuck-at cell is *exact* in the
XOR fault model: the delivered bit differs from the intended stored bit
precisely when the stuck value disagrees with it, and transient flips on
a dead cell have no further effect.  For sites without static content
(CMOS gate nodes, time-redundancy holding registers) a defective site is
modelled as a persistent inversion -- a slight pessimism, flagged via
:attr:`DefectiveUnit.exact`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.bits import bit_length_mask, popcount
from repro.faults.sites import SiteSpace


@dataclass(frozen=True)
class DefectMap:
    """Stuck-at assignment over a flat site space.

    Attributes:
        n_sites: width of the site space the map covers.
        stuck0: mask of sites permanently reading 0.
        stuck1: mask of sites permanently reading 1.
    """

    n_sites: int
    stuck0: int
    stuck1: int

    def __post_init__(self) -> None:
        for name, mask in (("stuck0", self.stuck0), ("stuck1", self.stuck1)):
            if mask < 0 or mask >> self.n_sites:
                raise ValueError(
                    f"{name} mask does not fit in {self.n_sites} sites"
                )
        if self.stuck0 & self.stuck1:
            raise ValueError("a site cannot be stuck at both 0 and 1")

    @property
    def defective_sites(self) -> int:
        """Mask of all defective sites."""
        return self.stuck0 | self.stuck1

    @property
    def defect_count(self) -> int:
        """Number of defective sites."""
        return popcount(self.defective_sites)

    @property
    def density(self) -> float:
        """Realised defect density."""
        if self.n_sites == 0:
            return 0.0
        return self.defect_count / self.n_sites

    def xor_against(self, storage_image: int) -> int:
        """Mask of sites whose stuck value disagrees with the intended
        storage -- the exact XOR equivalent of the stuck-at map for
        static storage."""
        wrong0 = storage_image & self.stuck0       # should be 1, reads 0
        wrong1 = (~storage_image) & self.stuck1    # should be 0, reads 1
        return (wrong0 | wrong1) & bit_length_mask(self.n_sites)

    @classmethod
    def pristine(cls, n_sites: int) -> "DefectMap":
        """A defect-free map."""
        return cls(n_sites=n_sites, stuck0=0, stuck1=0)


def sample_defect_map(
    n_sites: int,
    density: float,
    rng: np.random.Generator,
    stuck1_fraction: float = 0.5,
) -> DefectMap:
    """Draw a random defect map.

    Args:
        n_sites: site-space width.
        density: per-site defect probability.
        rng: seeded generator.
        stuck1_fraction: probability a defective site is stuck at 1.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be within [0, 1], got {density}")
    if not 0.0 <= stuck1_fraction <= 1.0:
        raise ValueError(
            f"stuck1_fraction must be within [0, 1], got {stuck1_fraction}"
        )
    stuck0 = 0
    stuck1 = 0
    if n_sites and density > 0.0:
        defective = rng.random(n_sites) < density
        polarity = rng.random(n_sites) < stuck1_fraction
        for i in np.nonzero(defective)[0]:
            if polarity[i]:
                stuck1 |= 1 << int(i)
            else:
                stuck0 |= 1 << int(i)
    return DefectMap(n_sites=n_sites, stuck0=stuck0, stuck1=stuck1)


def storage_image_of(unit) -> int:
    """Best-effort fault-free storage image over a unit's site space.

    Units whose sites are all static storage (NanoBox LUT ALUs, LUT
    voters, and their redundancy wrappers) return the exact stored bits;
    sites without static content contribute zeros.
    """
    image_fn = getattr(unit, "storage_image", None)
    if image_fn is None:
        return 0
    return image_fn()


class DefectiveUnit:
    """A manufactured part: a pristine design plus its defect map.

    Implements the same fault-maskable interface as the ALU family
    (``site_space`` / ``site_count`` / ``compute``), so campaigns, cells,
    and grids accept defective parts anywhere they accept pristine ones.
    ``compute`` composes the defects with per-computation transient
    masks: transient flips on dead cells are suppressed (the cell cannot
    toggle), then the defect's disagreement mask is XORed in.

    Attributes:
        exact: True when every defective site had static storage, so the
            stuck-at semantics is modelled exactly; False when some
            defects fell on dynamic sites and are approximated as
            persistent inversions.
    """

    def __init__(self, unit, defects: DefectMap) -> None:
        if defects.n_sites != unit.site_count:
            raise ValueError(
                f"defect map covers {defects.n_sites} sites but the unit "
                f"has {unit.site_count}"
            )
        self._unit = unit
        self._defects = defects
        image_fn = getattr(unit, "storage_image", None)
        if image_fn is None:
            # No static storage at all: every defect is an inversion.
            self._defect_xor = defects.defective_sites
            self.exact = defects.defect_count == 0
        else:
            image, static_mask = image_fn(), getattr(
                unit, "static_site_mask", lambda: bit_length_mask(unit.site_count)
            )()
            static_defects = defects.defective_sites & static_mask
            dynamic_defects = defects.defective_sites & ~static_mask
            self._defect_xor = (
                defects.xor_against(image) & static_mask
            ) | dynamic_defects
            self.exact = dynamic_defects == 0

    @property
    def pristine_unit(self):
        """The underlying defect-free design."""
        return self._unit

    @property
    def defects(self) -> DefectMap:
        return self._defects

    @property
    def site_space(self) -> SiteSpace:
        return self._unit.site_space

    @property
    def site_count(self) -> int:
        """Total fault-injection sites (same space as the design's)."""
        return self._unit.site_count

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0):
        """Execute one instruction: permanent defects + transient mask."""
        effective = (fault_mask & ~self._defects.defective_sites) ^ self._defect_xor
        return self._unit.compute(op, a, b, fault_mask=effective)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DefectiveUnit({self._unit.site_space.name!r}, "
            f"defects={self._defects.defect_count}/{self._defects.n_sites})"
        )
