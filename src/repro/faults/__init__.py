"""Transient-fault injection framework.

Implements the paper's evaluation methodology (Section 4): every fault-prone
storage bit or gate node in a design is a *site*; each computation draws a
fresh random *fault mask* over those sites ("after each ALU computation, we
generate a new fault mask, thereby modeling uniformly distributed random
transient device faults"); the injected-fault *percentage* is the ratio of
flipped sites to total sites, held constant across ALU implementations.

Also provides the FIT-rate arithmetic the paper uses to translate fault
percentages into failures-in-time (one computation per 0.5 ns).
"""

from repro.faults.sites import Segment, SiteSpace
from repro.faults.defects import DefectMap, DefectiveUnit, sample_defect_map
from repro.faults.mask import (
    BernoulliMask,
    BurstMask,
    ExactFractionMask,
    FixedCountMask,
    MaskPolicy,
)
from repro.faults.fit import (
    CLOCK_HZ,
    CMOS_REFERENCE_FIT,
    SECONDS_PER_CYCLE,
    faults_per_cycle_for_fit,
    fit_for_fault_fraction,
    fit_for_faults_per_cycle,
)
from repro.faults.packing import (
    int_to_words,
    pack_flags,
    unpack_flags,
    words_for_sites,
    words_to_int,
)
from repro.faults.campaign import CampaignResult, FaultCampaign, TrialResult
from repro.faults.stats import SampleStats, summarize
from repro.faults.temporal import (
    CellFaultEvent,
    CellFaultStream,
    FaultKind,
    TemporalFaultProcess,
)

__all__ = [
    "BernoulliMask",
    "BurstMask",
    "CLOCK_HZ",
    "CMOS_REFERENCE_FIT",
    "CampaignResult",
    "CellFaultEvent",
    "CellFaultStream",
    "DefectMap",
    "DefectiveUnit",
    "ExactFractionMask",
    "FaultCampaign",
    "FaultKind",
    "FixedCountMask",
    "MaskPolicy",
    "TemporalFaultProcess",
    "SECONDS_PER_CYCLE",
    "SampleStats",
    "Segment",
    "SiteSpace",
    "TrialResult",
    "faults_per_cycle_for_fit",
    "fit_for_fault_fraction",
    "fit_for_faults_per_cycle",
    "int_to_words",
    "pack_flags",
    "sample_defect_map",
    "summarize",
    "unpack_flags",
    "words_for_sites",
    "words_to_int",
]
