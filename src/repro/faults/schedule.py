"""Pre-drawn event tapes for temporal fault streams.

The sparse grid engine must know *when* a quiescent cell's fault stream
will next do something without ticking the cell every cycle.  The dense
path (:class:`repro.faults.temporal.CellFaultStream`) draws exactly one
uniform per alive, non-burst cycle; the sequence of outcomes is a pure
function of that uniform stream plus the burst/death state, so the draws
can be buffered in chunks and scanned in bulk: ``Generator.random(n)``
produces the identical stream to ``n`` scalar ``random()`` calls.

:class:`FaultTape` is a drop-in replacement for ``CellFaultStream`` --
``sample()`` is cycle-for-cycle identical -- that adds
``advance_quiet(max_cycles)``: consume up to ``max_cycles`` alive cycles
at once, vectorised, stopping at (and consuming) the first non-quiet
event.  The differential suite in ``tests/faults/test_schedule.py`` pins
the equivalence under arbitrary interleavings of the two APIs.

Aliveness is the *caller's* contract, exactly as on the dense path: the
simulator never samples a dead cell, so the engine must only advance a
tape over cycles the cell was alive.  Stream-level death (a permanent
onset) is tracked internally and consumes no further draws.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .temporal import (
    _TEMPORAL_SALT,
    CellFaultEvent,
    FaultKind,
    TemporalFaultProcess,
)

#: Uniform draws buffered per refill.  Any value yields the identical
#: stream (chunked ``random(n)`` equals ``n`` scalar draws); this is
#: purely an amortisation knob.
_DEFAULT_CHUNK = 512


class FaultTape:
    """Chunk-buffered sampler of a :class:`TemporalFaultProcess`.

    Replays the exact draw sequence of ``CellFaultStream`` while
    supporting O(chunk-scan) bulk advancement over quiet spans.
    """

    _QUIET = CellFaultEvent()

    def __init__(
        self,
        process: TemporalFaultProcess,
        rng: np.random.Generator,
        chunk: int = _DEFAULT_CHUNK,
    ) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._process = process
        self._rng = rng
        self._chunk = chunk
        self._buffer = np.empty(0, dtype=np.float64)
        self._pos = 0
        self._burst_remaining = 0
        self._dead = False

    # ------------------------------------------------------------ properties

    @property
    def dead(self) -> bool:
        """True once a permanent onset fired (no further draws happen)."""
        return self._dead

    @property
    def in_burst(self) -> bool:
        """True while an intermittent burst has cycles left to emit."""
        return self._burst_remaining > 0

    # -------------------------------------------------------------- sampling

    def _next_uniform(self) -> float:
        if self._pos >= len(self._buffer):
            self._buffer = self._rng.random(self._chunk)
            self._pos = 0
        value = self._buffer[self._pos]
        self._pos += 1
        return value

    def _onset_event(self) -> CellFaultEvent:
        process = self._process
        if process.kind is FaultKind.PERMANENT:
            self._dead = True
            return CellFaultEvent(kill=True)
        if process.kind is FaultKind.INTERMITTENT:
            self._burst_remaining = process.burst_length - 1
        return CellFaultEvent(errors=process.errors_per_cycle)

    def sample(self) -> CellFaultEvent:
        """Draw one cycle's event; identical to ``CellFaultStream.sample``."""
        if self._dead:
            return self._QUIET
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return CellFaultEvent(errors=self._process.errors_per_cycle)
        if self._next_uniform() >= self._process.rate:
            return self._QUIET
        return self._onset_event()

    def advance_quiet(
        self, max_cycles: int
    ) -> Tuple[int, Optional[CellFaultEvent]]:
        """Consume up to ``max_cycles`` alive cycles in bulk.

        Returns ``(quiet_cycles, event)``: the stream was quiet for
        ``quiet_cycles`` cycles and then -- if ``event`` is not ``None``
        -- produced ``event`` on the following cycle (also consumed, so
        ``quiet_cycles + 1`` cycles total elapsed).  ``event is None``
        means all ``max_cycles`` cycles were quiet.

        Equivalent to calling :meth:`sample` up to ``max_cycles`` times
        and stopping at the first non-quiet result.
        """
        if max_cycles < 0:
            raise ValueError(f"max_cycles must be >= 0, got {max_cycles}")
        if self._dead:
            return max_cycles, None
        if max_cycles == 0:
            return 0, None
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return 0, CellFaultEvent(errors=self._process.errors_per_cycle)
        rate = self._process.rate
        quiet = 0
        remaining = max_cycles
        while remaining > 0:
            if self._pos >= len(self._buffer):
                self._buffer = self._rng.random(self._chunk)
                self._pos = 0
            window = self._buffer[self._pos : self._pos + remaining]
            hits = np.nonzero(window < rate)[0]
            if hits.size:
                offset = int(hits[0])
                self._pos += offset + 1
                return quiet + offset, self._onset_event()
            quiet += len(window)
            remaining -= len(window)
            self._pos += len(window)
        return quiet, None


def attach_tape(
    process: TemporalFaultProcess,
    coord: Tuple[int, int],
    seed: int,
    chunk: int = _DEFAULT_CHUNK,
) -> FaultTape:
    """Build the tape twin of ``process.attach(coord, seed)``.

    Seeded identically (``SeedSequence([seed, salt, row, col])``), so a
    tape and a ``CellFaultStream`` for the same cell emit the same event
    sequence.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _TEMPORAL_SALT, coord[0], coord[1]])
    )
    return FaultTape(process, rng, chunk=chunk)
