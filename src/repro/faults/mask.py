"""Fault-mask generation policies.

The paper "force[s] a given fraction of the fault injection points to flip
their states" per computation, with the flipped-to-total ratio held constant
across ALU implementations.  :class:`ExactFractionMask` implements that
semantics (with stochastic rounding of the fractional site, so very small
designs at very small percentages still see the right *expected* count);
:class:`BernoulliMask` flips each site independently, which is analytically
convenient and used by the cross-validation property tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _pack_sites(flags: np.ndarray) -> int:
    """Pack a uint8 0/1 site vector into a little-endian mask integer."""
    if flags.size == 0:
        return 0
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


class MaskPolicy(ABC):
    """Strategy for drawing one fault mask over ``n_sites`` sites."""

    @abstractmethod
    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        """Draw a fresh fault mask (integer, one bit per site)."""

    @abstractmethod
    def expected_faults(self, n_sites: int) -> float:
        """Expected number of flipped sites per draw."""


class ExactFractionMask(MaskPolicy):
    """Flip ``round(fraction * n_sites)`` distinct sites, chosen uniformly.

    The fractional remainder is resolved stochastically: a fraction of
    0.5 % over 192 sites flips one site with probability 0.96, zero sites
    otherwise, keeping the expected ratio exact.  This is the paper's
    default injection semantics.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        self._fraction = fraction

    @property
    def fraction(self) -> float:
        """Fraction of sites flipped per computation."""
        return self._fraction

    def expected_faults(self, n_sites: int) -> float:
        return self._fraction * n_sites

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        exact = self._fraction * n_sites
        count = int(exact)
        remainder = exact - count
        if remainder > 0.0 and rng.random() < remainder:
            count += 1
        if count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        flags[rng.choice(n_sites, size=count, replace=False)] = 1
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactFractionMask({self._fraction!r})"


class BernoulliMask(MaskPolicy):
    """Flip each site independently with probability ``p``.

    Matches the closed-form models in :mod:`repro.analysis`, which assume
    independent per-bit flips.
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability}"
            )
        self._probability = probability

    @property
    def probability(self) -> float:
        """Per-site flip probability."""
        return self._probability

    def expected_faults(self, n_sites: int) -> float:
        return self._probability * n_sites

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_sites == 0 or self._probability == 0.0:
            return 0
        flags = (rng.random(n_sites) < self._probability).astype(np.uint8)
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliMask({self._probability!r})"


class BurstMask(MaskPolicy):
    """Spatially-correlated faults: clusters of adjacent flipped sites.

    The paper models uniformly distributed transients, but physical
    upsets in dense nanodevice arrays cluster -- one particle strike or
    one fabrication blemish takes out a *run* of neighbouring cells.
    ``BurstMask`` flips the same expected number of sites as
    :class:`ExactFractionMask` at the same fraction, but groups them
    into bursts of ``burst_length`` consecutive sites, so layout
    decisions (e.g. whether a TMR string's copies are blocked or
    interleaved) become visible.
    """

    def __init__(self, fraction: float, burst_length: int = 4) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if burst_length <= 0:
            raise ValueError(
                f"burst_length must be positive, got {burst_length}"
            )
        self._fraction = fraction
        self._burst_length = burst_length

    @property
    def fraction(self) -> float:
        """Expected fraction of sites flipped per computation."""
        return self._fraction

    @property
    def burst_length(self) -> int:
        """Sites per burst."""
        return self._burst_length

    def expected_faults(self, n_sites: int) -> float:
        return self._fraction * n_sites

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_sites == 0 or self._fraction == 0.0:
            return 0
        exact_bursts = self._fraction * n_sites / self._burst_length
        count = int(exact_bursts)
        remainder = exact_bursts - count
        if remainder > 0.0 and rng.random() < remainder:
            count += 1
        if count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        starts = rng.integers(0, n_sites, size=count)
        for start in starts:
            end = min(int(start) + self._burst_length, n_sites)
            flags[int(start):end] = 1
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BurstMask({self._fraction!r}, burst_length={self._burst_length})"


class FixedCountMask(MaskPolicy):
    """Flip exactly ``count`` distinct sites per draw.

    Used by targeted experiments ("what does one fault in the voter do?")
    rather than the percentage sweeps.
    """

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._count = count

    @property
    def count(self) -> int:
        """Number of sites flipped per draw."""
        return self._count

    def expected_faults(self, n_sites: int) -> float:
        return float(min(self._count, n_sites))

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if self._count > n_sites:
            raise ValueError(
                f"cannot flip {self._count} of only {n_sites} sites"
            )
        if self._count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        flags[rng.choice(n_sites, size=self._count, replace=False)] = 1
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedCountMask({self._count!r})"
