"""Fault-mask generation policies.

The paper "force[s] a given fraction of the fault injection points to flip
their states" per computation, with the flipped-to-total ratio held constant
across ALU implementations.  :class:`ExactFractionMask` implements that
semantics (with stochastic rounding of the fractional site, so very small
designs at very small percentages still see the right *expected* count);
:class:`BernoulliMask` flips each site independently, which is analytically
convenient and used by the cross-validation property tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.faults.packing import int_to_words, pack_flags, words_for_sites


def _pack_sites(flags: np.ndarray) -> int:
    """Pack a uint8 0/1 site vector into a little-endian mask integer."""
    if flags.size == 0:
        return 0
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


class MaskPolicy(ABC):
    """Strategy for drawing one fault mask over ``n_sites`` sites."""

    @abstractmethod
    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        """Draw a fresh fault mask (integer, one bit per site)."""

    @abstractmethod
    def expected_faults(self, n_sites: int) -> float:
        """Expected number of flipped sites per draw."""

    def generate_batch(
        self, n_sites: int, n_draws: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_draws`` masks as a packed ``(n_draws, n_words)`` array.

        The determinism contract of the batched campaign engine: this must
        consume ``rng`` exactly as ``n_draws`` successive :meth:`generate`
        calls would, so that scalar and batched campaigns see identical
        mask streams for the same seed.  The base implementation guarantees
        that by delegating to :meth:`generate`; subclasses may override
        with a vectorized draw only when it is stream-identical.
        """
        if n_draws < 0:
            raise ValueError(f"n_draws must be non-negative, got {n_draws}")
        words = np.zeros((n_draws, words_for_sites(n_sites)), dtype="<u8")
        for d in range(n_draws):
            words[d] = int_to_words(self.generate(n_sites, rng), n_sites)
        return words


class ExactFractionMask(MaskPolicy):
    """Flip ``round(fraction * n_sites)`` distinct sites, chosen uniformly.

    The fractional remainder is resolved stochastically: a fraction of
    0.5 % over 192 sites flips one site with probability 0.96, zero sites
    otherwise, keeping the expected ratio exact.  This is the paper's
    default injection semantics.

    The without-replacement sample is drawn by *order statistics*: one
    uniform per site (plus one for the stochastic rounding), flipping the
    sites holding the ``count`` smallest values.  The ranks of i.i.d.
    uniforms are a uniform random permutation, so those positions are an
    exact uniform ``count``-subset -- and each draw consumes a fixed,
    rectangular block of the stream, which is what lets
    :meth:`generate_batch` pull a whole trial's masks in a single RNG
    call with bit-identical results to per-draw :meth:`generate` calls.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        self._fraction = fraction

    @property
    def fraction(self) -> float:
        """Fraction of sites flipped per computation."""
        return self._fraction

    def expected_faults(self, n_sites: int) -> float:
        return self._fraction * n_sites

    def _split_count(self, n_sites: int) -> Tuple[int, float]:
        """The guaranteed flip count and the stochastic remainder."""
        exact = self._fraction * n_sites
        base = int(exact)
        return base, exact - base

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_sites == 0 or self._fraction == 0.0:
            return 0
        base, remainder = self._split_count(n_sites)
        # One uniform per site, plus a trailing rounding uniform when the
        # count has a fractional part -- the same consumption layout as
        # one row of generate_batch's block draw.
        vec = rng.random(n_sites + 1 if remainder > 0.0 else n_sites)
        count = base
        if remainder > 0.0 and vec[n_sites] < remainder:
            count += 1
        if count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        if count >= n_sites:
            flags[:] = 1
        else:
            flags[np.argpartition(vec[:n_sites], count - 1)[:count]] = 1
        return _pack_sites(flags)

    def generate_batch(
        self, n_sites: int, n_draws: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Whole-trial draw from one rectangular block of uniforms.

        ``Generator.random`` fills row-major, so the ``(n_draws, cols)``
        block holds exactly the uniforms ``n_draws`` successive
        :meth:`generate` calls would consume -- stream- and
        result-identical to the scalar path (asserted by the equivalence
        tests), with the per-draw site selection vectorized into one
        ``argpartition``.
        """
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_draws < 0:
            raise ValueError(f"n_draws must be non-negative, got {n_draws}")
        if n_sites == 0 or self._fraction == 0.0 or n_draws == 0:
            return np.zeros((n_draws, words_for_sites(n_sites)), dtype="<u8")
        base, remainder = self._split_count(n_sites)
        cols = n_sites + 1 if remainder > 0.0 else n_sites
        block = rng.random((n_draws, cols))
        counts = np.full(n_draws, base)
        if remainder > 0.0:
            counts += block[:, n_sites] < remainder
        flags = np.zeros((n_draws, n_sites), dtype=np.uint8)
        if base >= n_sites:
            flags[:] = 1  # fraction == 1.0: every site flips, every draw
        else:
            # Indices [:base] of the partition are each row's base
            # smallest uniforms; index base is the (base+1)-th, used only
            # by rows whose stochastic rounding added a site.
            part = np.argpartition(block[:, :n_sites], base, axis=1)
            rows = np.arange(n_draws)
            if base > 0:
                flags[rows[:, None], part[:, :base]] = 1
            extra = rows[counts > base]
            flags[extra, part[extra, base]] = 1
        return pack_flags(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactFractionMask({self._fraction!r})"


class BernoulliMask(MaskPolicy):
    """Flip each site independently with probability ``p``.

    Matches the closed-form models in :mod:`repro.analysis`, which assume
    independent per-bit flips.
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability}"
            )
        self._probability = probability

    @property
    def probability(self) -> float:
        """Per-site flip probability."""
        return self._probability

    def expected_faults(self, n_sites: int) -> float:
        return self._probability * n_sites

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_sites == 0 or self._probability == 0.0:
            return 0
        flags = (rng.random(n_sites) < self._probability).astype(np.uint8)
        return _pack_sites(flags)

    def generate_batch(
        self, n_sites: int, n_draws: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Fully vectorized draw: one RNG call for the whole batch.

        ``Generator.random`` fills row-major from the underlying bit
        stream, so one ``(n_draws, n_sites)`` draw yields the same uniform
        variates as ``n_draws`` successive ``random(n_sites)`` calls --
        stream-identical to the scalar path by construction (asserted by
        the equivalence tests).
        """
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_draws < 0:
            raise ValueError(f"n_draws must be non-negative, got {n_draws}")
        if n_sites == 0 or self._probability == 0.0:
            return np.zeros((n_draws, words_for_sites(n_sites)), dtype="<u8")
        flags = (
            rng.random((n_draws, n_sites)) < self._probability
        ).astype(np.uint8)
        return pack_flags(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BernoulliMask({self._probability!r})"


class BurstMask(MaskPolicy):
    """Spatially-correlated faults: clusters of adjacent flipped sites.

    The paper models uniformly distributed transients, but physical
    upsets in dense nanodevice arrays cluster -- one particle strike or
    one fabrication blemish takes out a *run* of neighbouring cells.
    ``BurstMask`` flips the same expected number of sites as
    :class:`ExactFractionMask` at the same fraction, but groups them
    into bursts of ``burst_length`` consecutive sites, so layout
    decisions (e.g. whether a TMR string's copies are blocked or
    interleaved) become visible.
    """

    def __init__(self, fraction: float, burst_length: int = 4) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if burst_length <= 0:
            raise ValueError(
                f"burst_length must be positive, got {burst_length}"
            )
        self._fraction = fraction
        self._burst_length = burst_length

    @property
    def fraction(self) -> float:
        """Expected fraction of sites flipped per computation."""
        return self._fraction

    @property
    def burst_length(self) -> int:
        """Sites per burst."""
        return self._burst_length

    def expected_faults(self, n_sites: int) -> float:
        return self._fraction * n_sites

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if n_sites < 0:
            raise ValueError(f"n_sites must be non-negative, got {n_sites}")
        if n_sites == 0 or self._fraction == 0.0:
            return 0
        exact_bursts = self._fraction * n_sites / self._burst_length
        count = int(exact_bursts)
        remainder = exact_bursts - count
        if remainder > 0.0 and rng.random() < remainder:
            count += 1
        if count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        starts = rng.integers(0, n_sites, size=count)
        for start in starts:
            end = min(int(start) + self._burst_length, n_sites)
            flags[int(start):end] = 1
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BurstMask({self._fraction!r}, burst_length={self._burst_length})"


class FixedCountMask(MaskPolicy):
    """Flip exactly ``count`` distinct sites per draw.

    Used by targeted experiments ("what does one fault in the voter do?")
    rather than the percentage sweeps.
    """

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._count = count

    @property
    def count(self) -> int:
        """Number of sites flipped per draw."""
        return self._count

    def expected_faults(self, n_sites: int) -> float:
        return float(min(self._count, n_sites))

    def generate(self, n_sites: int, rng: np.random.Generator) -> int:
        if self._count > n_sites:
            raise ValueError(
                f"cannot flip {self._count} of only {n_sites} sites"
            )
        if self._count == 0:
            return 0
        flags = np.zeros(n_sites, dtype=np.uint8)
        flags[rng.choice(n_sites, size=self._count, replace=False)] = 1
        return _pack_sites(flags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedCountMask({self._count!r})"
