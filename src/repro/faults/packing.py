"""Packed fault-mask batches.

The scalar campaign path represents a fault mask as one arbitrary-precision
Python integer (bit ``i`` = site ``i``).  The batched engine instead carries
a whole trial's masks as a ``(n_draws, n_words)`` array of little-endian
``uint64`` words -- site ``i`` of draw ``d`` lives at word ``i // 64``, bit
``i % 64`` of row ``d``.  This module is the single place the two
representations meet; everything round-trips bit-exactly.
"""

from __future__ import annotations

import numpy as np

#: Bits per packed mask word.
WORD_BITS = 64

#: Canonical packed dtype: little-endian uint64, independent of host order.
WORD_DTYPE = np.dtype("<u8")


def words_for_sites(n_sites: int) -> int:
    """Number of uint64 words needed to hold ``n_sites`` mask bits."""
    if n_sites < 0:
        raise ValueError(f"n_sites must be non-negative, got {n_sites}")
    return (n_sites + WORD_BITS - 1) // WORD_BITS


def pack_flags(flags: np.ndarray) -> np.ndarray:
    """Pack a ``(n_draws, n_sites)`` 0/1 array into packed mask words."""
    if flags.ndim != 2:
        raise ValueError(f"flags must be 2-D, got shape {flags.shape}")
    n_draws, n_sites = flags.shape
    n_words = words_for_sites(n_sites)
    if n_sites == 0:
        return np.zeros((n_draws, 0), dtype=WORD_DTYPE)
    packed = np.packbits(flags, axis=1, bitorder="little")
    pad = n_words * (WORD_BITS // 8) - packed.shape[1]
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(WORD_DTYPE)


def unpack_flags(words: np.ndarray, n_sites: int) -> np.ndarray:
    """Expand packed mask words back to a ``(n_draws, n_sites)`` 0/1 array."""
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    n_draws = words.shape[0]
    if n_sites == 0:
        return np.zeros((n_draws, 0), dtype=np.uint8)
    raw = np.ascontiguousarray(words.astype(WORD_DTYPE, copy=False))
    bits = np.unpackbits(raw.view(np.uint8), axis=1, bitorder="little")
    return np.ascontiguousarray(bits[:, :n_sites])


def words_to_int(row: np.ndarray) -> int:
    """Convert one packed mask row to the scalar-path integer mask."""
    if row.size == 0:
        return 0
    raw = np.ascontiguousarray(row.astype(WORD_DTYPE, copy=False))
    return int.from_bytes(raw.tobytes(), "little")


def int_to_words(mask: int, n_sites: int) -> np.ndarray:
    """Convert a scalar-path integer mask to one packed mask row."""
    n_words = words_for_sites(n_sites)
    if mask < 0 or mask >> (n_words * WORD_BITS):
        raise ValueError(
            f"mask {mask:#x} does not fit {n_sites} sites"
        )
    data = mask.to_bytes(n_words * (WORD_BITS // 8), "little")
    return np.frombuffer(data, dtype=WORD_DTYPE).copy()
