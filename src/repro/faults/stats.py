"""Small-sample statistics for Monte Carlo campaigns.

The paper reports the mean over ten samples (five trials of each of two
workloads) and notes standard deviations (under 10 percentage points for 210
of 216 plotted points, worst case 24.51).  These helpers compute the same
summaries plus a normal-approximation confidence interval for wider runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class SampleStats:
    """Summary of a sample of trial scores."""

    n: int
    mean: float
    stddev: float
    minimum: float
    maximum: float

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (default 95 %)."""
        if self.n <= 1:
            return (self.mean, self.mean)
        half = z * self.stddev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)


def summarize(samples: Sequence[float]) -> SampleStats:
    """Compute mean / sample stddev / extrema of ``samples``.

    Uses the unbiased (n-1) standard deviation, matching how a spreadsheet
    of five-trial VHDL runs would report spread.
    """
    values = list(samples)
    if not values:
        raise ValueError("summarize needs at least one sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        stddev = 0.0
    else:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(var)
    return SampleStats(
        n=n,
        mean=mean,
        stddev=stddev,
        minimum=min(values),
        maximum=max(values),
    )
