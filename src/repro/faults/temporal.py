"""Temporal fault taxonomy for grid-level injection.

The mask policies in :mod:`repro.faults.mask` model *where* faults land
inside one computation; this module models *when* faults strike a cell
over a simulation's lifetime.  The classic taxonomy distinguishes:

* **transient** faults -- isolated single-cycle glitches (particle
  strikes): an affected cycle charges the cell's heartbeat once and the
  cell is fine the next cycle;
* **intermittent** faults -- bursts: once a burst starts, the cell keeps
  detecting errors every cycle for the burst's duration (marginal
  devices, local supply noise), then recovers completely;
* **permanent** faults -- stuck-at cell failures: from a random onset
  cycle the cell is dead for good (its heartbeat is force-silenced, so
  no probe can ever bring it back).

These are exactly the processes that make the one-shot watchdog
pessimal: under transient and intermittent processes the hardware is
healthy again moments after the heartbeat goes silent, so a lifecycle
with quarantine and re-admission recovers the capacity the paper's
permanent disable throws away -- while under a permanent process both
behave identically.  ``repro.experiments.lifecycle`` measures this.

Every per-cell event stream is seeded from ``(seed, salt, row, col)``,
so simulations are deterministic and cells are independent regardless of
how many other cells fault.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Domain-separation salt for temporal-fault PRNG streams.
_TEMPORAL_SALT = 0x7E3A


class FaultKind(enum.Enum):
    """Temporal class of a cell-level fault process."""

    TRANSIENT = "transient"
    INTERMITTENT = "intermittent"
    PERMANENT = "permanent"


@dataclass(frozen=True)
class CellFaultEvent:
    """What a fault process does to one cell in one cycle."""

    #: Detected errors to charge against the cell's heartbeat.
    errors: int = 0
    #: Hard-fail the cell (stuck-at: heartbeat force-silenced forever).
    kill: bool = False

    @property
    def quiet(self) -> bool:
        """True when nothing happened this cycle."""
        return self.errors == 0 and not self.kill


@dataclass(frozen=True)
class TemporalFaultProcess:
    """A per-cell, per-cycle stochastic fault process.

    Args:
        kind: temporal class (transient / intermittent / permanent).
        rate: per-cell per-cycle event probability -- a glitch for
            transient, a burst onset for intermittent, the stuck-at
            onset for permanent.
        burst_length: cycles per burst (intermittent only).
        errors_per_cycle: heartbeat charges per affected cycle.
    """

    kind: FaultKind
    rate: float
    burst_length: int = 1
    errors_per_cycle: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.rate < 1:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be positive, got {self.burst_length}"
            )
        if self.errors_per_cycle < 1:
            raise ValueError(
                f"errors_per_cycle must be positive, got {self.errors_per_cycle}"
            )

    # ------------------------------------------------------------- factories

    @classmethod
    def transient(
        cls, rate: float, errors_per_cycle: int = 1
    ) -> "TemporalFaultProcess":
        """Isolated single-cycle glitches at ``rate`` per cell per cycle."""
        return cls(FaultKind.TRANSIENT, rate, errors_per_cycle=errors_per_cycle)

    @classmethod
    def intermittent(
        cls, rate: float, burst_length: int, errors_per_cycle: int = 1
    ) -> "TemporalFaultProcess":
        """Error bursts: onset at ``rate``, then ``burst_length`` bad cycles."""
        return cls(
            FaultKind.INTERMITTENT,
            rate,
            burst_length=burst_length,
            errors_per_cycle=errors_per_cycle,
        )

    @classmethod
    def stuck_at(cls, rate: float) -> "TemporalFaultProcess":
        """Permanent cell death with onset probability ``rate`` per cycle."""
        return cls(FaultKind.PERMANENT, rate)

    # -------------------------------------------------------------- sampling

    def attach(self, coord: Tuple[int, int], seed: int) -> "CellFaultStream":
        """Build this process's private event stream for one cell."""
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, _TEMPORAL_SALT, coord[0], coord[1]])
        )
        return CellFaultStream(self, rng)

    def describe(self) -> str:
        """Short human-readable label for tables."""
        if self.kind is FaultKind.INTERMITTENT:
            return (
                f"intermittent(rate={self.rate:g}, "
                f"burst={self.burst_length}x{self.errors_per_cycle})"
            )
        if self.kind is FaultKind.TRANSIENT:
            return f"transient(rate={self.rate:g})"
        return f"permanent(rate={self.rate:g})"


class CellFaultStream:
    """Stateful per-cell sampler of a :class:`TemporalFaultProcess`."""

    _QUIET = CellFaultEvent()

    def __init__(
        self, process: TemporalFaultProcess, rng: np.random.Generator
    ) -> None:
        self._process = process
        self._rng = rng
        self._burst_remaining = 0
        self._dead = False

    @property
    def dead(self) -> bool:
        """True once a permanent onset fired (no further draws happen)."""
        return self._dead

    def sample(self) -> CellFaultEvent:
        """Draw one cycle's event for this cell."""
        if self._dead:
            return self._QUIET
        process = self._process
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return CellFaultEvent(errors=process.errors_per_cycle)
        if self._rng.random() >= process.rate:
            return self._QUIET
        if process.kind is FaultKind.PERMANENT:
            self._dead = True
            return CellFaultEvent(kill=True)
        if process.kind is FaultKind.INTERMITTENT:
            self._burst_remaining = process.burst_length - 1
        return CellFaultEvent(errors=process.errors_per_cycle)
