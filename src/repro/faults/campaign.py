"""Monte Carlo fault-injection campaign runner.

Drives any fault-maskable compute unit (anything exposing ``site_count``
and ``compute(op, a, b, fault_mask)`` returning an object with a ``value``
attribute -- all :mod:`repro.alu` module-level ALUs qualify) through a
workload, drawing a fresh fault mask per instruction exactly as the paper's
VHDL testbench does, and scoring the fraction of instructions whose 8-bit
result matches the expected value.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.bits import popcount
from repro.faults.mask import MaskPolicy
from repro.faults.packing import unpack_flags, words_for_sites, words_to_int
from repro.faults.stats import SampleStats, summarize
from repro.obs import get_observer

#: One workload instruction: (opcode, operand1, operand2, expected result).
Instruction = Tuple[int, int, int, int]

#: Sentinel distinguishing "not built yet" from "built, unsupported (None)".
_UNSET = object()


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one pass over a workload with one fault-mask stream."""

    total: int
    correct: int
    injected_faults: int

    @property
    def percent_correct(self) -> float:
        """The paper's y-axis: percent of instructions which are correct."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.correct / self.total


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of several trials at one injected-fault setting."""

    trials: Tuple[TrialResult, ...]

    @property
    def stats(self) -> SampleStats:
        """Summary statistics over per-trial percent-correct scores."""
        return summarize([t.percent_correct for t in self.trials])

    @property
    def percent_correct(self) -> float:
        """Mean percent-correct over all trials (the plotted data point)."""
        return self.stats.mean

    @property
    def total_injected_faults(self) -> int:
        return sum(t.injected_faults for t in self.trials)


class FaultCampaign:
    """Reusable campaign harness bound to one compute unit.

    Args:
        alu: fault-maskable compute unit (``site_count`` +
            ``compute(op, a, b, fault_mask)``).
        policy: fault-mask generation policy (fraction per computation).
        seed: base PRNG seed; each trial derives an independent child
            stream so trials are reproducible and order-independent.
    """

    def __init__(self, alu, policy: MaskPolicy, seed: int = 0) -> None:
        self._alu = alu
        self._policy = policy
        self._seed = seed
        self._batched_engine = _UNSET  # built lazily on first batched run
        self._compiled_engine = _UNSET  # built lazily on first compiled run

    @property
    def policy(self) -> MaskPolicy:
        return self._policy

    def _rng_for_trial(
        self, trial: int, workload: Optional[str] = None
    ) -> np.random.Generator:
        """Per-trial child stream, optionally namespaced by workload name.

        The workload namespace (a CRC-32 of the name folded into the
        ``SeedSequence``) keeps each workload's trial streams independent:
        adding or removing a workload from a suite no longer shifts any
        other workload's masks.
        """
        if workload is None:
            entropy = [self._seed, trial]
        else:
            entropy = [self._seed, zlib.crc32(workload.encode("utf-8")), trial]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def _engine(self):
        """The unit's batched evaluator, or ``None`` for scalar fallback."""
        if self._batched_engine is _UNSET:
            from repro.alu.batched import build_batched_unit

            self._batched_engine = build_batched_unit(self._alu)
        return self._batched_engine

    def _compiled(self):
        """The unit's compiled evaluator, or ``None`` for batched fallback.

        Built (and JIT-warmed) on first use -- outside every trial/suite
        timer, so compile cost never pollutes campaign timings.
        """
        if self._compiled_engine is _UNSET:
            from repro.kernels import build_compiled_unit

            self._compiled_engine = build_compiled_unit(self._alu)
        return self._compiled_engine

    def use_engines(self, batched=_UNSET, compiled=_UNSET) -> None:
        """Install pre-built evaluation engines (worker-pool cache hook).

        A fan-out worker runs many campaigns over the same unit family;
        rebuilding the batched/compiled engines per campaign would waste
        more time than evaluation itself.  Engines are stateless across
        calls, so sharing them never perturbs results.
        """
        if batched is not _UNSET:
            self._batched_engine = batched
        if compiled is not _UNSET:
            self._compiled_engine = compiled

    def built_engines(self) -> Dict[str, object]:
        """Engines this campaign has materialised so far.

        The inverse of :meth:`use_engines`: a fan-out worker runs one
        campaign, harvests whatever engines it built (``"batched"`` /
        ``"compiled"`` keys; values may be ``None`` for units with no
        such form -- that verdict is worth caching too), and seeds the
        next campaign over the same unit spec.
        """
        built: Dict[str, object] = {}
        if self._batched_engine is not _UNSET:
            built["batched"] = self._batched_engine
        if self._compiled_engine is not _UNSET:
            built["compiled"] = self._compiled_engine
        return built

    def resolve_backend(
        self, backend: Optional[str] = None, batched: Optional[bool] = None
    ) -> str:
        """The effective tier for this unit: scalar, batched, or compiled.

        ``auto`` selects compiled exactly when this unit has a live
        compiled engine, silently falling back to batched otherwise.  An
        explicit ``compiled`` request without an engine degrades to
        batched with a one-time stderr warning -- unless the *unit* is
        the unsupported part while a provider is live, which mirrors the
        batched tier's silent scalar fallback for unvectorizable units.
        """
        from repro.kernels import resolve_backend as _resolve

        requested = _resolve(backend, batched)
        if requested == "auto":
            effective = "compiled" if self._compiled() is not None else "batched"
        elif requested == "compiled" and self._compiled() is None:
            from repro.kernels import get_provider
            from repro.kernels.providers import warn_compiled_unavailable

            if get_provider() is None:
                warn_compiled_unavailable("no Numba and no C compiler")
            effective = "batched"
        else:
            effective = requested
        get_observer().metrics.counter(f"kernel.backend.{effective}").inc()
        return effective

    def run_workload(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
        workload: Optional[str] = None,
    ) -> TrialResult:
        """Run one trial: fresh mask per instruction, score 8-bit results."""
        obs = get_observer()
        source = f"campaign/{workload}" if workload else "campaign"
        if obs.enabled:
            obs.trace.emit(
                "trial_start",
                source=source,
                trial=trial,
                instructions=len(instructions),
                batched=False,
            )
        rng = self._rng_for_trial(trial, workload)
        n_sites = self._alu.site_count
        correct = 0
        injected = 0
        with obs.metrics.time("campaign.trial"):
            for op, a, b, expected in instructions:
                mask = self._policy.generate(n_sites, rng)
                injected += popcount(mask)
                result = self._alu.compute(op, a, b, fault_mask=mask)
                if result.value == expected:
                    correct += 1
        self._record_trial(obs, source, trial, len(instructions), correct, injected)
        return TrialResult(
            total=len(instructions), correct=correct, injected_faults=injected
        )

    @staticmethod
    def _record_trial(
        obs, source: str, trial: int, total: int, correct: int, injected: int
    ) -> None:
        """Post one trial's tallies to the active observer (no-op by default)."""
        metrics = obs.metrics
        metrics.counter("campaign.trials").inc()
        metrics.counter("campaign.instructions").inc(total)
        metrics.counter("campaign.faults_injected").inc(injected)
        metrics.counter("campaign.incorrect").inc(total - correct)
        if obs.enabled:
            obs.trace.emit(
                "fault_injected", source=source, trial=trial, count=injected
            )
            obs.trace.emit(
                "trial_end",
                source=source,
                trial=trial,
                total=total,
                correct=correct,
                injected=injected,
            )

    def run_workload_batched(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
        workload: Optional[str] = None,
    ) -> TrialResult:
        """Vectorized :meth:`run_workload`: bit-identical, much faster.

        Draws the whole trial's mask stream in one
        :meth:`~repro.faults.mask.MaskPolicy.generate_batch` call and
        evaluates every instruction through the unit's batched NumPy
        engine.  Units without a batched form (CMOS gate netlists,
        gate-level decoders) are evaluated scalar over the same pre-drawn
        masks, so the result is identical to :meth:`run_workload` for the
        same ``(seed, trial, workload)`` in every case.
        """
        obs = get_observer()
        source = f"campaign/{workload}" if workload else "campaign"
        if obs.enabled:
            obs.trace.emit(
                "trial_start",
                source=source,
                trial=trial,
                instructions=len(instructions),
                batched=True,
            )
        rng = self._rng_for_trial(trial, workload)
        n_sites = self._alu.site_count
        n = len(instructions)
        with obs.metrics.time("campaign.trial_batched"):
            words = self._policy.generate_batch(n_sites, n, rng)
            flags = unpack_flags(words, n_sites)
            injected = int(flags.sum())
            engine = self._engine()
            if engine is None:
                correct = 0
                for row, (op, a, b, expected) in enumerate(instructions):
                    mask = words_to_int(words[row])
                    if self._alu.compute(op, a, b, fault_mask=mask).value == expected:
                        correct += 1
            else:
                ops = np.fromiter((i[0] for i in instructions), np.int64, count=n)
                a_ops = np.fromiter((i[1] for i in instructions), np.int64, count=n)
                b_ops = np.fromiter((i[2] for i in instructions), np.int64, count=n)
                expected = np.fromiter(
                    (i[3] for i in instructions), np.int64, count=n
                )
                values = engine.values(ops, a_ops, b_ops, flags)
                correct = int(np.count_nonzero(values == expected))
        self._record_trial(obs, source, trial, n, correct, injected)
        return TrialResult(total=n, correct=correct, injected_faults=injected)

    def run_workload_compiled(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
        workload: Optional[str] = None,
    ) -> TrialResult:
        """Compiled-tier :meth:`run_workload`: bit-identical, fastest.

        The trial's mask stream is drawn packed (the same RNG
        consumption as every other tier) and evaluated in place by the
        native kernel -- no per-site flag expansion at all.  Callers
        must have checked :meth:`resolve_backend` first; a unit without
        a compiled engine belongs on the batched path.
        """
        engine = self._compiled()
        if engine is None:
            return self.run_workload_batched(
                instructions, trial=trial, workload=workload
            )
        obs = get_observer()
        source = f"campaign/{workload}" if workload else "campaign"
        if obs.enabled:
            obs.trace.emit(
                "trial_start",
                source=source,
                trial=trial,
                instructions=len(instructions),
                batched=True,
                backend="compiled",
            )
        rng = self._rng_for_trial(trial, workload)
        n_sites = self._alu.site_count
        n = len(instructions)
        with obs.metrics.time("campaign.trial_compiled"):
            words = self._policy.generate_batch(n_sites, n, rng)
            injected = int(np.bitwise_count(words).sum())
            ops = np.fromiter((i[0] for i in instructions), np.int64, count=n)
            a_ops = np.fromiter((i[1] for i in instructions), np.int64, count=n)
            b_ops = np.fromiter((i[2] for i in instructions), np.int64, count=n)
            expected = np.fromiter(
                (i[3] for i in instructions), np.int64, count=n
            )
            values = engine.values_words(ops, a_ops, b_ops, words)
            correct = int(np.count_nonzero(values == expected))
        self._record_trial(obs, source, trial, n, correct, injected)
        return TrialResult(total=n, correct=correct, injected_faults=injected)

    def _runner(self, effective: str):
        if effective == "compiled":
            return self.run_workload_compiled
        if effective == "batched":
            return self.run_workload_batched
        return self.run_workload

    def run_trials(
        self,
        instructions: Sequence[Instruction],
        n_trials: int,
        first_trial: int = 0,
        batched: bool = False,
        backend: Optional[str] = None,
    ) -> CampaignResult:
        """Run ``n_trials`` independent trials over the same workload.

        ``backend`` (scalar/batched/compiled/auto) supersedes the legacy
        ``batched`` flag when given; results are identical on every tier.
        """
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        run = self._runner(self.resolve_backend(backend, batched))
        trials = tuple(
            run(instructions, trial=first_trial + t) for t in range(n_trials)
        )
        return CampaignResult(trials=trials)

    def run_workload_suite(
        self,
        workloads: Dict[str, Sequence[Instruction]],
        trials_per_workload: int,
        batched: bool = False,
        backend: Optional[str] = None,
    ) -> CampaignResult:
        """Paper-style scoring: N trials of each named workload, pooled.

        The paper's plotted points average five trials of each of two image
        workloads (ten samples total); this helper reproduces that pooling.

        Trial streams are namespaced by workload *name* (not suite
        position), so a workload's masks are stable no matter what else is
        in the suite.  (Before PR 2 the stream was derived from the
        position, so adding a workload silently reseeded the others.)

        ``backend`` supersedes the legacy ``batched`` flag when given.
        On the compiled tier the whole suite -- every workload x trial --
        is fused into one rectangular mask block and one native kernel
        dispatch; per-trial RNG streams are drawn independently exactly
        as on the other tiers, so the pooled ``TrialResult``s stay
        bit-identical.
        """
        effective = self.resolve_backend(backend, batched)
        if effective == "compiled":
            return self._run_suite_compiled(workloads, trials_per_workload)
        run = self._runner(effective)
        all_trials: List[TrialResult] = []
        with get_observer().metrics.time("campaign.suite"):
            for name, instructions in sorted(workloads.items()):
                for t in range(trials_per_workload):
                    all_trials.append(run(instructions, trial=t, workload=name))
        return CampaignResult(trials=tuple(all_trials))

    def _run_suite_compiled(
        self,
        workloads: Dict[str, Sequence[Instruction]],
        trials_per_workload: int,
    ) -> CampaignResult:
        """One fused kernel dispatch for the whole suite.

        Stream identity constrains the fusion shape: each (workload,
        trial) draws from its own ``SeedSequence``-derived generator, so
        the RNG *draws* stay per-trial rectangles -- but they land in
        one contiguous block, and evaluation, scoring, and fault
        accounting run once over all rows.
        """
        engine = self._compiled()
        assert engine is not None  # resolve_backend() guarantees it
        obs = get_observer()
        n_sites = self._alu.site_count
        n_words = words_for_sites(n_sites)

        jobs: List[Tuple[str, Sequence[Instruction], int, int]] = []
        total_rows = 0
        for name, instructions in sorted(workloads.items()):
            for t in range(trials_per_workload):
                jobs.append((name, instructions, t, total_rows))
                total_rows += len(instructions)

        with obs.metrics.time("campaign.suite"):
            with obs.metrics.time("campaign.suite_compiled"):
                words = np.empty((total_rows, n_words), dtype=np.uint64)
                per_workload: Dict[str, Tuple[np.ndarray, ...]] = {}
                for name, instructions, t, row in jobs:
                    if obs.enabled:
                        obs.trace.emit(
                            "trial_start",
                            source=f"campaign/{name}",
                            trial=t,
                            instructions=len(instructions),
                            batched=True,
                            backend="compiled",
                        )
                    if name not in per_workload:
                        count = len(instructions)
                        per_workload[name] = tuple(
                            np.fromiter(
                                (i[field] for i in instructions),
                                np.int64,
                                count=count,
                            )
                            for field in range(4)
                        )
                    rng = self._rng_for_trial(t, name)
                    words[row : row + len(instructions)] = (
                        self._policy.generate_batch(
                            n_sites, len(instructions), rng
                        )
                    )
                row_faults = np.bitwise_count(words).sum(axis=1)
                ops = np.concatenate(
                    [per_workload[name][0] for name, *_ in jobs]
                )
                a_ops = np.concatenate(
                    [per_workload[name][1] for name, *_ in jobs]
                )
                b_ops = np.concatenate(
                    [per_workload[name][2] for name, *_ in jobs]
                )
                values = engine.values_words(ops, a_ops, b_ops, words)
                obs.metrics.counter("kernel.fused_rows").inc(total_rows)

            all_trials: List[TrialResult] = []
            for name, instructions, t, row in jobs:
                n = len(instructions)
                expected = per_workload[name][3]
                correct = int(
                    np.count_nonzero(values[row : row + n] == expected)
                )
                injected = int(row_faults[row : row + n].sum())
                self._record_trial(
                    obs, f"campaign/{name}", t, n, correct, injected
                )
                all_trials.append(
                    TrialResult(
                        total=n, correct=correct, injected_faults=injected
                    )
                )
        return CampaignResult(trials=tuple(all_trials))
