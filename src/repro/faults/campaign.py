"""Monte Carlo fault-injection campaign runner.

Drives any fault-maskable compute unit (anything exposing ``site_count``
and ``compute(op, a, b, fault_mask)`` returning an object with a ``value``
attribute -- all :mod:`repro.alu` module-level ALUs qualify) through a
workload, drawing a fresh fault mask per instruction exactly as the paper's
VHDL testbench does, and scoring the fraction of instructions whose 8-bit
result matches the expected value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.coding.bits import popcount
from repro.faults.mask import MaskPolicy
from repro.faults.stats import SampleStats, summarize

#: One workload instruction: (opcode, operand1, operand2, expected result).
Instruction = Tuple[int, int, int, int]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one pass over a workload with one fault-mask stream."""

    total: int
    correct: int
    injected_faults: int

    @property
    def percent_correct(self) -> float:
        """The paper's y-axis: percent of instructions which are correct."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.correct / self.total


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of several trials at one injected-fault setting."""

    trials: Tuple[TrialResult, ...]

    @property
    def stats(self) -> SampleStats:
        """Summary statistics over per-trial percent-correct scores."""
        return summarize([t.percent_correct for t in self.trials])

    @property
    def percent_correct(self) -> float:
        """Mean percent-correct over all trials (the plotted data point)."""
        return self.stats.mean

    @property
    def total_injected_faults(self) -> int:
        return sum(t.injected_faults for t in self.trials)


class FaultCampaign:
    """Reusable campaign harness bound to one compute unit.

    Args:
        alu: fault-maskable compute unit (``site_count`` +
            ``compute(op, a, b, fault_mask)``).
        policy: fault-mask generation policy (fraction per computation).
        seed: base PRNG seed; each trial derives an independent child
            stream so trials are reproducible and order-independent.
    """

    def __init__(self, alu, policy: MaskPolicy, seed: int = 0) -> None:
        self._alu = alu
        self._policy = policy
        self._seed = seed

    @property
    def policy(self) -> MaskPolicy:
        return self._policy

    def _rng_for_trial(self, trial: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence([self._seed, trial]))

    def run_workload(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
    ) -> TrialResult:
        """Run one trial: fresh mask per instruction, score 8-bit results."""
        rng = self._rng_for_trial(trial)
        n_sites = self._alu.site_count
        correct = 0
        injected = 0
        for op, a, b, expected in instructions:
            mask = self._policy.generate(n_sites, rng)
            injected += popcount(mask)
            result = self._alu.compute(op, a, b, fault_mask=mask)
            if result.value == expected:
                correct += 1
        return TrialResult(
            total=len(instructions), correct=correct, injected_faults=injected
        )

    def run_trials(
        self,
        instructions: Sequence[Instruction],
        n_trials: int,
        first_trial: int = 0,
    ) -> CampaignResult:
        """Run ``n_trials`` independent trials over the same workload."""
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        trials = tuple(
            self.run_workload(instructions, trial=first_trial + t)
            for t in range(n_trials)
        )
        return CampaignResult(trials=trials)

    def run_workload_suite(
        self,
        workloads: Dict[str, Sequence[Instruction]],
        trials_per_workload: int,
    ) -> CampaignResult:
        """Paper-style scoring: N trials of each named workload, pooled.

        The paper's plotted points average five trials of each of two image
        workloads (ten samples total); this helper reproduces that pooling.
        """
        all_trials: List[TrialResult] = []
        for index, (name, instructions) in enumerate(sorted(workloads.items())):
            for t in range(trials_per_workload):
                all_trials.append(
                    self.run_workload(
                        instructions, trial=index * trials_per_workload + t
                    )
                )
        return CampaignResult(trials=tuple(all_trials))
