"""Monte Carlo fault-injection campaign runner.

Drives any fault-maskable compute unit (anything exposing ``site_count``
and ``compute(op, a, b, fault_mask)`` returning an object with a ``value``
attribute -- all :mod:`repro.alu` module-level ALUs qualify) through a
workload, drawing a fresh fault mask per instruction exactly as the paper's
VHDL testbench does, and scoring the fraction of instructions whose 8-bit
result matches the expected value.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.bits import popcount
from repro.faults.mask import MaskPolicy
from repro.faults.packing import unpack_flags, words_to_int
from repro.faults.stats import SampleStats, summarize
from repro.obs import get_observer

#: One workload instruction: (opcode, operand1, operand2, expected result).
Instruction = Tuple[int, int, int, int]

#: Sentinel distinguishing "not built yet" from "built, unsupported (None)".
_UNSET = object()


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one pass over a workload with one fault-mask stream."""

    total: int
    correct: int
    injected_faults: int

    @property
    def percent_correct(self) -> float:
        """The paper's y-axis: percent of instructions which are correct."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.correct / self.total


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of several trials at one injected-fault setting."""

    trials: Tuple[TrialResult, ...]

    @property
    def stats(self) -> SampleStats:
        """Summary statistics over per-trial percent-correct scores."""
        return summarize([t.percent_correct for t in self.trials])

    @property
    def percent_correct(self) -> float:
        """Mean percent-correct over all trials (the plotted data point)."""
        return self.stats.mean

    @property
    def total_injected_faults(self) -> int:
        return sum(t.injected_faults for t in self.trials)


class FaultCampaign:
    """Reusable campaign harness bound to one compute unit.

    Args:
        alu: fault-maskable compute unit (``site_count`` +
            ``compute(op, a, b, fault_mask)``).
        policy: fault-mask generation policy (fraction per computation).
        seed: base PRNG seed; each trial derives an independent child
            stream so trials are reproducible and order-independent.
    """

    def __init__(self, alu, policy: MaskPolicy, seed: int = 0) -> None:
        self._alu = alu
        self._policy = policy
        self._seed = seed
        self._batched_engine = _UNSET  # built lazily on first batched run

    @property
    def policy(self) -> MaskPolicy:
        return self._policy

    def _rng_for_trial(
        self, trial: int, workload: Optional[str] = None
    ) -> np.random.Generator:
        """Per-trial child stream, optionally namespaced by workload name.

        The workload namespace (a CRC-32 of the name folded into the
        ``SeedSequence``) keeps each workload's trial streams independent:
        adding or removing a workload from a suite no longer shifts any
        other workload's masks.
        """
        if workload is None:
            entropy = [self._seed, trial]
        else:
            entropy = [self._seed, zlib.crc32(workload.encode("utf-8")), trial]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def _engine(self):
        """The unit's batched evaluator, or ``None`` for scalar fallback."""
        if self._batched_engine is _UNSET:
            from repro.alu.batched import build_batched_unit

            self._batched_engine = build_batched_unit(self._alu)
        return self._batched_engine

    def run_workload(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
        workload: Optional[str] = None,
    ) -> TrialResult:
        """Run one trial: fresh mask per instruction, score 8-bit results."""
        obs = get_observer()
        source = f"campaign/{workload}" if workload else "campaign"
        if obs.enabled:
            obs.trace.emit(
                "trial_start",
                source=source,
                trial=trial,
                instructions=len(instructions),
                batched=False,
            )
        rng = self._rng_for_trial(trial, workload)
        n_sites = self._alu.site_count
        correct = 0
        injected = 0
        with obs.metrics.time("campaign.trial"):
            for op, a, b, expected in instructions:
                mask = self._policy.generate(n_sites, rng)
                injected += popcount(mask)
                result = self._alu.compute(op, a, b, fault_mask=mask)
                if result.value == expected:
                    correct += 1
        self._record_trial(obs, source, trial, len(instructions), correct, injected)
        return TrialResult(
            total=len(instructions), correct=correct, injected_faults=injected
        )

    @staticmethod
    def _record_trial(
        obs, source: str, trial: int, total: int, correct: int, injected: int
    ) -> None:
        """Post one trial's tallies to the active observer (no-op by default)."""
        metrics = obs.metrics
        metrics.counter("campaign.trials").inc()
        metrics.counter("campaign.instructions").inc(total)
        metrics.counter("campaign.faults_injected").inc(injected)
        metrics.counter("campaign.incorrect").inc(total - correct)
        if obs.enabled:
            obs.trace.emit(
                "fault_injected", source=source, trial=trial, count=injected
            )
            obs.trace.emit(
                "trial_end",
                source=source,
                trial=trial,
                total=total,
                correct=correct,
                injected=injected,
            )

    def run_workload_batched(
        self,
        instructions: Sequence[Instruction],
        trial: int = 0,
        workload: Optional[str] = None,
    ) -> TrialResult:
        """Vectorized :meth:`run_workload`: bit-identical, much faster.

        Draws the whole trial's mask stream in one
        :meth:`~repro.faults.mask.MaskPolicy.generate_batch` call and
        evaluates every instruction through the unit's batched NumPy
        engine.  Units without a batched form (CMOS gate netlists,
        gate-level decoders) are evaluated scalar over the same pre-drawn
        masks, so the result is identical to :meth:`run_workload` for the
        same ``(seed, trial, workload)`` in every case.
        """
        obs = get_observer()
        source = f"campaign/{workload}" if workload else "campaign"
        if obs.enabled:
            obs.trace.emit(
                "trial_start",
                source=source,
                trial=trial,
                instructions=len(instructions),
                batched=True,
            )
        rng = self._rng_for_trial(trial, workload)
        n_sites = self._alu.site_count
        n = len(instructions)
        with obs.metrics.time("campaign.trial_batched"):
            words = self._policy.generate_batch(n_sites, n, rng)
            flags = unpack_flags(words, n_sites)
            injected = int(flags.sum())
            engine = self._engine()
            if engine is None:
                correct = 0
                for row, (op, a, b, expected) in enumerate(instructions):
                    mask = words_to_int(words[row])
                    if self._alu.compute(op, a, b, fault_mask=mask).value == expected:
                        correct += 1
            else:
                ops = np.fromiter((i[0] for i in instructions), np.int64, count=n)
                a_ops = np.fromiter((i[1] for i in instructions), np.int64, count=n)
                b_ops = np.fromiter((i[2] for i in instructions), np.int64, count=n)
                expected = np.fromiter(
                    (i[3] for i in instructions), np.int64, count=n
                )
                values = engine.values(ops, a_ops, b_ops, flags)
                correct = int(np.count_nonzero(values == expected))
        self._record_trial(obs, source, trial, n, correct, injected)
        return TrialResult(total=n, correct=correct, injected_faults=injected)

    def run_trials(
        self,
        instructions: Sequence[Instruction],
        n_trials: int,
        first_trial: int = 0,
        batched: bool = False,
    ) -> CampaignResult:
        """Run ``n_trials`` independent trials over the same workload."""
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        run = self.run_workload_batched if batched else self.run_workload
        trials = tuple(
            run(instructions, trial=first_trial + t) for t in range(n_trials)
        )
        return CampaignResult(trials=trials)

    def run_workload_suite(
        self,
        workloads: Dict[str, Sequence[Instruction]],
        trials_per_workload: int,
        batched: bool = False,
    ) -> CampaignResult:
        """Paper-style scoring: N trials of each named workload, pooled.

        The paper's plotted points average five trials of each of two image
        workloads (ten samples total); this helper reproduces that pooling.

        Trial streams are namespaced by workload *name* (not suite
        position), so a workload's masks are stable no matter what else is
        in the suite.  (Before PR 2 the stream was derived from the
        position, so adding a workload silently reseeded the others.)
        """
        run = self.run_workload_batched if batched else self.run_workload
        all_trials: List[TrialResult] = []
        with get_observer().metrics.time("campaign.suite"):
            for name, instructions in sorted(workloads.items()):
                for t in range(trials_per_workload):
                    all_trials.append(run(instructions, trial=t, workload=name))
        return CampaignResult(trials=tuple(all_trials))
