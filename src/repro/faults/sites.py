"""Fault-site bookkeeping.

A :class:`SiteSpace` assigns every fault-prone bit of a design a position in
one flat address space, segment by segment.  Fault masks are integers over
that space; a component extracts its share of a mask through its
:class:`Segment` handle.  The per-variant totals are the "potential fault
points" column of paper Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.coding.bits import bit_length_mask, popcount


@dataclass(frozen=True)
class Segment:
    """A named, contiguous range of fault sites."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        """One past the last site index of this segment."""
        return self.offset + self.size

    def extract(self, mask: int) -> int:
        """Return this segment's slice of a whole-design fault mask."""
        return (mask >> self.offset) & bit_length_mask(self.size)

    def inject(self, local_mask: int) -> int:
        """Lift a segment-local mask into the whole-design address space."""
        if local_mask < 0 or local_mask >> self.size:
            raise ValueError(
                f"local mask {local_mask:#x} does not fit segment "
                f"{self.name!r} of {self.size} sites"
            )
        return local_mask << self.offset

    def contains(self, site: int) -> bool:
        """True when global site index ``site`` falls inside this segment."""
        return self.offset <= site < self.end


class SiteSpace:
    """Flat fault-site address space built from named segments."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._segments: List[Segment] = []
        self._by_name: Dict[str, Segment] = {}
        self._total = 0

    def add(self, name: str, size: int) -> Segment:
        """Append a segment of ``size`` sites and return its handle."""
        if size < 0:
            raise ValueError(f"segment size must be non-negative, got {size}")
        if name in self._by_name:
            raise ValueError(f"duplicate segment name {name!r}")
        segment = Segment(name, self._total, size)
        self._segments.append(segment)
        self._by_name[name] = segment
        self._total += size
        return segment

    def add_space(self, name: str, other: "SiteSpace") -> Dict[str, Segment]:
        """Nest another site space's segments under a ``name.`` prefix."""
        handles: Dict[str, Segment] = {}
        for seg in other.segments:
            handles[seg.name] = self.add(f"{name}.{seg.name}", seg.size)
        return handles

    @property
    def total_sites(self) -> int:
        """Total number of fault-injection sites."""
        return self._total

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._segments)

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no segment {name!r}; have {sorted(self._by_name)}"
            ) from None

    def attribute(self, mask: int) -> Dict[str, int]:
        """Count how many mask bits landed in each segment.

        Useful for post-hoc analysis: e.g. how many of an injection's
        faults hit the module voter versus the ALU cores.
        """
        if mask < 0 or (self._total < mask.bit_length()):
            raise ValueError(
                f"mask {mask:#x} does not fit the {self._total}-site space"
            )
        return {seg.name: popcount(seg.extract(mask)) for seg in self._segments}

    def owner_of(self, site: int) -> Segment:
        """Return the segment containing global site index ``site``."""
        if site < 0 or site >= self._total:
            raise IndexError(f"site {site} out of range 0..{self._total - 1}")
        for seg in self._segments:
            if seg.contains(site):
                return seg
        raise AssertionError("unreachable: contiguous segments cover the space")

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SiteSpace({self.name!r}, segments={len(self._segments)}, "
            f"total_sites={self._total})"
        )
