"""FIT-rate (failures in time) arithmetic.

Paper Section 4: "FIT rates are then determined by computing the ratio of
the number of injected errors per 0.5 nanoseconds" at a 2 GHz clock (from
the device-level simulations of [16]).  One FIT is one device upset per 1e9
hours.  Worked example from the paper: ``aluss`` has 5040 sites; 1 % of them
is ~50 faults per cycle, i.e. 3.6e14 errors/hour, i.e. a raw FIT rate of
3.6e23.
"""

from __future__ import annotations

#: NanoBox clock rate determined by device-level simulation in [16].
CLOCK_HZ = 2.0e9

#: One ALU computation per clock: 0.5 ns.
SECONDS_PER_CYCLE = 1.0 / CLOCK_HZ

#: Hours expressed in FIT's denominator (1 FIT = 1 upset / 1e9 hours).
_FIT_HOURS = 1.0e9

#: Contemporary CMOS failure rate cited by the paper ([2]): ~50,000 FITs,
#: i.e. roughly one error every two years.
CMOS_REFERENCE_FIT = 5.0e4

_SECONDS_PER_HOUR = 3600.0


def fit_for_faults_per_cycle(faults_per_cycle: float) -> float:
    """Convert a per-cycle injected-fault count to a raw FIT rate.

    >>> round(fit_for_faults_per_cycle(50.0) / 1e23, 2)
    3.6
    """
    if faults_per_cycle < 0:
        raise ValueError(
            f"faults_per_cycle must be non-negative, got {faults_per_cycle}"
        )
    errors_per_hour = faults_per_cycle * (_SECONDS_PER_HOUR / SECONDS_PER_CYCLE)
    return errors_per_hour * _FIT_HOURS


def fit_for_fault_fraction(fraction: float, n_sites: int) -> float:
    """FIT rate for flipping ``fraction`` of ``n_sites`` sites each cycle.

    This is the x-axis translation used when the paper states that 3 %
    injected errors on ``aluss`` corresponds to a FIT rate of 1e24.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    if n_sites < 0:
        raise ValueError(f"n_sites must be non-negative, got {n_sites}")
    return fit_for_faults_per_cycle(fraction * n_sites)


def faults_per_cycle_for_fit(fit: float) -> float:
    """Inverse of :func:`fit_for_faults_per_cycle`."""
    if fit < 0:
        raise ValueError(f"fit must be non-negative, got {fit}")
    errors_per_hour = fit / _FIT_HOURS
    return errors_per_hour * (SECONDS_PER_CYCLE / _SECONDS_PER_HOUR)
