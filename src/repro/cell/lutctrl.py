"""LUT-implemented control logic (paper Section 7, future work).

"Our foremost future work is to convert the entire processor cell,
including the router and alu-control modules, into lookup tables.  In this
way, we can expand our fault injection experiments and analyze the effect
of high fault rates on control logic."

This module takes the first step the paper sketches: the ALU control's
majority gates for the triplicated ``data_valid`` / ``to_be_computed``
flags are built from error-coded lookup tables, giving the control path
its own fault-injection sites.  The ``bench_ext_lut_control`` benchmark
measures how much the cell's instruction-level correctness degrades once
control-flag voting is itself fault-prone.
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.sites import SiteSpace
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable


def _majority3(a: int, b: int, c: int) -> int:
    return (a & b) | (b & c) | (a & c)


def flag_voter_truth_table() -> TruthTable:
    """3-input majority truth table (8 entries) for one flag field."""
    return TruthTable.from_function(3, _majority3)


class LUTFieldVoter:
    """Fault-prone majority voter for triplicated memory-word flags.

    Two lookup tables: one votes the ``data_valid`` copies, one the
    ``to_be_computed`` copies.  With the ``tmr`` scheme each is a
    triplicated 8-bit string (24 sites); uncoded each holds 8 sites.
    """

    def __init__(self, scheme: str = "tmr") -> None:
        self._scheme = scheme
        self._lut = CodedLUT(flag_voter_truth_table(), scheme)
        self._space = SiteSpace(f"lut_field_voter[{scheme}]")
        self._dv_segment = self._space.add("data_valid_voter", self._lut.total_bits)
        self._tbc_segment = self._space.add(
            "to_be_computed_voter", self._lut.total_bits
        )

    @property
    def scheme(self) -> str:
        """Bit-level coding scheme protecting the voter tables."""
        return self._scheme

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    @property
    def site_count(self) -> int:
        return self._space.total_sites

    def _vote(self, segment, copies: Tuple[int, int, int], fault_mask: int) -> int:
        address = copies[0] | (copies[1] << 1) | (copies[2] << 2)
        return self._lut.read(address, segment.extract(fault_mask))

    def vote_data_valid(
        self, copies: Tuple[int, int, int], fault_mask: int = 0
    ) -> int:
        """Vote the three ``data_valid`` copies through the coded LUT."""
        return self._vote(self._dv_segment, copies, fault_mask)

    def vote_to_be_computed(
        self, copies: Tuple[int, int, int], fault_mask: int = 0
    ) -> int:
        """Vote the three ``to_be_computed`` copies through the coded LUT."""
        return self._vote(self._tbc_segment, copies, fault_mask)

    def classify_word(
        self, raw: int, fault_mask: int = 0
    ) -> Tuple[bool, bool]:
        """Vote both flag fields of a raw memory word under faults.

        Returns ``(data_valid, to_be_computed)`` as the fault-prone control
        logic would see them.  A wrong ``(True, True)`` verdict makes the
        ALU control execute garbage; a wrong ``(*, False)`` verdict makes
        it skip real work -- both effects the future-work experiment
        quantifies.
        """
        from repro.cell.memword import (
            DATA_VALID_OFFSET,
            MEMORY_WORD_BITS,
            TO_BE_COMPUTED_OFFSET,
        )

        if raw < 0 or raw >> MEMORY_WORD_BITS:
            raise ValueError(f"raw word {raw:#x} exceeds {MEMORY_WORD_BITS} bits")
        dv_copies = tuple((raw >> (DATA_VALID_OFFSET + c)) & 1 for c in range(3))
        tbc_copies = tuple((raw >> (TO_BE_COMPUTED_OFFSET + c)) & 1 for c in range(3))
        dv = self.vote_data_valid(dv_copies, fault_mask)
        tbc = self.vote_to_be_computed(tbc_copies, fault_mask)
        return bool(dv), bool(tbc)
