"""Fully-triplicated memory word (ablation codec).

The paper triplicates only the *critical fields* -- data-valid and
to-be-computed -- plus the result copies, leaving the instruction ID,
opcode, and operands exposed (Section 2.2 notes contemporary information
coding "could also be used on the memory words, for additional error
coverage").  The endurance experiments show those unprotected fields are
exactly where accumulated upsets leak through.

:class:`FullyTriplicatedWord` is the other end of the trade: every field
stored three times and majority-voted on read.  Cost: 135 stored bits
against the paper layout's 65 (2.08x).  The ``bench_ablation_full_word``
study quantifies what that buys per upset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cell.memword import MemoryWord
from repro.coding.bits import bit_length_mask, majority_int

#: Field widths in replication order.
_FIELDS: Tuple[Tuple[str, int], ...] = (
    ("instruction_id", 16),
    ("opcode", 3),
    ("operand1", 8),
    ("operand2", 8),
    ("result", 8),
    ("data_valid", 1),
    ("to_be_computed", 1),
)

#: Total packed width: three copies of every field.
FULL_WORD_BITS = 3 * sum(width for _, width in _FIELDS)


@dataclass(frozen=True)
class FullyTriplicatedWord:
    """Memory word with whole-word triple modular redundancy.

    Field semantics match :class:`~repro.cell.memword.MemoryWord`; only
    the storage layout differs.  Copies are *blocked*: the entire field
    set is laid out once, then repeated twice more, so a burst stays
    inside one copy (see the burst-fault ablation for why that matters).
    """

    instruction_id: int
    opcode: int
    operand1: int
    operand2: int
    result: int = 0
    data_valid: bool = False
    to_be_computed: bool = False

    def __post_init__(self) -> None:
        for name, width in _FIELDS:
            value = int(getattr(self, name))
            if value < 0 or value >> width:
                raise ValueError(f"{name}={value} does not fit in {width} bits")

    @staticmethod
    def copy_width() -> int:
        """Stored bits per copy (one full field set)."""
        return sum(width for _, width in _FIELDS)

    def _pack_one(self) -> int:
        image = 0
        offset = 0
        for name, width in _FIELDS:
            image |= int(getattr(self, name)) << offset
            offset += width
        return image

    def pack(self) -> int:
        """Encode to the 135-bit fully-triplicated layout."""
        one = self._pack_one()
        width = self.copy_width()
        return one | (one << width) | (one << (2 * width))

    @classmethod
    def unpack(cls, raw: int) -> "FullyTriplicatedWord":
        """Decode with a whole-word bitwise majority vote."""
        if raw < 0 or raw >> FULL_WORD_BITS:
            raise ValueError(
                f"raw word {raw:#x} does not fit in {FULL_WORD_BITS} bits"
            )
        width = cls.copy_width()
        mask = bit_length_mask(width)
        voted = majority_int(
            [(raw >> (c * width)) & mask for c in range(3)]
        )
        fields = {}
        offset = 0
        for name, field_width in _FIELDS:
            value = (voted >> offset) & bit_length_mask(field_width)
            if name in ("data_valid", "to_be_computed"):
                fields[name] = bool(value)
            else:
                fields[name] = value
            offset += field_width
        return cls(**fields)

    def to_paper_word(self) -> MemoryWord:
        """Convert to the paper-layout word (same field values)."""
        return MemoryWord(
            instruction_id=self.instruction_id,
            opcode=self.opcode,
            operand1=self.operand1,
            operand2=self.operand2,
            result=self.result,
            data_valid=self.data_valid,
            to_be_computed=self.to_be_computed,
        )

    @classmethod
    def from_paper_word(cls, word: MemoryWord) -> "FullyTriplicatedWord":
        """Convert from the paper-layout word."""
        return cls(
            instruction_id=word.instruction_id,
            opcode=word.opcode,
            operand1=word.operand1,
            operand2=word.operand2,
            result=word.result,
            data_valid=word.data_valid,
            to_be_computed=word.to_be_computed,
        )


def storage_overhead() -> float:
    """Stored-bit ratio of the full-TMR layout over the paper layout."""
    from repro.cell.memword import MEMORY_WORD_BITS

    return FULL_WORD_BITS / MEMORY_WORD_BITS
