"""Processor-cell read/writable memory.

"In this initial investigation, the memory unit of a processor cell
contains 32 words" (Section 3.3).  The memory is active in all three modes
and is itself a fault-injection surface: every stored bit is a site, so
single-event upsets can corrupt any field -- which is precisely why the
critical fields are triplicated at the word level.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.cell.memword import MEMORY_WORD_BITS, MemoryWord
from repro.coding.bits import bit_length_mask, popcount
from repro.faults.sites import SiteSpace

#: Paper Section 3.3: 32 words per cell (size arbitrary, may grow later).
CELL_MEMORY_WORDS = 32


class CellMemory:
    """Word-addressed cell memory with bit-level fault overlay."""

    def __init__(self, n_words: int = CELL_MEMORY_WORDS) -> None:
        if n_words <= 0:
            raise ValueError(f"n_words must be positive, got {n_words}")
        self._n_words = n_words
        self._words: List[int] = [0] * n_words
        self._space = SiteSpace("cell_memory")
        self._segments = [
            self._space.add(f"word{i}", MEMORY_WORD_BITS) for i in range(n_words)
        ]
        #: Optional observer called (with no arguments) after any write.
        #: The sparse grid engine hooks this to dirty-flag the owning
        #: cell's occupancy/pending counters; None costs nothing.
        self.on_mutate = None

    @property
    def n_words(self) -> int:
        return self._n_words

    @property
    def site_space(self) -> SiteSpace:
        """One segment of 65 sites per word."""
        return self._space

    @property
    def site_count(self) -> int:
        return self._space.total_sites

    # ------------------------------------------------------------ raw access

    def read_raw(self, index: int) -> int:
        """Read the stored 65-bit image of word ``index``."""
        self._check_index(index)
        return self._words[index]

    def write_raw(self, index: int, raw: int) -> None:
        """Overwrite the stored image of word ``index``."""
        self._check_index(index)
        if raw < 0 or raw >> MEMORY_WORD_BITS:
            raise ValueError(f"raw word {raw:#x} exceeds {MEMORY_WORD_BITS} bits")
        self._words[index] = raw
        if self.on_mutate is not None:
            self.on_mutate()

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._n_words:
            raise IndexError(f"word index {index} out of range 0..{self._n_words - 1}")

    # --------------------------------------------------------- typed access

    def read(self, index: int) -> MemoryWord:
        """Decode word ``index``, majority-voting the protected fields."""
        return MemoryWord.unpack(self.read_raw(index))

    def write(self, index: int, word: MemoryWord) -> None:
        """Encode and store ``word`` at ``index``."""
        self.write_raw(index, word.pack())

    def clear(self) -> None:
        """Zero the whole memory (all words invalid)."""
        self._words = [0] * self._n_words
        if self.on_mutate is not None:
            self.on_mutate()

    def erase(self, index: int) -> None:
        """Zero a single word (data_valid becomes false)."""
        self._check_index(index)
        self._words[index] = 0
        if self.on_mutate is not None:
            self.on_mutate()

    # --------------------------------------------------------- bulk queries

    def free_slot(self) -> Optional[int]:
        """Index of the first word with ``data_valid`` unset, or ``None``."""
        for i in range(self._n_words):
            if not self.read(i).data_valid:
                return i
        return None

    def pending_words(self) -> Iterator[int]:
        """Indices of valid words still awaiting computation."""
        for i in range(self._n_words):
            word = self.read(i)
            if word.data_valid and word.to_be_computed:
                yield i

    def completed_words(self) -> Iterator[int]:
        """Indices of valid words whose computation finished."""
        for i in range(self._n_words):
            word = self.read(i)
            if word.data_valid and not word.to_be_computed:
                yield i

    def occupancy(self) -> int:
        """Number of valid words."""
        return sum(1 for i in range(self._n_words) if self.read(i).data_valid)

    # ------------------------------------------------------------ scrubbing

    def scrub(self) -> int:
        """Rewrite every valid word in canonical triplicated form.

        Majority-decodes the triplicated flags and the three result
        copies, then re-packs the word, restoring agreement among the
        copies.  Scrubbing bounds the *accumulation* of single-event
        upsets: a triplicated field only fails when two copies flip
        within one scrub interval, rather than over the whole job.
        Non-triplicated fields (operands, instruction ID, opcode) cannot
        be repaired and are rewritten as-is.

        Returns the number of stored bits corrected.
        """
        corrected = 0
        for index in range(self._n_words):
            raw = self._words[index]
            if raw == 0:
                continue
            word = MemoryWord.unpack(raw)
            if not word.data_valid:
                # Majority says invalid: clear stragglers so a half-set
                # flag cannot drift into validity under later upsets.
                corrected += popcount(raw)
                self._words[index] = 0
                continue
            canonical = word.pack()
            if canonical != raw:
                corrected += popcount(canonical ^ raw)
                self._words[index] = canonical
        if corrected and self.on_mutate is not None:
            self.on_mutate()
        return corrected

    # -------------------------------------------------------------- faults

    def apply_faults(self, fault_mask: int) -> None:
        """XOR a fault mask over the entire memory's stored bits.

        The mask spans ``site_count`` bits, word 0's 65 bits first.  Unlike
        the per-computation ALU masks, memory upsets *persist* until the
        word is rewritten -- they model single-event upsets in storage.
        """
        if fault_mask < 0 or fault_mask >> self.site_count:
            raise ValueError(
                f"fault mask does not fit the {self.site_count}-site memory"
            )
        if fault_mask == 0:
            return
        word_mask = bit_length_mask(MEMORY_WORD_BITS)
        for i, segment in enumerate(self._segments):
            local = segment.extract(fault_mask)
            if local:
                self._words[i] = (self._words[i] ^ local) & word_mask
        if self.on_mutate is not None:
            self.on_mutate()

    def __len__(self) -> int:
        return self._n_words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellMemory(words={self._n_words}, occupied={self.occupancy()})"
