"""The nbox-aluctrl unit (paper Section 3.3).

In compute mode the ALU control "reads a word from the nbox-memory and
computes the majority value of the three data-valid bits.  If the memory
word contains valid data, nbox-aluctrl computes the majority value of the
three to-be-computed bits.  If the memory word contains valid data which
has yet to be computed, nbox-aluctrl sends the two operands and the opcode
to nbox-alu" -- then writes the result copies back and clears the
to-be-computed flag, looping over the memory for as long as the cell stays
in compute mode (salvaged work from failed neighbours appears as new words
with the flag set, so the loop re-examines every word each pass).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.alu.base import FaultableUnit, Opcode
from repro.cell.memory import CellMemory
from repro.cell.memword import MemoryWord

#: Provides a fresh ALU fault mask per computation (paper Section 4).
MaskSource = Callable[[], int]


def _no_faults() -> int:
    return 0


class StepOutcome(enum.Enum):
    """What one ALU-control step did."""

    #: Word empty or already computed; pointer advanced.
    SKIPPED = "skipped"
    #: Word computed, results written back, flag cleared.
    COMPUTED = "computed"
    #: Word looked valid but held an undecodable opcode -- dropped.
    REJECTED = "rejected"


@dataclass(frozen=True)
class StepReport:
    """Diagnostic record of one ALU-control step."""

    word_index: int
    outcome: StepOutcome
    result_copies: Optional[Tuple[int, int, int]] = None

    @property
    def copies_disagree(self) -> bool:
        """True when the three generated result copies were not identical.

        Disagreement is the module level *detecting* an error; the majority
        vote at shift-out is what masks it.
        """
        if self.result_copies is None:
            return False
        return len(set(self.result_copies)) > 1


class ALUControl:
    """Cycles through cell memory computing pending instructions.

    Args:
        memory: the cell's 32-word memory.
        alu: the cell's ALU (any :class:`~repro.alu.base.FaultableUnit`).
        mask_source: called once per ALU execution to draw that execution's
            transient-fault mask; defaults to fault-free.
        copies: result copies generated per instruction (the paper's module
            level generates three, concurrently or serially).
        field_voter: optional LUT-built control-flag voter (paper §7's
            control-logic-in-LUTs future work).  When supplied, the
            data-valid / to-be-computed verdicts are taken through its
            fault-prone tables instead of ideal majority gates.
        control_mask_source: per-step fault mask over the field voter's
            sites; defaults to fault-free.
    """

    def __init__(
        self,
        memory: CellMemory,
        alu: FaultableUnit,
        mask_source: MaskSource = _no_faults,
        copies: int = 3,
        field_voter=None,
        control_mask_source: MaskSource = _no_faults,
    ) -> None:
        if copies < 1 or copies % 2 == 0:
            raise ValueError(f"copies must be a positive odd number, got {copies}")
        self._memory = memory
        self._alu = alu
        self._mask_source = mask_source
        self._copies = copies
        self._field_voter = field_voter
        self._control_mask_source = control_mask_source
        self._pointer = 0
        self._computed_total = 0
        self._disagreements = 0
        self._control_misreads = 0

    @property
    def alu(self) -> FaultableUnit:
        return self._alu

    @property
    def pointer(self) -> int:
        """Next memory word the control will examine."""
        return self._pointer

    @property
    def computed_total(self) -> int:
        """Instructions computed since construction."""
        return self._computed_total

    @property
    def disagreements(self) -> int:
        """Computations whose result copies disagreed (detected errors)."""
        return self._disagreements

    @property
    def control_misreads(self) -> int:
        """Steps where the fault-prone field voter's verdict differed
        from the ideal majority (only counted with a field voter)."""
        return self._control_misreads

    def reset(self) -> None:
        """Return the scan pointer to word zero."""
        self._pointer = 0

    def sync_pointer(self, value: int) -> None:
        """Set the scan pointer directly (sparse-engine catch-up).

        The sparse grid engine skips the per-tick SKIPPED scans of idle
        cells; when such a cell acquires work mid-phase the engine fast
        forwards the pointer to where the dense per-tick loop would have
        left it.
        """
        if not 0 <= value < self._memory.n_words:
            raise ValueError(f"pointer {value} out of range")
        self._pointer = value

    def step(self) -> StepReport:
        """Examine one memory word; compute it if valid and pending.

        Advances the pointer with wrap-around, mirroring the hardware's
        endless compute-mode loop.
        """
        index = self._pointer
        self._pointer = (self._pointer + 1) % self._memory.n_words

        word = self._memory.read(index)
        if self._field_voter is None:
            data_valid, to_be_computed = word.data_valid, word.to_be_computed
        else:
            data_valid, to_be_computed = self._field_voter.classify_word(
                self._memory.read_raw(index),
                fault_mask=self._control_mask_source(),
            )
            if (data_valid, to_be_computed) != (
                word.data_valid, word.to_be_computed
            ):
                self._control_misreads += 1
        if not data_valid or not to_be_computed:
            return StepReport(index, StepOutcome.SKIPPED)
        try:
            Opcode.from_int(word.opcode)
        except ValueError:
            # An upset corrupted the opcode beyond the ISA; drop the word
            # rather than wedge the loop.  The watchdog counts this via the
            # cell's error tally.
            self._memory.write_raw(
                index, MemoryWord.clear_to_be_computed(self._memory.read_raw(index))
            )
            return StepReport(index, StepOutcome.REJECTED)

        copies = tuple(
            self._alu.compute(
                word.opcode,
                word.operand1,
                word.operand2,
                fault_mask=self._mask_source(),
            ).value
            for _ in range(self._copies)
        )
        raw = self._memory.read_raw(index)
        raw = MemoryWord.store_results(raw, copies[:3])
        raw = MemoryWord.clear_to_be_computed(raw)
        self._memory.write_raw(index, raw)

        self._computed_total += 1
        report = StepReport(index, StepOutcome.COMPUTED, result_copies=copies[:3])
        if report.copies_disagree:
            self._disagreements += 1
        return report

    def probe(self, opcode: int, operand1: int, operand2: int) -> int:
        """Execute one canary instruction directly on the ALU.

        Used by the watchdog's quarantine probe protocol: the computation
        bypasses cell memory but draws a genuine fault mask, so a cell
        whose ALU is still glitching fails its known-answer checks.
        """
        return self._alu.compute(
            opcode, operand1, operand2, fault_mask=self._mask_source()
        ).value

    def sweep(self) -> int:
        """Run one full pass over the memory; returns instructions computed."""
        start_computed = self._computed_total
        for _ in range(self._memory.n_words):
            self.step()
        return self._computed_total - start_computed

    def drain(self, max_sweeps: int = 64) -> int:
        """Sweep until no pending work remains; returns total computed.

        Raises:
            RuntimeError: if pending work remains after ``max_sweeps``
                passes (indicates a stuck word).
        """
        total = 0
        for _ in range(max_sweeps):
            total += self.sweep()
            if not any(True for _ in self._memory.pending_words()):
                return total
        raise RuntimeError(f"pending work remains after {max_sweeps} sweeps")
