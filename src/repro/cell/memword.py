"""Processor-cell memory word codec (paper Figure 4).

A memory word stores one instruction and its computed result:

========================= ====== =====================================
field                     bits   notes
========================= ====== =====================================
instruction_id            16     unique; doubles as the pixel ID
opcode                    3      Table 1 opcode
operand1                  8
operand2                  8
result copies             3 x 8  written during compute mode
data_valid flags          3 x 1  triplicated critical field
to_be_computed flags      3 x 1  triplicated critical field
========================= ====== =====================================

Total: 65 bits.  "Critical fields within the memory word are stored in
triplicate.  Whenever these critical fields are accessed, the majority
value of these triplicated fields is computed and that majority value is
used as the value of the field" (Section 2.2).  The result is likewise
stored as three copies whose majority vote forms the shift-out value
(Section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.coding.bits import bit_length_mask

#: Field widths, LSB first.
INSTRUCTION_ID_BITS = 16
OPCODE_BITS = 3
OPERAND_BITS = 8
RESULT_COPIES = 3
FLAG_COPIES = 3

# Bit offsets within the packed word, LSB first.
_IID_OFF = 0
_OPCODE_OFF = _IID_OFF + INSTRUCTION_ID_BITS
_OP1_OFF = _OPCODE_OFF + OPCODE_BITS
_OP2_OFF = _OP1_OFF + OPERAND_BITS
_RESULT_OFF = _OP2_OFF + OPERAND_BITS
_DV_OFF = _RESULT_OFF + RESULT_COPIES * OPERAND_BITS
_TBC_OFF = _DV_OFF + FLAG_COPIES

#: Total packed width of one memory word.
MEMORY_WORD_BITS = _TBC_OFF + FLAG_COPIES

#: Public offsets of the triplicated flag fields (used by the LUT-based
#: control-logic extension, which votes them through fault-prone tables).
DATA_VALID_OFFSET = _DV_OFF
TO_BE_COMPUTED_OFFSET = _TBC_OFF


def majority_bit(bits: Tuple[int, int, int]) -> int:
    """Majority of three flag copies -- the triplicated-field read rule."""
    return 1 if sum(bits) >= 2 else 0


@dataclass(frozen=True)
class MemoryWord:
    """Decoded view of one processor-cell memory word."""

    instruction_id: int
    opcode: int
    operand1: int
    operand2: int
    result: int = 0
    data_valid: bool = False
    to_be_computed: bool = False

    def __post_init__(self) -> None:
        checks = (
            ("instruction_id", self.instruction_id, INSTRUCTION_ID_BITS),
            ("opcode", self.opcode, OPCODE_BITS),
            ("operand1", self.operand1, OPERAND_BITS),
            ("operand2", self.operand2, OPERAND_BITS),
            ("result", self.result, OPERAND_BITS),
        )
        for name, value, bits in checks:
            if value < 0 or value >> bits:
                raise ValueError(f"{name}={value} does not fit in {bits} bits")

    # ----------------------------------------------------------------- pack

    def pack(self) -> int:
        """Encode to the 65-bit stored layout, triplicating the critical
        fields and writing three identical result copies."""
        raw = self.instruction_id << _IID_OFF
        raw |= self.opcode << _OPCODE_OFF
        raw |= self.operand1 << _OP1_OFF
        raw |= self.operand2 << _OP2_OFF
        for c in range(RESULT_COPIES):
            raw |= self.result << (_RESULT_OFF + c * OPERAND_BITS)
        dv = 1 if self.data_valid else 0
        tbc = 1 if self.to_be_computed else 0
        for c in range(FLAG_COPIES):
            raw |= dv << (_DV_OFF + c)
            raw |= tbc << (_TBC_OFF + c)
        return raw

    @classmethod
    def unpack(cls, raw: int) -> "MemoryWord":
        """Decode a (possibly corrupted) stored word.

        Triplicated flags and the result copies are majority-voted;
        non-triplicated fields are taken verbatim -- single-event upsets
        there are exactly the exposure the paper accepts outside the
        critical fields.
        """
        if raw < 0 or raw >> MEMORY_WORD_BITS:
            raise ValueError(
                f"raw word {raw:#x} does not fit in {MEMORY_WORD_BITS} bits"
            )
        iid = (raw >> _IID_OFF) & bit_length_mask(INSTRUCTION_ID_BITS)
        opcode = (raw >> _OPCODE_OFF) & bit_length_mask(OPCODE_BITS)
        op1 = (raw >> _OP1_OFF) & bit_length_mask(OPERAND_BITS)
        op2 = (raw >> _OP2_OFF) & bit_length_mask(OPERAND_BITS)
        result = cls.voted_result(raw)
        dv = majority_bit(tuple((raw >> (_DV_OFF + c)) & 1 for c in range(3)))
        tbc = majority_bit(tuple((raw >> (_TBC_OFF + c)) & 1 for c in range(3)))
        return cls(
            instruction_id=iid,
            opcode=opcode,
            operand1=op1,
            operand2=op2,
            result=result,
            data_valid=bool(dv),
            to_be_computed=bool(tbc),
        )

    # --------------------------------------------------------- raw helpers

    @staticmethod
    def result_copies(raw: int) -> Tuple[int, int, int]:
        """Extract the three stored result copies from a raw word."""
        mask = bit_length_mask(OPERAND_BITS)
        return tuple(
            (raw >> (_RESULT_OFF + c * OPERAND_BITS)) & mask for c in range(3)
        )

    @staticmethod
    def voted_result(raw: int) -> int:
        """Bitwise majority of the three stored result copies.

        This is the value shift-out mode packs into the result packet
        (Section 3.2.3).
        """
        a, b, c = MemoryWord.result_copies(raw)
        return (a & b) | (b & c) | (a & c)

    @staticmethod
    def store_results(raw: int, results: Tuple[int, int, int]) -> int:
        """Write three (possibly differing) result copies into a raw word.

        Compute mode generates three copies of the result -- concurrently
        on three ALUs or serially on one -- and stores all three.
        """
        mask = bit_length_mask(OPERAND_BITS)
        for c, value in enumerate(results):
            if value < 0 or value >> OPERAND_BITS:
                raise ValueError(f"result copy {c} = {value} out of 8-bit range")
            shift = _RESULT_OFF + c * OPERAND_BITS
            raw &= ~(mask << shift)
            raw |= value << shift
        return raw

    @staticmethod
    def clear_to_be_computed(raw: int) -> int:
        """Clear all three ``to_be_computed`` flag copies in a raw word."""
        for c in range(FLAG_COPIES):
            raw &= ~(1 << (_TBC_OFF + c))
        return raw

    @staticmethod
    def set_to_be_computed(raw: int) -> int:
        """Set all three ``to_be_computed`` flag copies in a raw word."""
        for c in range(FLAG_COPIES):
            raw |= 1 << (_TBC_OFF + c)
        return raw

    def completed(self, result: int) -> "MemoryWord":
        """Return a copy holding ``result`` with ``to_be_computed`` cleared."""
        return replace(self, result=result, to_be_computed=False)
