"""LUT-implemented routing decision (paper Section 7, future work).

Completes the control-logic-in-LUTs program started by
:mod:`repro.cell.lutctrl`: the nbox-router's five-case decision is built
from error-coded lookup tables so routing itself becomes a
fault-injection surface.

Decomposition (kept in small tables, as real nanofabric synthesis
would):

* two 8-input *comparator* LUT pairs -- for each axis, a less-than LUT
  and a greater-than LUT over ``(destination nibble, cell nibble)``;
* three 4-input *decision* LUTs -- mapping the four comparator bits
  ``(col_lt, col_gt, row_lt, row_gt)`` to the 3-bit direction code.

A fault in a comparator or decision table misroutes the packet: the
``bench_ext_lut_router`` study measures how often, per coding scheme,
and what a misroute costs the fabric.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cell.router import Direction
from repro.coding.bits import bit_length_mask
from repro.faults.sites import SiteSpace
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable

#: Address-nibble width: the paper's grid IDs fit in 4 bits per axis
#: (Figure 2 shows a 16-wide addressing example).
NIBBLE_BITS = 4

#: Direction encoding on the three decision-LUT outputs.
DIRECTION_CODES: Dict[Direction, int] = {
    Direction.HERE: 0b000,
    Direction.LEFT: 0b001,
    Direction.RIGHT: 0b010,
    Direction.UP: 0b011,
    Direction.DOWN: 0b100,
}

_CODE_TO_DIRECTION = {code: d for d, code in DIRECTION_CODES.items()}


def _comparator_table(greater: bool) -> TruthTable:
    """8-input truth table comparing two nibbles: ``dest <op> cell``.

    Address layout: bits 0-3 destination nibble, bits 4-7 cell nibble.
    """

    def compare(*bits: int) -> int:
        dest = sum(bits[i] << i for i in range(NIBBLE_BITS))
        cell = sum(bits[NIBBLE_BITS + i] << i for i in range(NIBBLE_BITS))
        return int(dest > cell) if greater else int(dest < cell)

    return TruthTable.from_function(2 * NIBBLE_BITS, compare)


def _decision_table(output_bit: int) -> TruthTable:
    """4-input truth table producing one bit of the direction code.

    Address layout: bit0 = col_lt, bit1 = col_gt, bit2 = row_lt,
    bit3 = row_gt.  The five-case priority (column first) is encoded in
    the table contents.
    """

    def decide(col_lt: int, col_gt: int, row_lt: int, row_gt: int) -> int:
        if col_gt:
            direction = Direction.LEFT
        elif col_lt:
            direction = Direction.RIGHT
        elif row_gt:
            direction = Direction.UP
        elif row_lt:
            direction = Direction.DOWN
        else:
            direction = Direction.HERE
        return (DIRECTION_CODES[direction] >> output_bit) & 1

    return TruthTable.from_function(4, decide)


class LUTRouter:
    """The five-case routing rule on error-coded lookup tables.

    Site layout: ``col_lt | col_gt | row_lt | row_gt | dec0 | dec1 | dec2``.
    With the ``tmr`` scheme each 256-entry comparator contributes 768
    sites and each 16-entry decision table 48, i.e. 3216 in total;
    uncoded: 1072.
    """

    def __init__(self, scheme: str = "tmr") -> None:
        self._scheme = scheme
        self._lt = CodedLUT(_comparator_table(greater=False), scheme)
        self._gt = CodedLUT(_comparator_table(greater=True), scheme)
        self._decision = [
            CodedLUT(_decision_table(bit), scheme) for bit in range(3)
        ]
        self._space = SiteSpace(f"lut_router[{scheme}]")
        self._segments = {
            "col_lt": self._space.add("col_lt", self._lt.total_bits),
            "col_gt": self._space.add("col_gt", self._gt.total_bits),
            "row_lt": self._space.add("row_lt", self._lt.total_bits),
            "row_gt": self._space.add("row_gt", self._gt.total_bits),
        }
        for bit, lut in enumerate(self._decision):
            self._segments[f"dec{bit}"] = self._space.add(
                f"dec{bit}", lut.total_bits
            )

    @property
    def scheme(self) -> str:
        """Bit-level coding scheme of every router table."""
        return self._scheme

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    @property
    def site_count(self) -> int:
        return self._space.total_sites

    @staticmethod
    def _compare_address(dest: int, cell: int) -> int:
        return (dest & bit_length_mask(NIBBLE_BITS)) | (
            (cell & bit_length_mask(NIBBLE_BITS)) << NIBBLE_BITS
        )

    def route(
        self,
        dest_row: int,
        dest_col: int,
        cell_row: int,
        cell_col: int,
        fault_mask: int = 0,
    ) -> Tuple[Direction, bool]:
        """Route one packet through the fault-prone tables.

        Returns ``(direction, valid)``; ``valid`` is False when the
        decision bits decode to an unused code (a detectable malfunction
        a real router would treat as a drop).
        """
        for name, value in (("dest_row", dest_row), ("dest_col", dest_col),
                            ("cell_row", cell_row), ("cell_col", cell_col)):
            if not 0 <= value < (1 << NIBBLE_BITS):
                raise ValueError(
                    f"{name}={value} exceeds the {NIBBLE_BITS}-bit ID space"
                )
        col_addr = self._compare_address(dest_col, cell_col)
        row_addr = self._compare_address(dest_row, cell_row)
        col_lt = self._lt.read(
            col_addr, self._segments["col_lt"].extract(fault_mask)
        )
        col_gt = self._gt.read(
            col_addr, self._segments["col_gt"].extract(fault_mask)
        )
        row_lt = self._lt.read(
            row_addr, self._segments["row_lt"].extract(fault_mask)
        )
        row_gt = self._gt.read(
            row_addr, self._segments["row_gt"].extract(fault_mask)
        )
        decision_addr = col_lt | (col_gt << 1) | (row_lt << 2) | (row_gt << 3)
        code = 0
        for bit, lut in enumerate(self._decision):
            code |= lut.read(
                decision_addr, self._segments[f"dec{bit}"].extract(fault_mask)
            ) << bit
        direction = _CODE_TO_DIRECTION.get(code)
        if direction is None:
            return Direction.HERE, False
        return direction, True
