"""The nbox-router routing rule (paper Section 3.3).

Cell IDs follow the paper's coordinate system (Figure 2): the row address
*decreases* moving away (down) from the control processor, so the top row
-- the one wired to the control processor's edge bus -- has the highest
row address; the column address *decreases* moving right, so the leftmost
column has the highest column address.

The five-way decision on an incoming packet's destination ID:

1. send **left**  if destination column > cell column;
2. send **right** if destination column < cell column;
3. send **up**    if destination row > cell row;
4. send **down**  if destination row < cell row;
5. **keep here**  if destination ID == cell ID.

Column comparison first: packets travel across, then along, a column --
dimension-ordered routing, which is deadlock-free on a mesh.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Direction(enum.Enum):
    """Router port selection.  UP is toward the control processor."""

    UP = "up"
    DOWN = "down"
    LEFT = "left"
    RIGHT = "right"
    HERE = "here"

    def opposite(self) -> "Direction":
        """The port a neighbour receives this hop on."""
        return _OPPOSITE[self]

    def step(self, row: int, col: int) -> Tuple[int, int]:
        """Coordinates of the neighbouring cell through this port.

        Remember the paper's axes: UP increases the row address (toward
        the control processor); LEFT increases the column address.
        """
        if self is Direction.UP:
            return row + 1, col
        if self is Direction.DOWN:
            return row - 1, col
        if self is Direction.LEFT:
            return row, col + 1
        if self is Direction.RIGHT:
            return row, col - 1
        return row, col


_OPPOSITE = {
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
    Direction.LEFT: Direction.RIGHT,
    Direction.RIGHT: Direction.LEFT,
    Direction.HERE: Direction.HERE,
}


@dataclass(frozen=True)
class RoutingDecision:
    """The router's verdict for one packet."""

    direction: Direction
    #: Destination coordinates the verdict was computed from, for tracing.
    dest_row: int
    dest_col: int

    @property
    def keep(self) -> bool:
        return self.direction is Direction.HERE


def route_packet(
    dest_row: int, dest_col: int, cell_row: int, cell_col: int
) -> RoutingDecision:
    """Apply the paper's five-case routing rule.

    >>> route_packet(dest_row=2, dest_col=5, cell_row=2, cell_col=3).direction
    <Direction.LEFT: 'left'>
    """
    if dest_col > cell_col:
        direction = Direction.LEFT
    elif dest_col < cell_col:
        direction = Direction.RIGHT
    elif dest_row > cell_row:
        direction = Direction.UP
    elif dest_row < cell_row:
        direction = Direction.DOWN
    else:
        direction = Direction.HERE
    return RoutingDecision(direction, dest_row, dest_col)


def hop_count(
    dest_row: int, dest_col: int, cell_row: int, cell_col: int
) -> int:
    """Manhattan distance a packet must travel under the routing rule."""
    return abs(dest_row - cell_row) + abs(dest_col - cell_col)
