"""The assembled NanoBox processor cell.

Combines the 32-word memory, the ALU control loop, the heartbeat
generator, and the cell's position in the grid's ID space.  All cells
switch between the three global modes together under control-processor
command (paper Section 3.2): *shift-in* (accept instruction packets),
*compute* (loop over memory executing pending words), *shift-out*
(emit result packets upward).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.alu.base import FaultableUnit
from repro.cell.aluctrl import ALUControl, MaskSource, StepOutcome, _no_faults
from repro.cell.heartbeat import Heartbeat
from repro.cell.memory import CELL_MEMORY_WORDS, CellMemory
from repro.cell.memword import MemoryWord


class CellMode(enum.Enum):
    """The three global operating modes (paper Section 3.2).

    "Each processor cell has three mode signals, only one of which can be
    high at a time."
    """

    SHIFT_IN = "shift_in"
    COMPUTE = "compute"
    SHIFT_OUT = "shift_out"


class CellFullError(RuntimeError):
    """Raised when an instruction arrives at a cell with no free word."""


class ProcessorCell:
    """One cell of the NanoBox Processor Grid.

    Args:
        row: paper-coordinate row address (decreases moving away from the
            control processor).
        col: paper-coordinate column address (decreases moving right).
        alu: the cell's ALU core.
        mask_source: per-execution transient-fault mask supplier.
        n_words: memory size (32 in the paper).
        error_threshold: heartbeat error budget before the cell silences.
        heartbeat_decay: leaky-bucket decay per heartbeat cycle (0 keeps
            the legacy monotone error tally).
    """

    def __init__(
        self,
        row: int,
        col: int,
        alu: FaultableUnit,
        mask_source: MaskSource = _no_faults,
        n_words: int = CELL_MEMORY_WORDS,
        error_threshold: int = 8,
        heartbeat_decay: float = 0.0,
    ) -> None:
        if row < 0 or col < 0:
            raise ValueError(f"cell ID ({row}, {col}) must be non-negative")
        self._row = row
        self._col = col
        self.memory = CellMemory(n_words)
        self.aluctrl = ALUControl(self.memory, alu, mask_source)
        self.heartbeat = Heartbeat(error_threshold, decay=heartbeat_decay)
        self._mode = CellMode.SHIFT_IN
        self._shift_out_pointer = 0
        self._rejected_packets = 0

    # ------------------------------------------------------------- identity

    @property
    def row(self) -> int:
        return self._row

    @property
    def col(self) -> int:
        return self._col

    @property
    def cell_id(self) -> Tuple[int, int]:
        """(row, column) address used by the routing rule."""
        return (self._row, self._col)

    # ----------------------------------------------------------------- mode

    @property
    def mode(self) -> CellMode:
        return self._mode

    def set_mode(self, mode: CellMode) -> None:
        """Switch operating mode (driven globally by the control processor)."""
        self._mode = mode
        if mode is CellMode.COMPUTE:
            self.aluctrl.reset()
        elif mode is CellMode.SHIFT_OUT:
            self._shift_out_pointer = 0

    @property
    def alive(self) -> bool:
        """True while the heartbeat is healthy."""
        return self.heartbeat.healthy

    @property
    def rejected_packets(self) -> int:
        """Instruction packets dropped because memory was full."""
        return self._rejected_packets

    # ------------------------------------------------------------- shift-in

    def store_instruction(
        self, instruction_id: int, opcode: int, operand1: int, operand2: int
    ) -> int:
        """Save an arriving instruction into the first free memory word.

        Returns the word index used.

        Raises:
            CellFullError: when all words hold valid data.
        """
        slot = self.memory.free_slot()
        if slot is None:
            self._rejected_packets += 1
            raise CellFullError(
                f"cell {self.cell_id} memory full "
                f"({self.memory.n_words} words)"
            )
        word = MemoryWord(
            instruction_id=instruction_id,
            opcode=opcode,
            operand1=operand1,
            operand2=operand2,
            data_valid=True,
            to_be_computed=True,
        )
        self.memory.write(slot, word)
        return slot

    def adopt_word(self, word: MemoryWord) -> int:
        """Accept a salvaged memory word from a failed neighbour.

        The word arrives with its ``to_be_computed`` state intact, so the
        compute loop picks it up on its next pass (paper Section 3.2.2).
        """
        slot = self.memory.free_slot()
        if slot is None:
            raise CellFullError(f"cell {self.cell_id} cannot adopt: memory full")
        self.memory.write(slot, word)
        return slot

    # -------------------------------------------------------------- compute

    def compute_step(self) -> bool:
        """Advance the ALU-control loop one word; returns True if computed.

        Result-copy disagreements count against the heartbeat's error
        budget -- they are the cell's self-detected errors.
        """
        if not self.alive:
            return False
        report = self.aluctrl.step()
        if report.outcome is StepOutcome.REJECTED:
            self.heartbeat.record_error()
            return False
        if report.copies_disagree:
            self.heartbeat.record_error()
        return report.outcome is StepOutcome.COMPUTED

    # ------------------------------------------------------------ shift-out

    def pop_result(self) -> Optional[Tuple[int, int]]:
        """Emit the next completed word as ``(instruction_id, result)``.

        The result is the majority vote of the word's three stored copies
        (paper Section 3.2.3).  The word is erased once emitted.  Returns
        ``None`` when nothing remains to send.
        """
        while self._shift_out_pointer < self.memory.n_words:
            index = self._shift_out_pointer
            self._shift_out_pointer += 1
            word = self.memory.read(index)
            if word.data_valid and not word.to_be_computed:
                raw = self.memory.read_raw(index)
                voted = MemoryWord.voted_result(raw)
                iid = word.instruction_id
                self.memory.erase(index)
                return (iid, voted)
        return None

    def fast_forward_shift_out(self) -> None:
        """Mark the shift-out scan exhausted (sparse-engine catch-up).

        Equivalent to the ``pop_result`` calls an empty cell would have
        absorbed: the first call races the pointer to ``n_words`` and
        every later one returns immediately, so a cell with no completed
        words ends any shift-out span with the pointer pinned here.
        """
        self._shift_out_pointer = self.memory.n_words

    # --------------------------------------------------------------- probing

    def probe(self, canaries) -> bool:
        """Run known-answer canary instructions through the cell's ALU.

        Each canary is ``(opcode, operand1, operand2, expected)``.  A cell
        whose heartbeat was force-silenced by a hard failure cannot
        respond at all; otherwise every canary must compute to its
        expected value (through a genuine per-execution fault mask) for
        the probe to pass.
        """
        if self.heartbeat.forced_silent:
            return False
        return all(
            self.aluctrl.probe(op, a, b) == expected
            for op, a, b, expected in canaries
        )

    # -------------------------------------------------------------- salvage

    def extract_pending(self) -> List[MemoryWord]:
        """Remove and return all words still awaiting computation.

        Used during failover: "the contents of the cell memory will be
        sent to the surrounding processor cells so that they can finish
        any outstanding computations" (paper Section 2.3).
        """
        salvaged: List[MemoryWord] = []
        for index in list(self.memory.pending_words()):
            salvaged.append(self.memory.read(index))
            self.memory.erase(index)
        return salvaged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessorCell(id={self.cell_id}, mode={self._mode.value}, "
            f"occupied={self.memory.occupancy()}, alive={self.alive})"
        )
