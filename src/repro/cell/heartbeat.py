"""Processor-cell heartbeat (paper Section 2.3).

"A heartbeat signal, generated within the processor cell, is used to
determine if the cell is still active.  A watchdog unit in the
communication fabric monitors these processor cell heartbeat signals and
determines if a cell has exceeded its error threshold."

The heartbeat generator beats every cycle while the cell's detected-error
tally stays at or below its threshold; once the tally exceeds the
threshold, the heartbeat goes silent, which is the watchdog's cue to
disable the cell.
"""

from __future__ import annotations


class Heartbeat:
    """Error-gated heartbeat generator.

    Args:
        error_threshold: detected errors tolerated before the heartbeat
            stops.  The paper leaves the exact protocol to future work;
            the grid benchmarks sweep this knob.
    """

    def __init__(self, error_threshold: int = 8) -> None:
        if error_threshold < 0:
            raise ValueError(
                f"error_threshold must be non-negative, got {error_threshold}"
            )
        self._threshold = error_threshold
        self._errors = 0
        self._beats = 0
        self._forced_silent = False

    @property
    def error_threshold(self) -> int:
        return self._threshold

    @property
    def error_count(self) -> int:
        """Detected errors recorded so far."""
        return self._errors

    @property
    def beats_emitted(self) -> int:
        """Total heartbeats emitted."""
        return self._beats

    @property
    def healthy(self) -> bool:
        """True while the error tally is at or below threshold, not killed.

        The threshold is inclusive: a cell *at* its threshold still
        beats; only exceeding it silences the heartbeat.
        """
        return not self._forced_silent and self._errors <= self._threshold

    def record_error(self, count: int = 1) -> None:
        """Add detected errors (e.g. result-copy disagreements)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._errors += count

    def silence(self) -> None:
        """Force the heartbeat off (models a hard cell failure)."""
        self._forced_silent = True

    def beat(self) -> bool:
        """Emit (or withhold) one cycle's heartbeat.

        Returns:
            True when the heartbeat was emitted this cycle.
        """
        if not self.healthy:
            return False
        self._beats += 1
        return True
